"""Fig. 14: plan built from spatially shifted history (random ingress).

Every history request's datacenter is replaced with a random edge
datacenter before planning, so the plan's spatial expectations are wrong.
Paper shape: OLIVE's rejection rate is still no worse than QUICKG's, and
costs stay comparable.
"""

from _bench_utils import UTILIZATIONS, bench_config, format_ci, record
from repro.experiments.figures import run_shifted_plan


def test_fig14_shifted_plan(benchmark):
    config = bench_config(repetitions=1)

    data = benchmark.pedantic(
        lambda: run_shifted_plan(config, UTILIZATIONS),
        rounds=1,
        iterations=1,
    )

    lines = ["util    OLIVE(shifted) rr      QUICKG rr        OLIVE cost / QUICKG cost"]
    for utilization, summary in data.items():
        ratio = (
            summary["OLIVE:total_cost"].mean
            / max(summary["QUICKG:total_cost"].mean, 1e-12)
        )
        lines.append(
            f"{utilization:>4.0%}   {format_ci(summary['OLIVE:rejection_rate']):>18}  "
            f"{format_ci(summary['QUICKG:rejection_rate']):>18}  {ratio:>8.3f}"
        )
    record("fig14_shifted_plan", lines)

    for utilization, summary in data.items():
        olive = summary["OLIVE:rejection_rate"].mean
        quickg = summary["QUICKG:rejection_rate"].mean
        # Paper shape: even with a spatially wrong plan, OLIVE is never
        # worse than QUICKG.
        assert olive <= quickg + 0.03, utilization
        # Costs remain similar (paper: "both achieved similar costs").
        ratio = (
            summary["OLIVE:total_cost"].mean
            / max(summary["QUICKG:total_cost"].mean, 1e-12)
        )
        assert ratio <= 1.15, utilization
