"""Shared helpers for the benchmark suite (see conftest.py for fixtures).

Every benchmark regenerates one of the paper's tables/figures at laptop
scale and asserts the *shape* of the result (who wins, roughly by what
factor) rather than absolute numbers — the substrate here is a simulator,
not the authors' Xeon testbed. See EXPERIMENTS.md for the recorded
paper-vs-measured comparison.

Scaling knobs (environment):

* ``REPRO_BENCH_FAST=1`` — fewer repetitions/utilizations; SLOTOFF only on
  the smallest topology. Use for quick sanity runs.
* ``REPRO_BENCH_JOBS=N`` — fan each configuration's seeded repetitions out
  over N worker processes (0 = one per CPU). Results are bit-identical to
  the serial run (measured ``runtime`` metrics excepted — they are real
  timings); only wall-clock changes.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.sim.runner import ParallelRunner

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

#: Worker processes per repeated configuration (see module docstring).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Utilization sweep points for the Fig. 6/7/14/15/16 benchmarks.
UTILIZATIONS = (0.6, 1.4) if FAST else (0.6, 1.0, 1.4)

#: Topologies included in the Fig. 6/7 sweep, and which get SLOTOFF
#: (its per-slot LP dominates wall-clock, so the big graphs skip it).
SWEEP_TOPOLOGIES = ("CittaStudi",) if FAST else (
    "Iris", "CittaStudi", "5GEN", "100N150E"
)
SLOTOFF_TOPOLOGIES = ("CittaStudi",) if FAST else ("Iris", "CittaStudi")

RESULTS_DIR = Path(__file__).parent / "results"


def bench_config(**overrides) -> ExperimentConfig:
    """The benchmark-scale configuration, honoring REPRO_BENCH_FAST."""
    if FAST:
        overrides.setdefault("repetitions", 1)
    return ExperimentConfig.bench(**overrides)


def bench_runner() -> ParallelRunner:
    """The repetition runner for benchmarks, honoring REPRO_BENCH_JOBS."""
    return ParallelRunner.from_jobs(JOBS)


def record(name: str, lines: list[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print(f"\n===== {name} =====\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def format_ci(interval) -> str:
    """Render a ConfidenceInterval as ``mean ± half``."""
    return f"{interval.mean:.4g} ± {interval.half_width:.2g}"
