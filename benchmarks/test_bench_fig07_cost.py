"""Fig. 7: total embedding cost vs utilization, per topology.

Shares the Fig. 6 runs (same experiments, different metric). Paper shape:
OLIVE's total cost is below QUICKG's at every utilization level and close
to SLOTOFF's.
"""

from _bench_utils import SWEEP_TOPOLOGIES, UTILIZATIONS, format_ci, record


def test_fig7_cost_vs_utilization(benchmark, utilization_sweep):
    data = benchmark.pedantic(
        lambda: {t: utilization_sweep(t) for t in SWEEP_TOPOLOGIES},
        rounds=1,
        iterations=1,
    )

    lines = []
    for topology, sweep in data.items():
        lines.append(f"[{topology}] total cost (resource + rejection)")
        algorithms = sorted(
            {key.split(":")[0] for key in next(iter(sweep.values()))}
        )
        lines.append("  util   " + "  ".join(f"{a:>22}" for a in algorithms))
        for utilization in UTILIZATIONS:
            row = sweep[utilization]
            cells = "  ".join(
                f"{format_ci(row[f'{a}:total_cost']):>22}" for a in algorithms
            )
            lines.append(f"  {utilization:>4.0%}   {cells}")
        lines.append("")
    record("fig07_cost", lines)

    for topology, sweep in data.items():
        top = max(UTILIZATIONS)
        row = sweep[top]
        # Paper shape: OLIVE outperforms QUICKG on cost at high load (the
        # rejection-cost component dominates there).
        assert (
            row["OLIVE:total_cost"].mean
            <= row["QUICKG:total_cost"].mean * 1.05
        ), topology
        # Rejection cost specifically should be clearly lower for OLIVE.
        assert (
            row["OLIVE:rejection_cost"].mean
            <= row["QUICKG:rejection_cost"].mean * 1.05
        ), topology
