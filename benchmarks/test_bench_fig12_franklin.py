"""Fig. 12: per-application allocation timeline at the 'Franklin' node.

Runs OLIVE on Iris @100 % and reconstructs the Fig. 12 view for Franklin:
the plan's guaranteed demand per application (the dashed line) and each
request classified as guaranteed / borrowed / preempted / rejected.

Paper shape: every application has a positive guarantee; bursts above the
guarantee are served as borrowed allocations; preemptions only ever hit
borrowed requests.
"""

from _bench_utils import bench_config, record
from repro.experiments.figures import collect_node_timeline


def test_fig12_franklin_node_timeline(benchmark):
    config = bench_config(topology="Iris", utilization=1.0, repetitions=1)

    timeline = benchmark.pedantic(
        lambda: collect_node_timeline(config, node="Franklin"),
        rounds=1,
        iterations=1,
    )

    lines = [f"node = {timeline.node}"]
    total_entries = 0
    for app_index in sorted(timeline.guaranteed_demand):
        counts = timeline.counts(app_index)
        total_entries += sum(counts.values())
        guarantee = timeline.guaranteed_demand[app_index]
        peak = float(timeline.active_demand[app_index].max())
        lines.append(
            f"app {app_index}: guarantee={guarantee:7.1f}  peak-active={peak:7.1f}  "
            + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
    record("fig12_franklin_timeline", lines)

    assert total_entries > 0, "Franklin saw no requests"
    # The plan guarantees capacity for every application at this node.
    positive = [g for g in timeline.guaranteed_demand.values() if g > 0]
    assert len(positive) >= 3
    # Some requests were served within the guarantee.
    statuses = {
        status
        for app_index in timeline.entries
        for status in timeline.counts(app_index)
    }
    assert "guaranteed" in statuses
