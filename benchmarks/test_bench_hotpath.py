"""Hot-path microbenchmark: the online-embedding core, fast vs reference.

Measures three things on the fig16-style workload and records them to a
``BENCH_hotpath.json`` trajectory file (one record appended per run, so
regressions show up as a time series across commits):

* engine throughput — slots/sec and requests/sec of whole simulations
  through the incremental fast path (OLIVE and QUICKG), recorded as the
  best of :data:`ENGINE_REPEATS` runs per engine (decisions are
  identical across repeats; only scheduler noise varies);
* engine speedup — the same simulations through the frozen pre-fast-path
  reference (:mod:`repro.core.greedy_reference`, scalar Dijkstra +
  O(nodes) scan per request), with **bit-identical decisions asserted**
  on the exact benchmark workload;
* embed-call speedup — the pure GREEDYEMBED step in isolation (cached
  paths + vectorized scoring vs full reference recomputation), which is
  where the incremental design shows its raw factor without the
  per-request Decision/bookkeeping overhead both engines share.

Smoke mode (``REPRO_BENCH_FAST=1``, used by CI) shrinks the workload but
keeps the equivalence assertion — a decision divergence fails the build
even when timings are too noisy to gate on.
"""

from __future__ import annotations

import json
import time

import numpy as np

from _bench_utils import FAST, RESULTS_DIR, bench_config, record
from repro.baselines.quickg import make_quickg
from repro.core import greedy_reference
from repro.core.embedding import compute_loads
from repro.core.greedy import GreedyContext
from repro.core.olive import OliveAlgorithm
from repro.core.residual import ResidualState
from repro.experiments.scenario import build_scenario
from repro.sim.engine import simulate

TRAJECTORY_FILE = RESULTS_DIR / "BENCH_hotpath.json"

#: Floors for full local runs — actual speedups are recorded, not
#: asserted, beyond these. Since the batched embed kernel + adaptive
#: PathCache bypass landed, **no engine row may be slower than the
#: reference** (the 1.0 floor applies to every recorded engine); OLIVE
#: and QUICKG additionally keep their measured headroom. Smoke mode
#: skips the wall-clock gates entirely (shared CI runners are flaky);
#: the decision-equivalence assertion always applies.
MIN_ENGINE_SPEEDUP = {"OLIVE": 1.0, "QUICKG": 1.3}
MIN_EMBED_SPEEDUP = 2.0

#: Whole-sim repetitions per engine (full runs): the recorded runtime is
#: the best of these, a repeatable cost estimate rather than one noisy
#: draw — a single simulation is ~0.3 s, where scheduler jitter alone
#: can swamp the fast-vs-reference margin the 1.0 floor gates on.
ENGINE_REPEATS = 3


def _assert_identical(fast, reference, label):
    assert len(fast.decisions) == len(reference.decisions), label
    for ours, theirs in zip(fast.decisions, reference.decisions):
        assert ours == theirs, (label, ours.request.id)
    assert fast.preemptions == reference.preemptions, label
    assert np.array_equal(fast.allocated_demand, reference.allocated_demand)
    assert np.array_equal(fast.resource_cost, reference.resource_cost)


def _bench_embed_call(scenario, sample_size):
    """Per-call timing of the pure embedding step, decisions locked."""
    substrate = scenario.substrate
    efficiency = scenario.efficiency
    fast_residual = ResidualState(substrate)
    ref_residual = ResidualState(substrate)
    context = GreedyContext(substrate, efficiency, fast_residual)
    fast_time = 0.0
    ref_time = 0.0
    calls = 0
    for request in scenario.online_requests()[:sample_size]:
        app = scenario.apps[request.app_index]
        start = time.perf_counter()
        got = context.embed(request, app, allow_split_groups=False)
        fast_time += time.perf_counter() - start
        start = time.perf_counter()
        expected = greedy_reference.greedy_embed(
            request, app, substrate, efficiency, ref_residual,
            allow_split_groups=False,
        )
        ref_time += time.perf_counter() - start
        calls += 1
        if expected is None:
            assert got is None
            continue
        embedding, loads = got
        assert embedding == expected
        fast_residual.allocate(loads)
        ref_residual.allocate(
            compute_loads(app, request.demand, expected, substrate,
                          efficiency)
        )
    return {
        "calls": calls,
        "fast_us_per_call": 1e6 * fast_time / max(calls, 1),
        "reference_us_per_call": 1e6 * ref_time / max(calls, 1),
        "speedup": ref_time / max(fast_time, 1e-12),
    }


def test_hotpath_microbenchmark(benchmark):
    config = bench_config(
        topology="CittaStudi",
        repetitions=1,
        arrivals_per_node=10.0 if FAST else 20.0,
    )
    scenario = build_scenario(config, 0)
    online = scenario.online_requests()
    slots = config.online_slots

    expected_per_slot = len(online) / max(slots, 1)

    def algorithms(fast):
        return {
            "OLIVE": OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency, use_fast_greedy=fast,
                expected_offers_per_slot=expected_per_slot,
            ),
            "QUICKG": make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency,
                use_fast_greedy=fast,
                expected_offers_per_slot=expected_per_slot,
            ),
        }

    repeats = 1 if FAST else ENGINE_REPEATS
    fast_algorithms = {}

    def run_engines(fast, keep_algorithms=None):
        """Best-of-``repeats`` simulation per engine (identical decisions
        every repeat — only the runtime varies)."""
        results = {}
        for _ in range(repeats):
            for name, alg in algorithms(fast).items():
                result = simulate(alg, online, slots)
                best = results.get(name)
                if best is None or result.runtime_seconds < best.runtime_seconds:
                    results[name] = result
                    if keep_algorithms is not None:
                        keep_algorithms[name] = alg
        return results

    fast_results = benchmark.pedantic(
        run_engines, args=(True, fast_algorithms), rounds=1, iterations=1
    )
    reference_results = run_engines(False)

    entry = {
        "topology": config.topology,
        "arrivals_per_node": config.arrivals_per_node,
        "online_slots": slots,
        "num_requests": len(online),
        "fast_mode": FAST,
        "engine_repeats": repeats,
        "engines": {},
    }
    lines = [
        f"[{config.topology}] λ={config.arrivals_per_node:.0f}, "
        f"{slots} slots, {len(online)} requests"
    ]
    for name, fast in fast_results.items():
        reference = reference_results[name]
        _assert_identical(fast, reference, name)
        speedup = reference.runtime_seconds / max(
            fast.runtime_seconds, 1e-12
        )
        entry["engines"][name] = {
            "slots_per_sec": fast.slots_per_second,
            "requests_per_sec": fast.requests_per_second,
            "runtime_seconds": fast.runtime_seconds,
            "reference_runtime_seconds": reference.runtime_seconds,
            "speedup_vs_reference": speedup,
            # The adaptive-bypass calibration and batch-kernel telemetry
            # for this exact run (payoff scale, mode switches, rows the
            # vectorized kernel served vs scalar fallbacks).
            "greedy": fast_algorithms[name].greedy_context.stats(),
        }
        lines.append(
            f"  {name:7} {fast.slots_per_second:8.0f} slots/s  "
            f"{fast.requests_per_second:9.0f} req/s  "
            f"{speedup:4.1f}x vs reference (decisions identical)"
        )

    embed = _bench_embed_call(scenario, 500 if FAST else 2000)
    entry["embed_call"] = embed
    lines.append(
        f"  embed   {embed['fast_us_per_call']:6.1f}us/call vs "
        f"{embed['reference_us_per_call']:6.1f}us reference  "
        f"{embed['speedup']:4.1f}x ({embed['calls']} calls)"
    )
    record("hotpath", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    try:
        trajectory = json.loads(TRAJECTORY_FILE.read_text())
    except (OSError, ValueError):
        trajectory = []
    trajectory.append(entry)
    TRAJECTORY_FILE.write_text(json.dumps(trajectory, indent=1) + "\n")

    # Smoke mode (CI, shared runners): decision equivalence is the gate;
    # wall-clock floors only bind on full local runs where timings are
    # meaningful.
    if not FAST:
        for name, row in entry["engines"].items():
            floor = max(MIN_ENGINE_SPEEDUP.get(name, 1.0), 1.0)
            assert row["speedup_vs_reference"] >= floor, (name, row)
        assert embed["speedup"] >= MIN_EMBED_SPEEDUP, embed
