"""Fig. 9: rejection-rate sensitivity to application type, Iris @100 %.

Paper shape: QUICKG is insensitive to the application type; FULLG and
QUICKG are statistically similar at this load; OLIVE is significantly lower
and closer to SLOTOFF; the accelerator mix reduces rejections.
"""

from _bench_utils import FAST, bench_config, format_ci, record
from repro.experiments.figures import run_by_application

APP_TYPES = ("chain", "accelerator", "standard") if FAST else (
    "chain", "tree", "accelerator", "standard"
)


def test_fig9_rejection_by_application_type(benchmark):
    config = bench_config(utilization=1.0, repetitions=1)
    algorithms = ("OLIVE", "QUICKG", "FULLG") if FAST else (
        "OLIVE", "QUICKG", "FULLG", "SLOTOFF"
    )

    data = benchmark.pedantic(
        lambda: run_by_application(config, APP_TYPES, algorithms),
        rounds=1,
        iterations=1,
    )

    lines = ["app-type      " + "  ".join(f"{a:>18}" for a in algorithms)]
    for app_type, summary in data.items():
        cells = "  ".join(
            f"{format_ci(summary[f'{a}:rejection_rate']):>18}"
            for a in algorithms
        )
        lines.append(f"{app_type:<12}  {cells}")
    record("fig09_rejection_by_app_type", lines)

    for app_type, summary in data.items():
        olive = summary["OLIVE:rejection_rate"].mean
        quickg = summary["QUICKG:rejection_rate"].mean
        # Paper shape: OLIVE at or below QUICKG for every application type.
        assert olive <= quickg + 0.02, app_type
    # FULLG ~ QUICKG at this load (statistically similar in the paper).
    for app_type, summary in data.items():
        fullg = summary["FULLG:rejection_rate"].mean
        quickg = summary["QUICKG:rejection_rate"].mean
        assert abs(fullg - quickg) < 0.25, app_type
