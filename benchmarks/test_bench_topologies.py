"""Table II / Fig. 5: the four physical topologies.

Regenerates the Table II rows (element counts, tier parameters) and checks
them against the published values; benchmarks topology construction time.
"""

from _bench_utils import record
from repro.substrate.tiers import (
    TIER_LINK_CAPACITY,
    TIER_MEAN_NODE_COST,
    TIER_NODE_CAPACITY,
    Tier,
)
from repro.substrate.topologies import TOPOLOGY_BUILDERS

#: Table II published rows: name → (nodes, links).
PUBLISHED = {
    "Iris": (50, 64),
    "CittaStudi": (30, 35),
    "5GEN": (78, 100),
    "100N150E": (100, 150),
}


def test_table2_topologies(benchmark):
    def build_all():
        # Sized scale families (tiered-x, waxman, ...) have no published
        # Table II row; BENCH_scale covers them at parameterized sizes.
        return {
            name: TOPOLOGY_BUILDERS[name]() for name in PUBLISHED
        }

    substrates = benchmark.pedantic(build_all, rounds=1, iterations=1)

    lines = ["Topology     Nodes  Links  Edge  Transport  Core"]
    for name, substrate in substrates.items():
        summary = substrate.summary()
        lines.append(
            f"{name:<12} {summary['nodes']:>5}  {summary['links']:>5}  "
            f"{summary['edge']:>4}  {summary['transport']:>9}  "
            f"{summary['core']:>4}"
        )
        assert (summary["nodes"], summary["links"]) == PUBLISHED[name]
    lines.append("")
    lines.append("Tier parameters (CU):")
    for tier in Tier:
        lines.append(
            f"  {tier.name.lower():<10} node cap {TIER_NODE_CAPACITY[tier]:>9.0f}  "
            f"mean node cost {TIER_MEAN_NODE_COST[tier]:>4.0f}  "
            f"link cap {TIER_LINK_CAPACITY[tier]:>9.0f}"
        )
    record("table2_topologies", lines)

    # Table II structure: ×3 capacity ratios between successive tiers.
    assert TIER_NODE_CAPACITY[Tier.TRANSPORT] == 3 * TIER_NODE_CAPACITY[Tier.EDGE]
    assert TIER_NODE_CAPACITY[Tier.CORE] == 3 * TIER_NODE_CAPACITY[Tier.TRANSPORT]
