"""Fig. 16: runtime scalability.

(a) Runtime vs request arrival rate on Iris @100 % — both OLIVE and QUICKG
process requests serially, so runtime grows linearly with the rate.
(b–e) Runtime vs utilization per topology — the paper reports OLIVE faster
than QUICKG by 1.2–7.8×, with OLIVE's runtime growing and QUICKG's falling
as utilization rises (QUICKG rejects more, skipping work).
"""

import numpy as np

from _bench_utils import FAST, UTILIZATIONS, bench_config, record
from repro.experiments.figures import run_runtime_scaling

ARRIVAL_RATES = (5.0, 20.0) if FAST else (2.0, 5.0, 10.0, 20.0)
RUNTIME_TOPOLOGIES = ("CittaStudi",) if FAST else ("Iris", "CittaStudi")


def test_fig16_runtime_scalability(benchmark):
    def run_all():
        results = {}
        for topology in RUNTIME_TOPOLOGIES:
            config = bench_config(topology=topology, repetitions=1)
            results[topology] = run_runtime_scaling(
                config, ARRIVAL_RATES, UTILIZATIONS
            )
        return results

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for topology, result in data.items():
        lines.append(f"[{topology}] runtime vs arrival rate (per-node λ)")
        for rate, summary in result["by_rate"].items():
            lines.append(
                f"  λ={rate:>4.0f}  OLIVE={summary['OLIVE'].mean:7.3f}s  "
                f"QUICKG={summary['QUICKG'].mean:7.3f}s"
            )
        lines.append(f"[{topology}] runtime vs utilization")
        for utilization, summary in result["by_utilization"].items():
            speedup = summary["QUICKG"].mean / max(summary["OLIVE"].mean, 1e-9)
            lines.append(
                f"  u={utilization:>4.0%}  OLIVE={summary['OLIVE'].mean:7.3f}s  "
                f"QUICKG={summary['QUICKG'].mean:7.3f}s  speedup={speedup:4.1f}x"
            )
        lines.append("")
    record("fig16_runtime", lines)

    for topology, result in data.items():
        rates = sorted(result["by_rate"])
        olive_times = [result["by_rate"][r]["OLIVE"].mean for r in rates]
        # Paper shape 1: runtime grows with the arrival rate, roughly
        # linearly — the highest rate costs more than the lowest, and the
        # growth factor is within 4× of the rate ratio.
        assert olive_times[-1] > olive_times[0]
        ratio = olive_times[-1] / max(olive_times[0], 1e-9)
        rate_ratio = rates[-1] / rates[0]
        assert ratio < 4 * rate_ratio
        # Paper shape 2: OLIVE is faster than QUICKG at every utilization.
        for utilization, summary in result["by_utilization"].items():
            assert (
                summary["OLIVE"].mean <= summary["QUICKG"].mean * 1.2
            ), (topology, utilization)
