"""Markdown summary of the hot-path / serve trajectory files.

Prints the most recent ``BENCH_hotpath.json`` and ``BENCH_serve.json``
rows — engine speedups over the frozen reference, drive-style overhead
ratios — together with the delta against the previous comparable row
(same fast/full mode), so a regression reads as a signed number instead
of two JSON blobs. CI's bench-smoke step pipes the output into
``$GITHUB_STEP_SUMMARY``; locally it is just a readable recap:

    PYTHONPATH=src python benchmarks/summarize_deltas.py

The script only reads the trajectory files the benchmarks append to; it
never runs a simulation itself, so it is safe in any environment.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def _load(path: Path) -> list[dict]:
    try:
        rows = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return rows if isinstance(rows, list) else []


def _latest_pair(rows: list[dict]) -> tuple[dict | None, dict | None]:
    """(latest, previous-with-same-mode) — smoke rows never compare
    against full-run rows; their workloads differ."""
    if not rows:
        return None, None
    latest = rows[-1]
    mode = latest.get("fast_mode")
    for row in reversed(rows[:-1]):
        if row.get("fast_mode") == mode:
            return latest, row
    return latest, None


def _delta(current: float, previous: float | None) -> str:
    if previous is None:
        return "—"
    return f"{current - previous:+.3f}"


def _hotpath_lines(results_dir: Path) -> list[str]:
    latest, previous = _latest_pair(_load(results_dir / "BENCH_hotpath.json"))
    if latest is None:
        return ["_no BENCH_hotpath.json rows yet_"]
    mode = "smoke" if latest.get("fast_mode") else "full"
    lines = [
        f"### Hot path ({mode}, {latest.get('timestamp', 'undated')})",
        "",
        "| engine | speedup vs reference | Δ prev | batch rows | fallbacks |",
        "|---|---|---|---|---|",
    ]
    for name, row in latest.get("engines", {}).items():
        speedup = row.get("speedup_vs_reference", float("nan"))
        prev_speedup = (
            previous.get("engines", {}).get(name, {}).get(
                "speedup_vs_reference"
            )
            if previous else None
        )
        greedy = row.get("greedy", {})
        lines.append(
            f"| {name} | {speedup:.3f}x | "
            f"{_delta(speedup, prev_speedup)} | "
            f"{greedy.get('batch_rows', '—')} | "
            f"{greedy.get('batch_fallbacks', '—')} |"
        )
    embed = latest.get("embed_call")
    if embed:
        lines.append(
            f"\nembed call: {embed['speedup']:.2f}x "
            f"({embed['fast_us_per_call']:.1f}µs vs "
            f"{embed['reference_us_per_call']:.1f}µs reference)"
        )
    return lines


def _serve_lines(results_dir: Path) -> list[str]:
    latest, previous = _latest_pair(_load(results_dir / "BENCH_serve.json"))
    if latest is None:
        return ["_no BENCH_serve.json rows yet_"]
    mode = "smoke" if latest.get("fast_mode") else "full"
    lines = [
        f"### Serve overhead ({mode}, {latest.get('timestamp', 'undated')})",
        "",
        "| engine | stepped/batch | Δ prev | served/batch | Δ prev |",
        "|---|---|---|---|---|",
    ]
    for name, row in latest.get("paths", {}).items():
        stepped = row.get("stepped_over_batch", float("nan"))
        served = row.get("served_over_batch", float("nan"))
        prev_row = (
            previous.get("paths", {}).get(name, {}) if previous else {}
        )
        lines.append(
            f"| {name} | {stepped:.3f} | "
            f"{_delta(stepped, prev_row.get('stepped_over_batch'))} | "
            f"{served:.3f} | "
            f"{_delta(served, prev_row.get('served_over_batch'))} |"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=RESULTS_DIR,
        help="directory holding the BENCH_*.json trajectory files",
    )
    args = parser.parse_args(argv)
    sections = (
        ["## Benchmark deltas", ""]
        + _hotpath_lines(args.results_dir)
        + [""]
        + _serve_lines(args.results_dir)
    )
    print("\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
