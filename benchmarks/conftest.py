"""Benchmark fixtures. Helper functions live in _bench_utils."""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench_utils import (
    FAST,
    SLOTOFF_TOPOLOGIES,
    UTILIZATIONS,
    bench_config,
    bench_runner,
)
from repro.api import Experiment


def pytest_collection_modifyitems(items):
    """Every benchmark is slow: excluded from ``-m "not slow"`` runs.

    The hook sees the whole session's items, so restrict to this
    directory — tests elsewhere manage their own markers.
    """
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def utilization_sweep():
    """Shared Fig. 6/7 data: one sweep per topology, computed lazily.

    Returns a callable ``compute(topology) → {utilization → {alg:metric →
    CI}}`` backed by a session cache, so whichever benchmark touches a
    topology first pays its cost and Fig. 7 reuses Fig. 6's runs.
    """
    cache: dict = {}

    def compute(topology: str):
        if topology not in cache:
            algorithms = (
                ("OLIVE", "QUICKG", "SLOTOFF")
                if topology in SLOTOFF_TOPOLOGIES
                else ("OLIVE", "QUICKG")
            )
            config = bench_config(
                topology=topology,
                repetitions=1 if (topology in SLOTOFF_TOPOLOGIES or FAST) else 2,
            )
            cache[topology] = (
                Experiment(config)
                .algorithms(*algorithms)
                .sweep("utilization", UTILIZATIONS)
                .run(runner=bench_runner())
                .keyed("utilization")
            )
        return cache[topology]

    return compute
