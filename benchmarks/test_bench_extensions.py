"""Extension comparison: extra baseline and future-work planners.

Not a paper figure. Compares, on one diurnal workload (strong day/night
cycle at 120 % mean utilization):

* OLIVE with the paper's single time-independent plan;
* OLIVE-W with phase-sliced cyclic plans (the paper's future-work idea);
* OLIVE-R with periodic online replanning (no offline history needed);
* QUICKG and the extra NODERANK baseline (Cheng et al.-style ranking).

Expected shape: every plan-based variant beats the plan-less baselines,
and the time-aware planners are at least as good as the single plan.
"""

from _bench_utils import FAST, record
from repro.apps.catalog import draw_standard_mix
from repro.baselines.noderank import NodeRankAlgorithm
from repro.baselines.quickg import make_quickg
from repro.core.olive import OliveAlgorithm
from repro.plan.api import compute_plan
from repro.plan.replanning import ReplanningOliveAlgorithm
from repro.plan.windowed import WindowedOliveAlgorithm, compute_windowed_plans
from repro.sim.engine import simulate
from repro.sim.metrics import rejection_rate
from repro.stats.aggregate import build_aggregate_demand
from repro.substrate.topologies import make_citta_studi
from repro.utils.rng import child_rng, make_rng
from repro.workload.diurnal import generate_diurnal_trace
from repro.workload.trace import TraceConfig, demand_mean_for_utilization

PERIOD = 120
HISTORY = 240 if FAST else 360
ONLINE = 60 if FAST else 120


def test_extension_planners_on_diurnal_workload(benchmark):
    def run_all():
        rng = make_rng(5)
        substrate = make_citta_studi()
        apps = draw_standard_mix(child_rng(rng, "apps"))
        demand_mean = demand_mean_for_utilization(1.2, substrate, apps)
        config = TraceConfig(
            history_slots=HISTORY,
            online_slots=ONLINE,
            demand_mean=demand_mean,
            demand_std=0.4 * demand_mean,
        )
        trace = generate_diurnal_trace(
            substrate, apps, config, child_rng(rng, "trace"),
            amplitude=0.8, period=PERIOD,
        )
        history = trace.history_requests()
        online = trace.online_requests()

        aggregates = build_aggregate_demand(
            history, HISTORY, rng=child_rng(rng, "agg")
        )
        single_plan = compute_plan(substrate, apps, aggregates)
        schedule = compute_windowed_plans(
            substrate, apps, history, HISTORY, ONLINE,
            num_windows=3, rng=child_rng(rng, "win"), cycle_period=PERIOD,
        )
        algorithms = {
            "OLIVE": OliveAlgorithm(substrate, apps, single_plan),
            "OLIVE-W": WindowedOliveAlgorithm(substrate, apps, schedule),
            "OLIVE-R": ReplanningOliveAlgorithm(
                substrate, apps, interval=PERIOD // 4, window=PERIOD // 2,
                seed_plan=single_plan,
            ),
            "QUICKG": make_quickg(substrate, apps),
            "NODERANK": NodeRankAlgorithm(substrate, apps),
        }
        window = (ONLINE // 6, ONLINE - 5)
        rates = {}
        for label, algorithm in algorithms.items():
            result = simulate(algorithm, online, ONLINE)
            rates[label] = rejection_rate(result, window)
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["variant    rejection rate (diurnal, 120% mean utilization)"]
    for label, rate in rates.items():
        lines.append(f"{label:<9}  {rate:.4f}")
    record("extension_planners", lines)

    # Plan-based variants beat plain greedy.
    for label in ("OLIVE", "OLIVE-W", "OLIVE-R"):
        assert rates[label] <= rates["QUICKG"] + 0.02, label
    # Time-aware planning at least matches the single plan.
    assert rates["OLIVE-W"] <= rates["OLIVE"] + 0.02
