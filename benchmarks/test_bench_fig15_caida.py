"""Fig. 15: CAIDA-derived demand on Iris (rejection rate and cost).

Our CAIDA substitute reproduces the operative trace characteristics:
Poisson aggregate arrivals attributed to heavy-tailed (Pareto) sources
statically mapped to edge datacenters (see DESIGN.md §2).

Paper shape: OLIVE tracks SLOTOFF for utilization ≤ 100 % and the gap grows
only a few points beyond; OLIVE's cost is consistently below QUICKG's.
"""

from _bench_utils import FAST, UTILIZATIONS, bench_config, format_ci, record
from repro.experiments.figures import run_caida


def test_fig15_caida_demand(benchmark):
    config = bench_config(repetitions=1)
    algorithms = ("OLIVE", "QUICKG") if FAST else ("OLIVE", "QUICKG", "SLOTOFF")

    data = benchmark.pedantic(
        lambda: run_caida(config, UTILIZATIONS, algorithms),
        rounds=1,
        iterations=1,
    )

    lines = ["util   " + "  ".join(f"{a+':rr':>18}" for a in algorithms)]
    for utilization, summary in data.items():
        cells = "  ".join(
            f"{format_ci(summary[f'{a}:rejection_rate']):>18}"
            for a in algorithms
        )
        lines.append(f"{utilization:>4.0%}   {cells}")
    lines.append("")
    lines.append("util   OLIVE cost / QUICKG cost")
    for utilization, summary in data.items():
        ratio = (
            summary["OLIVE:total_cost"].mean
            / max(summary["QUICKG:total_cost"].mean, 1e-12)
        )
        lines.append(f"{utilization:>4.0%}   {ratio:.3f}")
    record("fig15_caida", lines)

    for utilization, summary in data.items():
        olive = summary["OLIVE:rejection_rate"].mean
        quickg = summary["QUICKG:rejection_rate"].mean
        assert olive <= quickg + 0.02, utilization
        # Cost consistently at or below QUICKG (paper Fig. 15b).
        assert (
            summary["OLIVE:total_cost"].mean
            <= summary["QUICKG:total_cost"].mean * 1.05
        ), utilization
