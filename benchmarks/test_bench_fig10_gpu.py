"""Fig. 10: the GPU placement-restriction scenario, Iris @100 %.

Four chain applications, each with one GPU VNF that must run on a GPU
datacenter; core nodes and four random edge nodes are split into GPU and
non-GPU halves, non-GPU capacity reduced by 25 %. QUICKG cannot participate
(collocation is impossible across the GPU boundary).

Paper shape: OLIVE within a few points of SLOTOFF and clearly below FULLG.
"""

from _bench_utils import FAST, bench_config, format_ci, record
from repro.experiments.figures import run_gpu_scenario


def test_fig10_gpu_scenario(benchmark):
    config = bench_config(utilization=1.0, repetitions=1)
    algorithms = ("OLIVE", "FULLG") if FAST else ("OLIVE", "FULLG", "SLOTOFF")

    summary = benchmark.pedantic(
        lambda: run_gpu_scenario(config, algorithms),
        rounds=1,
        iterations=1,
    )

    lines = ["algorithm  rejection rate"]
    for name in algorithms:
        lines.append(
            f"{name:<9}  {format_ci(summary[f'{name}:rejection_rate'])}"
        )
    record("fig10_gpu", lines)

    olive = summary["OLIVE:rejection_rate"].mean
    fullg = summary["FULLG:rejection_rate"].mean
    # Paper shape: OLIVE significantly outperforms FULLG under the GPU
    # constraint (12 % lower in the paper).
    assert olive <= fullg + 0.02
    if "SLOTOFF:rejection_rate" in summary:
        slotoff = summary["SLOTOFF:rejection_rate"].mean
        # OLIVE within a few points of SLOTOFF (2 % in the paper).
        assert olive - slotoff <= 0.12
