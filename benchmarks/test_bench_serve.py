"""Streaming-session overhead benchmark: batch vs step() vs offer().

The batch entry point ``simulate()`` is now a thin wrapper over the
streaming :class:`~repro.sim.session.SimulationSession`; this benchmark
guards the cost of that indirection and of the two streaming drive
styles, recording a ``BENCH_serve.json`` trajectory (one record
appended per run):

* **batch** — ``simulate()`` over the full trace (the figure drivers'
  path; any slow-down here regresses every experiment);
* **stepped** — the same session driven ``step()`` by ``step()`` from
  outside, measuring the per-slot lifecycle overhead;
* **served** — the same arrivals pushed through
  ``EmbedderService.offer_many()`` one slot-run at a time (admission
  check + per-offer metrics on top of the session, with the run routed
  through the algorithm's vectorized batch kernel).

Decisions are asserted bit-identical across all three on the exact
benchmark workload, every run. Wall-clock gates (stepped ≤ 5% over
batch) only bind on full local runs — smoke mode
(``REPRO_BENCH_FAST=1``, used by CI) keeps the equivalence assertions
but skips timing floors, like the hot-path benchmark.
"""

from __future__ import annotations

import contextlib
import gc
import json
import time

import numpy as np

from _bench_utils import FAST, RESULTS_DIR, bench_config, record
from repro.baselines.quickg import make_quickg
from repro.core.olive import OliveAlgorithm
from repro.experiments.scenario import build_scenario
from repro.serve import EmbedderService
from repro.sim.engine import simulate
from repro.sim.session import SimulationSession

TRAJECTORY_FILE = RESULTS_DIR / "BENCH_serve.json"

#: The design target recorded in every trajectory entry: stepping the
#: session from outside should cost at most 5% over the batch run.
TARGET_STEP_OVERHEAD = 1.05
#: The assertion bound on the best paired-round ratio — looser than the
#: target because single-machine wall-clock noise at these run lengths
#: is ~±10% (full local runs only; smoke mode never gates on time).
MAX_STEP_OVERHEAD = 1.15
#: Bound on ``served_over_batch``: offering a slot's arrivals through
#: :meth:`EmbedderService.offer_many` must stay within 10% of the batch
#: drive. The per-offer admission/metrics layer amortizes over the run
#: and the embed work itself goes through the same batch kernel, so the
#: serve path no longer pays a per-request penalty.
MAX_SERVE_OVERHEAD = 1.10


@contextlib.contextmanager
def _quiesced_gc():
    """Collect upfront, then keep the collector out of the timed region.

    The three paths allocate ~10k decision objects per run; without this
    the generational collector fires at arbitrary points and charges a
    growing heap to whichever path happens to run later — the dominant
    noise source at these sub-second run lengths.
    """
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _assert_identical(ours, batch, label):
    assert len(ours.decisions) == len(batch.decisions), label
    for a, b in zip(ours.decisions, batch.decisions):
        assert a == b, (label, a.request.id)
    assert ours.preemptions == batch.preemptions, label
    assert np.array_equal(ours.allocated_demand, batch.allocated_demand)
    assert np.array_equal(ours.resource_cost, batch.resource_cost)


def _make_algorithms(scenario, names, expected_per_slot):
    algorithms = {}
    for name in names:
        if name == "OLIVE":
            algorithms[name] = OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
                expected_offers_per_slot=expected_per_slot,
            )
        else:
            algorithms[name] = make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency,
                expected_offers_per_slot=expected_per_slot,
            )
    return algorithms


def test_serve_overhead(benchmark):
    config = bench_config(
        topology="CittaStudi",
        repetitions=1,
        arrivals_per_node=5.0 if FAST else 10.0,
    )
    scenario = build_scenario(config, 0)
    online = scenario.online_requests()
    slots = config.online_slots
    names = ("QUICKG",) if FAST else ("OLIVE", "QUICKG")
    # Min-of-5: at these ~0.1 s run lengths single-draw scheduler noise
    # is ±15-20%, larger than the overheads the gates bound; five
    # rotated rounds make the recorded minima repeatable.
    rounds = 1 if FAST else 5
    expected_per_slot = len(online) / max(slots, 1)
    by_slot: dict[int, list] = {}
    for request in sorted(online):
        by_slot.setdefault(request.arrival, []).append(request)

    def run_batch(name):
        algorithm = _make_algorithms(
            scenario, (name,), expected_per_slot
        )[name]
        with _quiesced_gc():
            start = time.perf_counter()
            result = simulate(algorithm, online, slots)
            return result, time.perf_counter() - start

    def run_stepped(name):
        algorithm = _make_algorithms(
            scenario, (name,), expected_per_slot
        )[name]
        session = SimulationSession(algorithm, online, slots)
        with _quiesced_gc():
            start = time.perf_counter()
            for _ in range(slots):
                session.step()
            return session.result(), time.perf_counter() - start

    def run_served(name):
        algorithm = _make_algorithms(
            scenario, (name,), expected_per_slot
        )[name]
        session = SimulationSession(algorithm, [], slots)
        service = EmbedderService(session)
        with _quiesced_gc():
            start = time.perf_counter()
            for slot in range(slots):
                run = by_slot.get(slot)
                if run:
                    service.offer_many(run)
                service.advance_to(slot + 1)
            return service.result(), time.perf_counter() - start

    def run_all():
        """Per-round walls per (path, algorithm); results kept once.

        The path order rotates per round so a drifting machine load
        (other processes ramping up mid-benchmark) cannot systematically
        penalize whichever path happens to run last — with min-of-rounds
        every path gets an early slot.
        """
        paths = (
            ("batch", run_batch),
            ("stepped", run_stepped),
            ("served", run_served),
        )
        measured = {}
        for name in names:
            walls = {path: [] for path, _ in paths}
            results = {}
            for round_index in range(rounds):
                shift = round_index % len(paths)
                for path, runner in paths[shift:] + paths[:shift]:
                    results[path], wall = runner(name)
                    walls[path].append(wall)
            measured[name] = (results, walls)
        return measured

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    entry = {
        "topology": config.topology,
        "arrivals_per_node": config.arrivals_per_node,
        "online_slots": slots,
        "num_requests": len(online),
        "fast_mode": FAST,
        "rounds": rounds,
        "target_stepped_over_batch": TARGET_STEP_OVERHEAD,
        "paths": {},
    }
    lines = [
        f"[{config.topology}] λ={config.arrivals_per_node:.0f}, "
        f"{slots} slots, {len(online)} requests, min of {rounds} round(s)"
    ]
    for name in names:
        results, walls = measured[name]
        batch_result = results["batch"]
        batch_wall = min(walls["batch"])
        stepped_wall = min(walls["stepped"])
        served_wall = min(walls["served"])
        _assert_identical(results["stepped"], batch_result, f"stepped:{name}")
        _assert_identical(results["served"], batch_result, f"served:{name}")
        # Overhead ratios are paired per round (each round times all
        # three paths back to back), then the best round wins: a machine
        # that is uniformly slow for one whole round cancels out of that
        # round's ratio, where a min-wall/min-wall quotient would pair a
        # lucky batch draw with an unlucky served one. At these ~0.1 s
        # run lengths between-round drift is several times the overhead
        # being gated.
        step_overhead = min(
            s / max(b, 1e-12)
            for s, b in zip(walls["stepped"], walls["batch"])
        )
        serve_overhead = min(
            s / max(b, 1e-12)
            for s, b in zip(walls["served"], walls["batch"])
        )
        entry["paths"][name] = {
            "batch_wall_seconds": batch_wall,
            "stepped_wall_seconds": stepped_wall,
            "served_wall_seconds": served_wall,
            "stepped_over_batch": step_overhead,
            "served_over_batch": serve_overhead,
            "per_step_overhead_us": 1e6
            * (step_overhead - 1.0) * batch_wall
            / slots,
            "per_offer_overhead_us": 1e6
            * (serve_overhead - 1.0) * batch_wall
            / max(len(online), 1),
        }
        lines.append(
            f"  {name:7} batch {batch_wall:6.3f}s  stepped "
            f"{stepped_wall:6.3f}s ({step_overhead:5.2f}x)  served "
            f"{served_wall:6.3f}s ({serve_overhead:5.2f}x)  "
            "(decisions identical)"
        )
    record("serve_overhead", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    try:
        trajectory = json.loads(TRAJECTORY_FILE.read_text())
    except (OSError, ValueError):
        trajectory = []
    trajectory.append(entry)
    TRAJECTORY_FILE.write_text(json.dumps(trajectory, indent=1) + "\n")

    if not FAST:
        for name in names:
            assert entry["paths"][name]["stepped_over_batch"] <= (
                MAX_STEP_OVERHEAD
            ), (name, entry["paths"][name])
            assert entry["paths"][name]["served_over_batch"] <= (
                MAX_SERVE_OVERHEAD
            ), (name, entry["paths"][name])
