"""Scale curve: throughput vs generated substrate size (fig_scale).

Runs the ``fig_scale`` driver — OLIVE and QUICKG on the generated
``tiered-x`` family across a >=10x node-count span — twice, serially and
with the seeded repetitions fanned over worker processes, and:

* records slots/sec and requests/sec per size to a ``BENCH_scale.json``
  trajectory file (one record appended per run, so throughput
  regressions show up as a time series across commits);
* asserts the serial and parallel legs agree **bit-for-bit on every
  decision-derived metric** (rejection, costs, balance, resilience) —
  only the wall-clock metrics (runtime, slots/sec, requests/sec) may
  differ between the two legs.

The PLAN-VNE build dominates wall-clock at the top of the ladder (~50s
at 400 nodes even with the single-chain ``scale`` mix); the simulations
themselves stay in single-digit seconds. Smoke mode
(``REPRO_BENCH_FAST=1``, used by CI) shrinks the ladder to (30, 60)
with one repetition but keeps the serial-vs-parallel assertion.
"""

from __future__ import annotations

import json
import time

from _bench_utils import FAST, RESULTS_DIR, bench_config, record
from repro.experiments.figures import SCALE_SIZES, run_scale, scale_config
from repro.sim.runner import ParallelRunner

TRAJECTORY_FILE = RESULTS_DIR / "BENCH_scale.json"

FAMILY = "tiered-x"
SIZES = (30, 60) if FAST else SCALE_SIZES["bench"]
ALGORITHMS = ("OLIVE", "QUICKG")
PARALLEL_JOBS = 2

#: Metric suffixes that are real timings; everything else is derived
#: purely from decisions and must match across serial/parallel legs.
WALLCLOCK_SUFFIXES = ("runtime", "slots_per_sec", "requests_per_sec")


def _deterministic(summary):
    """The decision-derived (machine-independent) slice of a summary."""
    return {
        key: (interval.mean, interval.half_width, interval.count)
        for key, interval in summary.items()
        if not key.endswith(WALLCLOCK_SUFFIXES)
    }


def test_scale_curve(benchmark):
    config = scale_config(bench_config(repetitions=1 if FAST else 2))

    def run_serial():
        return run_scale(config, SIZES, family=FAMILY, algorithms=ALGORITHMS)

    serial = benchmark.pedantic(run_serial, rounds=1, iterations=1)
    parallel = run_scale(
        config,
        SIZES,
        family=FAMILY,
        algorithms=ALGORITHMS,
        runner=ParallelRunner.from_jobs(PARALLEL_JOBS),
    )

    assert set(serial) == set(SIZES)
    for size in SIZES:
        assert _deterministic(serial[size]) == _deterministic(
            parallel[size]
        ), f"jobs=1 vs jobs={PARALLEL_JOBS} diverged at {FAMILY}:{size}"

    entry = {
        "family": FAMILY,
        "sizes": list(SIZES),
        "repetitions": config.repetitions,
        "arrivals_per_node": config.arrivals_per_node,
        "online_slots": config.online_slots,
        "fast_mode": FAST,
        "parallel_jobs": PARALLEL_JOBS,
        "points": {},
    }
    lines = [
        f"[{FAMILY}] sizes {SIZES}, λ={config.arrivals_per_node:.0f}, "
        f"{config.online_slots} slots, {config.repetitions} reps "
        f"(decisions identical at jobs=1 and jobs={PARALLEL_JOBS})"
    ]
    for size in SIZES:
        summary = serial[size]
        point = {}
        for name in ALGORITHMS:
            slots_per_sec = summary[f"{name}:slots_per_sec"].mean
            requests_per_sec = summary[f"{name}:requests_per_sec"].mean
            assert slots_per_sec > 0 and requests_per_sec > 0, (size, name)
            point[name] = {
                "slots_per_sec": slots_per_sec,
                "requests_per_sec": requests_per_sec,
                "runtime_seconds": summary[f"{name}:runtime"].mean,
                "rejection_rate": summary[f"{name}:rejection_rate"].mean,
            }
            lines.append(
                f"  n={size:<4} {name:7} {slots_per_sec:8.1f} slots/s  "
                f"{requests_per_sec:9.0f} req/s  "
                f"rejection={point[name]['rejection_rate']:.3f}"
            )
        entry["points"][str(size)] = point

    # Per-slot work grows with substrate size, so throughput must fall
    # across a 10x node-count span — by a huge margin in practice, so
    # this is a sanity check, not a wall-clock gate.
    if not FAST:
        for name in ALGORITHMS:
            top = entry["points"][str(SIZES[0])][name]["slots_per_sec"]
            bottom = entry["points"][str(SIZES[-1])][name]["slots_per_sec"]
            assert top > bottom, (name, top, bottom)

    record("scale", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    try:
        trajectory = json.loads(TRAJECTORY_FILE.read_text())
    except (OSError, ValueError):
        trajectory = []
    trajectory.append(entry)
    TRAJECTORY_FILE.write_text(json.dumps(trajectory, indent=1) + "\n")
