"""Ablations of OLIVE's design choices (DESIGN.md §4).

Not a paper figure — these isolate the contribution of each mechanism the
paper's design motivates:

* **borrowing** (partial fits, Alg. 2 lines 27–29) — without it, demand
  above a class guarantee falls straight to the greedy path;
* **preemption** (lines 8–9, 35–38) — without it, borrowed allocations can
  permanently displace planned ones;
* **P̂α percentile choice** (Sec. III-A: P̂80 avoids over-provisioning) —
  planning for P̂50 under-provisions, for P̂100 over-provisions;
* **time-windowed plans** (the paper's future-work extension) vs the single
  time-independent plan.

Expected shape: full OLIVE ≤ every ablated variant on rejection rate, and
all variants ≤ QUICKG.
"""

from _bench_utils import FAST, bench_config, record
from repro.core.olive import OliveAlgorithm
from repro.experiments.scenario import build_scenario, make_algorithm
from repro.plan.windowed import WindowedOliveAlgorithm, compute_windowed_plans
from repro.sim.engine import simulate
from repro.sim.metrics import rejection_rate
from repro.utils.rng import make_rng


def test_ablation_mechanisms(benchmark):
    config = bench_config(utilization=1.4, repetitions=1)

    def run_all():
        scenario = build_scenario(config, seed=0)
        online = scenario.online_requests()
        variants = {
            "OLIVE": OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                scenario.efficiency,
            ),
            "no-borrowing": OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                scenario.efficiency, enable_borrowing=False, name="OLIVE-nb",
            ),
            "no-preemption": OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                scenario.efficiency, enable_preemption=False, name="OLIVE-np",
            ),
            "QUICKG": make_algorithm("QUICKG", scenario),
        }
        if not FAST:
            schedule = compute_windowed_plans(
                scenario.substrate, scenario.apps,
                scenario.trace.history_requests(),
                config.history_slots, config.online_slots,
                num_windows=3, alpha=config.percentile_alpha,
                efficiency=scenario.efficiency, rng=make_rng(0),
            )
            variants["windowed-3"] = WindowedOliveAlgorithm(
                scenario.substrate, scenario.apps, schedule,
                scenario.efficiency,
            )
        rates = {}
        for label, algorithm in variants.items():
            result = simulate(algorithm, online, config.online_slots)
            rates[label] = rejection_rate(result, config.measure_window)
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = ["variant        rejection rate"]
    for label, rate in rates.items():
        lines.append(f"{label:<13}  {rate:.4f}")
    record("ablation_mechanisms", lines)

    # Full OLIVE at least matches every ablated variant (small tolerance:
    # single seed).
    for label in ("no-borrowing", "no-preemption"):
        assert rates["OLIVE"] <= rates[label] + 0.02, label
    # Every planned variant beats plain greedy.
    for label, rate in rates.items():
        if label != "QUICKG":
            assert rate <= rates["QUICKG"] + 0.02, label


def test_ablation_percentile_choice(benchmark):
    """Planning percentile P̂α: the paper's P̂80 vs under/over-provisioning."""
    alphas = (50.0, 80.0) if FAST else (50.0, 80.0, 100.0)

    def run_all():
        rates = {}
        for alpha in alphas:
            config = bench_config(
                utilization=1.0, repetitions=1, percentile_alpha=alpha
            )
            scenario = build_scenario(config, seed=0)
            result = simulate(
                make_algorithm("OLIVE", scenario),
                scenario.online_requests(),
                config.online_slots,
            )
            rates[alpha] = rejection_rate(result, config.measure_window)
        return rates

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["alpha  OLIVE rejection rate"]
    for alpha, rate in rates.items():
        lines.append(f"P{alpha:<5.0f} {rate:.4f}")
    record("ablation_percentile", lines)

    # P̂80's plan should not be materially worse than either extreme — the
    # compensation machinery absorbs most of the difference (cf. Fig. 13).
    best = min(rates.values())
    assert rates[80.0] <= best + 0.05
