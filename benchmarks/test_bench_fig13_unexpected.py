"""Fig. 13: planning for the wrong demand level (unexpected demand).

The online phase runs at 140 % utilization while the plan was computed for
a history scaled to 60 % or 100 %. Paper shape: OLIVE (60 %) and OLIVE
(100 %) land only a few points above OLIVE (140 %) and stay clearly below
QUICKG — the plan keeps helping even when demand far exceeds expectations.
"""

from _bench_utils import FAST, bench_config, format_ci, record
from repro.experiments.figures import run_unexpected_demand

PLAN_LEVELS = (0.6,) if FAST else (0.6, 1.0)


def test_fig13_unexpected_demand(benchmark):
    config = bench_config(utilization=1.4, repetitions=1)
    references = ("OLIVE", "QUICKG") if FAST else ("OLIVE", "QUICKG", "SLOTOFF")

    summary = benchmark.pedantic(
        lambda: run_unexpected_demand(config, PLAN_LEVELS, references),
        rounds=1,
        iterations=1,
    )

    lines = ["variant            rejection rate"]
    for name, interval in summary.items():
        lines.append(f"{name:<17}  {format_ci(interval)}")
    record("fig13_unexpected_demand", lines)

    olive_true = summary["OLIVE"].mean
    quickg = summary["QUICKG"].mean
    for level in PLAN_LEVELS:
        mismatched = summary[f"OLIVE:plan={level:.0%}"].mean
        # Paper shape 1: planning for the wrong level costs only a few
        # points (6 % worst case in the paper; generous margin here).
        assert mismatched <= olive_true + 0.12, level
        # Paper shape 2: still no worse than QUICKG.
        assert mismatched <= quickg + 0.02, level
