"""fig_resilience: the dynamic-event stress battery at bench scale.

Beyond the paper: the evaluation (Sec. IV-B) only exercises well-behaved
planned demand, so there is no paper shape to reproduce — instead this
benchmark asserts the *physics* of the event subsystem:

* every profile's run stays internally consistent (availability ≤ 1,
  disruption only where capacity events exist);
* destructive profiles (blackout) hurt availability at least as much as
  the undisturbed baseline;
* the reroute policy never disrupts more requests than plain preemption
  on the same schedule.
"""

from _bench_utils import bench_config, bench_runner, format_ci, record
from repro.experiments.figures import RESILIENCE_PROFILES, run_resilience

ALGORITHMS = ("OLIVE", "QUICKG")


def test_resilience_battery(benchmark):
    config = bench_config(repetitions=1, utilization=1.2)

    data = benchmark.pedantic(
        lambda: run_resilience(
            config,
            profiles=RESILIENCE_PROFILES,
            algorithms=ALGORITHMS,
            policy="reroute",
            runner=bench_runner(),
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        "profile             alg      "
        "rejection          disrupted          availability"
    ]
    for profile, summary in data.items():
        for algorithm in ALGORITHMS:
            lines.append(
                f"{profile:<18}  {algorithm:<7} "
                f"{format_ci(summary[f'{algorithm}:rejection_rate']):>17}  "
                f"{format_ci(summary[f'{algorithm}:disrupted_rate']):>17}  "
                f"{format_ci(summary[f'{algorithm}:availability']):>17}"
            )
    record("fig_resilience", lines)

    for profile, summary in data.items():
        for algorithm in ALGORITHMS:
            availability = summary[f"{algorithm}:availability"].mean
            disrupted = summary[f"{algorithm}:disrupted_rate"].mean
            assert 0.0 <= availability <= 1.0, (profile, algorithm)
            assert disrupted >= 0.0, (profile, algorithm)
            if profile in ("none", "flash-crowd", "ingress-migration"):
                # No capacity events → nothing can be disrupted.
                assert disrupted == 0.0, (profile, algorithm)

    for algorithm in ALGORITHMS:
        baseline = data["none"][f"{algorithm}:availability"].mean
        blackout = data["blackout"][f"{algorithm}:availability"].mean
        assert blackout <= baseline + 1e-9, algorithm


def test_reroute_never_disrupts_more_than_preempt(benchmark):
    config = bench_config(repetitions=1, utilization=1.2)

    def run_policies():
        return {
            policy: run_resilience(
                config,
                profiles=("blackout",),
                algorithms=("QUICKG",),
                policy=policy,
                runner=bench_runner(),
            )["blackout"]
            for policy in ("preempt", "reroute")
        }

    data = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    preempt = data["preempt"]["QUICKG:disrupted_rate"].mean
    reroute = data["reroute"]["QUICKG:disrupted_rate"].mean
    record(
        "fig_resilience_policies",
        [f"blackout QUICKG disrupted: preempt={preempt:.4f} "
         f"reroute={reroute:.4f}"],
    )
    assert reroute <= preempt + 1e-9
