"""Fig. 11: rejection balance index vs number of quantiles, Iris @140 %.

Paper shape: QUICKG (no planning) is the least balanced (0.53); OLIVE's
balance improves with the quantile count (0.65 @P=1, 0.84 @P=2, 0.89
@P=10) and saturates beyond P=10.
"""

from _bench_utils import FAST, bench_config, format_ci, record
from repro.experiments.figures import run_balance_quantiles

QUANTILES = (1, 10) if FAST else (1, 2, 10, 50)


def test_fig11_balance_index_by_quantiles(benchmark):
    config = bench_config(utilization=1.4, repetitions=1)

    summary = benchmark.pedantic(
        lambda: run_balance_quantiles(config, QUANTILES),
        rounds=1,
        iterations=1,
    )

    lines = ["variant       balance index"]
    for name, interval in summary.items():
        lines.append(f"{name:<12}  {format_ci(interval)}")
    record("fig11_balance_quantiles", lines)

    p_low = summary[f"OLIVE:P={QUANTILES[0]}"].mean
    p_high = summary["OLIVE:P=10"].mean
    # Paper shape 1: OLIVE with many quantiles is well balanced.
    assert p_high >= 0.8
    # Paper shape 2: more quantiles do not hurt balance.
    assert p_high >= p_low - 0.05
    if not FAST:
        # Paper shape 3: P=50 brings no further improvement over P=10.
        p10, p50 = summary["OLIVE:P=10"].mean, summary["OLIVE:P=50"].mean
        assert abs(p50 - p10) < 0.1
    # Note: the paper's QUICKG imbalance (index 0.53) does not reproduce at
    # bench scale — our QUICKG rejections are link-congestion-driven and
    # hence application-symmetric. Reported in the table and discussed in
    # EXPERIMENTS.md; the quantile trend for OLIVE is the load-bearing
    # claim and does reproduce.
