"""Sharded serving tier: aggregate offers/sec vs shard count.

Drives the same generated Poisson trace through the
:class:`~repro.shard.ShardedEmbedderService` at K ∈ {1, 2, 4, 8} process
workers on the ``tiered-x:400`` generated topology and records the
aggregate offer throughput to a ``BENCH_shard.json`` trajectory (one
record appended per run). Checkpointing stays at the serving default
(every slot boundary) so the measured number is the real tier, failover
insurance included.

Correctness gates, every run:

* **K=1 bit-identity** — the single-shard sharded service must produce
  the exact decision stream of the unsharded
  :class:`~repro.serve.EmbedderService` on the benchmark trace;
* all shard counts serve the same number of offers (the trace routes
  identically regardless of the partition).

Wall-clock gate (full runs only): K=4 must beat K=1 on aggregate
offers/sec — the whole point of the tier. Smoke mode
(``REPRO_BENCH_FAST=1``, used by CI) shrinks the topology and the shard
ladder but keeps the bit-identity gate.
"""

from __future__ import annotations

import json
import time

from _bench_utils import FAST, RESULTS_DIR, bench_config, record
from repro.api import Experiment
from repro.experiments.figures import scale_config
from repro.serve import poisson_offers
from repro.utils.rng import child_rng, make_rng

TRAJECTORY_FILE = RESULTS_DIR / "BENCH_shard.json"

TOPOLOGY = "tiered-x:120" if FAST else "tiered-x:400"
SHARD_COUNTS = (1, 2) if FAST else (1, 2, 4, 8)
ALGORITHM = "QUICKG"
SEED = 0


def _shard_bench_config():
    """The scale-curve preset on one generated topology (no sweep)."""
    config = scale_config(bench_config(topology=TOPOLOGY, repetitions=1))
    if FAST:
        config = config.with_(online_slots=12, measure_start=2,
                              measure_stop=10)
    return config


def _trace(scenario, slots):
    """The benchmark workload, materialized once and replayed per K."""
    rng = child_rng(make_rng(SEED), "serve-traffic")
    return list(poisson_offers(scenario, slots, rng))


def _drive(service, trace):
    """Offer the trace slot by slot; return (decisions, wall seconds)."""
    decisions = []
    start = time.perf_counter()
    for slot, batch in trace:
        if batch:
            decisions.extend(service.offer_many(batch))
        service.advance_to(slot + 1)
    return decisions, time.perf_counter() - start


def test_shard_throughput(benchmark):
    config = _shard_bench_config()
    experiment = Experiment(config).algorithms(ALGORITHM)
    slots = config.online_slots

    # The unsharded oracle: same scenario, same trace, one process.
    oracle = experiment.serve(seed=SEED)
    trace = _trace(oracle.scenario, slots)
    num_offers = sum(len(batch) for _, batch in trace)
    oracle_decisions, oracle_wall = _drive(oracle, trace)

    def run_ladder():
        measured = {}
        for num_shards in SHARD_COUNTS:
            service = experiment.serve(
                seed=SEED, shards=num_shards, shard_workers="process"
            )
            with service:
                decisions, wall = _drive(service, trace)
                measured[num_shards] = {
                    "decisions": decisions,
                    "wall": wall,
                    "cross_shard": service.cross_shard_stats(),
                    "boundary_links": len(service.partition.boundary_links),
                }
        return measured

    measured = benchmark.pedantic(run_ladder, rounds=1, iterations=1)

    # Gate: K=1 sharded ≡ unsharded, decision by decision.
    assert measured[1]["decisions"] == oracle_decisions
    for num_shards in SHARD_COUNTS:
        assert len(measured[num_shards]["decisions"]) == num_offers

    entry = {
        "topology": TOPOLOGY,
        "algorithm": ALGORITHM,
        "online_slots": slots,
        "num_offers": num_offers,
        "fast_mode": FAST,
        "unsharded_offers_per_sec": num_offers / oracle_wall,
        "shards": {},
    }
    lines = [
        f"[{TOPOLOGY}] {ALGORITHM}, {slots} slots, {num_offers} offers, "
        f"per-slot checkpointing (K=1 decisions ≡ unsharded)",
        f"  unsharded {num_offers / oracle_wall:8.0f} offers/s "
        f"({oracle_wall:6.2f}s)",
    ]
    base_rate = num_offers / measured[1]["wall"]
    for num_shards in SHARD_COUNTS:
        stats = measured[num_shards]
        rate = num_offers / stats["wall"]
        cross = stats["cross_shard"]
        entry["shards"][str(num_shards)] = {
            "offers_per_sec": rate,
            "wall_seconds": stats["wall"],
            "speedup_vs_k1": rate / base_rate,
            "boundary_links": stats["boundary_links"],
            "cross_shard_attempts": cross["attempts"],
            "cross_shard_commits": cross["commits"],
        }
        lines.append(
            f"  K={num_shards}       {rate:8.0f} offers/s "
            f"({stats['wall']:6.2f}s)  {rate / base_rate:5.2f}x vs K=1  "
            f"boundary={stats['boundary_links']}  "
            f"cross={cross['commits']}/{cross['attempts']}"
        )
    record("shard", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    try:
        trajectory = json.loads(TRAJECTORY_FILE.read_text())
    except (OSError, ValueError):
        trajectory = []
    trajectory.append(entry)
    TRAJECTORY_FILE.write_text(json.dumps(trajectory, indent=1) + "\n")

    # Wall-clock gate: sharding must pay for itself by K=4.
    if not FAST:
        assert entry["shards"]["4"]["speedup_vs_k1"] > 1.0, entry["shards"]
