"""Fig. 8: allocated vs requested demand per slot, Iris @140 % (zoom).

Paper shape: QUICKG fails to allocate a large portion of the demand even
during mild bursts; OLIVE tracks SLOTOFF closely and outperforms QUICKG
throughout the zoom window.
"""

import numpy as np

from _bench_utils import FAST, bench_config, record
from repro.experiments.figures import run_demand_zoom


def test_fig8_demand_zoom(benchmark):
    config = bench_config(utilization=1.4, repetitions=1)
    # The paper zooms into slots 200–230 of 600; proportionally scaled.
    zoom = (10, 40)
    algorithms = ("OLIVE", "QUICKG") if FAST else ("OLIVE", "QUICKG", "SLOTOFF")

    series = benchmark.pedantic(
        lambda: run_demand_zoom(config, zoom, algorithms=algorithms),
        rounds=1,
        iterations=1,
    )

    lines = [f"slot  requested  " + "  ".join(f"{a:>9}" for a in algorithms)]
    slots = series[algorithms[0]]["slots"]
    for i, slot in enumerate(slots):
        requested = series[algorithms[0]]["requested"][i]
        cells = "  ".join(
            f"{series[a]['allocated'][i]:>9.0f}" for a in algorithms
        )
        lines.append(f"{slot:>4}  {requested:>9.0f}  {cells}")
    means = {
        a: float(np.mean(series[a]["allocated"])) for a in algorithms
    }
    lines.append("")
    lines.append(
        "mean allocated: "
        + ", ".join(f"{a}={m:.0f}" for a, m in means.items())
    )
    record("fig08_demand_zoom", lines)

    # Paper shape: OLIVE sustains more allocated demand than QUICKG at 140%.
    assert means["OLIVE"] > means["QUICKG"]
    if "SLOTOFF" in means:
        # OLIVE stays within 2× of SLOTOFF even at the worst moments
        # (paper: "momentarily differs ... by a factor of 2").
        assert means["OLIVE"] >= 0.5 * means["SLOTOFF"]
