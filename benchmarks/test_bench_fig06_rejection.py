"""Fig. 6: rejection rate vs utilization, per topology.

Paper shape: rejection rises with utilization for every algorithm; OLIVE is
significantly below QUICKG (about ×2 at high load) and within a few points
of SLOTOFF (max gap 4 % in the paper).
"""

from _bench_utils import SWEEP_TOPOLOGIES, UTILIZATIONS, format_ci, record


def test_fig6_rejection_rate_vs_utilization(benchmark, utilization_sweep):
    data = benchmark.pedantic(
        lambda: {t: utilization_sweep(t) for t in SWEEP_TOPOLOGIES},
        rounds=1,
        iterations=1,
    )

    lines = []
    for topology, sweep in data.items():
        lines.append(f"[{topology}] rejection rate")
        algorithms = sorted(
            {key.split(":")[0] for key in next(iter(sweep.values()))}
        )
        header = "  util   " + "  ".join(f"{a:>18}" for a in algorithms)
        lines.append(header)
        for utilization in UTILIZATIONS:
            row = sweep[utilization]
            cells = "  ".join(
                f"{format_ci(row[f'{a}:rejection_rate']):>18}"
                for a in algorithms
            )
            lines.append(f"  {utilization:>4.0%}   {cells}")
        lines.append("")
    record("fig06_rejection_rate", lines)

    for topology, sweep in data.items():
        top = max(UTILIZATIONS)
        # Paper shape 1: rejection grows with utilization (QUICKG strictly).
        assert (
            sweep[top]["QUICKG:rejection_rate"].mean
            >= sweep[min(UTILIZATIONS)]["QUICKG:rejection_rate"].mean
        )
        # Paper shape 2: OLIVE ≤ QUICKG at every utilization level.
        for utilization in UTILIZATIONS:
            row = sweep[utilization]
            assert (
                row["OLIVE:rejection_rate"].mean
                <= row["QUICKG:rejection_rate"].mean + 0.02
            )
        # Paper shape 3: at overload OLIVE clearly beats QUICKG.
        assert (
            sweep[top]["OLIVE:rejection_rate"].mean
            < sweep[top]["QUICKG:rejection_rate"].mean
        )
        # Paper shape 4: OLIVE within a few points of SLOTOFF where run.
        if f"SLOTOFF:rejection_rate" in sweep[top]:
            gap = (
                sweep[top]["OLIVE:rejection_rate"].mean
                - sweep[top]["SLOTOFF:rejection_rate"].mean
            )
            assert gap <= 0.10, f"{topology}: OLIVE-SLOTOFF gap {gap:.3f}"
