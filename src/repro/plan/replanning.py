"""Online replanning: refresh the plan from recently observed demand.

The paper's conclusion highlights the modularity of the plan/execute split:
"the planning mechanism best suited for each practical setting" can be
plugged in. This module implements the natural online variant — instead of
one plan computed from a historical trace, the algorithm records the
requests it actually observes and re-solves PLAN-VNE every ``interval``
slots from a sliding window of that live history. This removes the
stationarity assumption (Sec. III-A) at the price of periodic LP solves.

Replanning reuses :meth:`OliveAlgorithm.switch_plan`, so allocations made
under a retired plan become borrowed (preemptible) under the new one.
"""

from __future__ import annotations

import numpy as np

from repro.apps.application import Application
from repro.apps.efficiency import EfficiencyModel
from repro.core.olive import Decision, OliveAlgorithm
from repro.errors import PlanError
from repro.plan.api import compute_plan, empty_plan
from repro.plan.formulation import PlanVNEConfig
from repro.stats.aggregate import build_aggregate_demand
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import child_rng, make_rng
from repro.workload.request import Request


class ReplanningOliveAlgorithm(OliveAlgorithm):
    """OLIVE that periodically re-solves PLAN-VNE from observed demand.

    Parameters
    ----------
    interval:
        Re-plan every this many slots (the first plan is computed at the
        first replan point; before that the algorithm runs plan-less,
        i.e., like QUICKG).
    window:
        Sliding-history length in slots used as R_HIST for each replan.
    alpha:
        Percentile for the aggregated expected demand (paper: 80).
    seed_plan:
        Optional initial plan to use before the first replan (e.g., one
        computed offline from an old trace).
    """

    def __init__(
        self,
        substrate: SubstrateNetwork,
        apps: list[Application],
        interval: int = 50,
        window: int = 200,
        alpha: float = 80.0,
        efficiency: EfficiencyModel | None = None,
        plan_config: PlanVNEConfig | None = None,
        seed_plan=None,
        seed: int = 0,
        **kwargs,
    ) -> None:
        if interval < 1:
            raise PlanError("replanning interval must be >= 1 slot")
        if window < interval:
            raise PlanError("history window must cover at least one interval")
        super().__init__(
            substrate,
            apps,
            seed_plan if seed_plan is not None else empty_plan(),
            efficiency=efficiency,
            name=kwargs.pop("name", "OLIVE-R"),
            **kwargs,
        )
        self.interval = interval
        self.window = window
        self.alpha = alpha
        self.plan_config = plan_config or PlanVNEConfig()
        self._rng = make_rng(seed)
        self._observed: list[Request] = []
        self._replan_count = 0

    # -- observation ---------------------------------------------------------

    def process(self, request: Request) -> Decision:
        """Record every observed request (accepted or not), then embed."""
        self._observed.append(request)
        return super().process(request)

    def on_slot(self, t: int) -> None:
        """Simulator hook: replan at each interval boundary (not at t=0)."""
        if t == 0 or t % self.interval != 0:
            return
        self._replan(t)

    # -- internals -------------------------------------------------------------

    def _replan(self, t: int) -> None:
        """Re-solve PLAN-VNE from the sliding observation window."""
        horizon_start = max(0, t - self.window)
        # Re-base arrivals so the aggregation horizon starts at zero. A
        # request that arrived before the window but is still active is
        # clamped to the window start with its remaining duration — only
        # its in-window activity matters for the demand series.
        recent = []
        for r in self._observed:
            if r.departure <= horizon_start or r.arrival >= t:
                continue
            clamped_arrival = max(r.arrival, horizon_start)
            recent.append(
                Request(
                    arrival=clamped_arrival - horizon_start,
                    id=r.id,
                    app_index=r.app_index,
                    ingress=r.ingress,
                    demand=r.demand,
                    duration=r.departure - clamped_arrival,
                )
            )
        # Drop observations that can never matter again to bound memory.
        self._observed = [r for r in self._observed if r.departure > horizon_start]
        if not recent:
            return
        aggregates = build_aggregate_demand(
            recent,
            num_slots=t - horizon_start,
            alpha=self.alpha,
            rng=child_rng(self._rng, "replan", self._replan_count),
        )
        plan = compute_plan(
            self.substrate,
            self.apps,
            aggregates,
            self.efficiency,
            self.plan_config,
        )
        self._replan_count += 1
        self.switch_plan(plan)

    @property
    def replan_count(self) -> int:
        """How many times the plan has been refreshed so far."""
        return self._replan_count
