"""PLAN-VNE: the offline embedding plan (Sec. III-B).

Solves the paper's Fig. 4 LP relaxation for the time-aggregated demand and
decomposes the fractional solution into *embedding patterns* — concrete
unsplittable VN mappings with fractional weights — that OLIVE consumes as
its residual plan (Eq. 17) during the online phase.
"""

from repro.plan.api import compute_plan, empty_plan
from repro.plan.decompose import decompose_class
from repro.plan.formulation import PlanVNEConfig, PlanVNEModel, build_plan_vne
from repro.plan.pattern import ClassPlan, EmbeddingPattern, Plan
from repro.plan.rejection import rejection_factor
from repro.plan.replanning import ReplanningOliveAlgorithm
from repro.plan.validate import PlanValidation, validate_plan
from repro.plan.windowed import (
    PlanSchedule,
    WindowedOliveAlgorithm,
    compute_windowed_plans,
)

__all__ = [
    "EmbeddingPattern",
    "ClassPlan",
    "Plan",
    "PlanVNEConfig",
    "PlanVNEModel",
    "build_plan_vne",
    "decompose_class",
    "rejection_factor",
    "compute_plan",
    "empty_plan",
    "validate_plan",
    "PlanValidation",
    "PlanSchedule",
    "compute_windowed_plans",
    "WindowedOliveAlgorithm",
    "ReplanningOliveAlgorithm",
]
