"""Top-level plan computation: build LP → solve → decompose (Alg. 1 step 2)."""

from __future__ import annotations

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel
from repro.lp.solver import solve_lp
from repro.plan.decompose import DEFAULT_TOLERANCE, decompose_class
from repro.plan.formulation import PlanVNEConfig, build_plan_vne
from repro.plan.pattern import ClassPlan, Plan
from repro.stats.aggregate import AggregateRequest
from repro.substrate.network import SubstrateNetwork


def empty_plan() -> Plan:
    """The degenerate plan that turns OLIVE into the QUICKG baseline."""
    return Plan()


def compute_plan(
    substrate: SubstrateNetwork,
    apps: list[Application],
    aggregates: list[AggregateRequest],
    efficiency: EfficiencyModel | None = None,
    config: PlanVNEConfig | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Plan:
    """Solve PLAN-VNE for the aggregated demand and decompose into patterns.

    Returns an empty plan when there is no aggregated demand (an empty
    history legitimately produces one — OLIVE then behaves like QUICKG).
    """
    if not aggregates:
        return Plan()
    model = build_plan_vne(substrate, apps, aggregates, efficiency, config)
    solution = solve_lp(model.program)

    classes: dict = {}
    for c, aggregate in enumerate(aggregates):
        app = apps[aggregate.app_index]
        node_mass: dict[int, dict[str, float]] = {}
        for vnf in app.vnfs:
            masses = {}
            for v in substrate.nodes:
                var = model.node_vars.get((c, vnf.id, v))
                if var is not None:
                    value = solution.values[var]
                    if value > tolerance:
                        masses[v] = float(value)
            node_mass[vnf.id] = masses
        arc_flow: dict[tuple[int, int], dict[tuple[str, str], float]] = {}
        for vlink in app.links:
            flows = {}
            for (a, b) in substrate.links:
                for arc in ((a, b), (b, a)):
                    value = solution.values[model.arc_vars[(c, vlink.key, arc)]]
                    if value > tolerance:
                        flows[arc] = float(value)
            arc_flow[vlink.key] = flows

        patterns, _lost = decompose_class(
            app, aggregate.ingress, node_mass, arc_flow, tolerance
        )
        if patterns:
            allocated = sum(p.weight for p in patterns)
            classes[aggregate.class_key] = ClassPlan(
                aggregate=aggregate,
                patterns=patterns,
                rejected_fraction=max(0.0, 1.0 - allocated),
            )
    return Plan(classes=classes, objective=solution.objective)
