"""Rejection penalty factors ψ (Sec. II-B, Sec. IV-B).

The evaluation sets "a very conservative rejection penalty factor ψ(r) that
equals the cost of allocating elements q of a(r) on the most expensive
elements s": rejecting a unit of demand for one slot costs as much as
embedding it on the priciest resources. We charge each VNF at the maximum
node cost and each virtual link at the maximum link cost times a reference
path length (substrate paths span multiple hops; three matches the
edge→transport→core depth of the evaluation topologies).
"""

from __future__ import annotations

from repro.apps.application import Application
from repro.substrate.network import SubstrateNetwork

#: Reference hop count for pricing a rejected virtual link.
DEFAULT_PATH_HOPS = 3


def rejection_factor(
    app: Application,
    substrate: SubstrateNetwork,
    path_hops: int = DEFAULT_PATH_HOPS,
) -> float:
    """ψ for one application: worst-case per-unit-demand per-slot cost."""
    node_part = app.total_node_size() * substrate.max_node_cost()
    link_part = app.total_link_size() * substrate.max_link_cost() * path_hops
    return node_part + link_part
