"""Time-windowed plans — the paper's "future work" extension.

The PLAN-VNE plan of Sec. III is time-independent: one expected peak demand
per class over the whole horizon. The conclusions call out specialized
plans that "account for time-dependent expected demand"; this module
implements that: the history is split into K contiguous time windows, a
separate PLAN-VNE plan is computed from each window's demand statistics,
and the online phase switches plans at the proportional window boundaries
(assuming the online horizon exhibits the same temporal structure — e.g.,
diurnal periodicity).

Plan switching semantics are conservative (see
:meth:`repro.core.olive.OliveAlgorithm.switch_plan`): allocations planned
under a retired window become borrowed, hence preemptible by the new
window's guarantees.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.apps.application import Application
from repro.apps.efficiency import EfficiencyModel
from repro.core.olive import OliveAlgorithm
from repro.errors import PlanError
from repro.plan.api import compute_plan
from repro.plan.formulation import PlanVNEConfig
from repro.plan.pattern import Plan
from repro.stats.aggregate import AggregateRequest, class_demand_series
from repro.stats.bootstrap import bootstrap_percentile
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import child_rng
from repro.workload.request import Request


@dataclass
class PlanSchedule:
    """K plans with their activation slots in online time.

    ``starts`` is strictly increasing and begins at 0; ``plans[i]`` is
    active for slots in ``[starts[i], starts[i+1])``. A cyclic schedule
    (``period`` set) repeats: the plan for slot t is looked up at
    ``t mod period`` — the natural shape for diurnal demand.
    """

    starts: list[int]
    plans: list[Plan]
    period: int | None = None

    def __post_init__(self) -> None:
        if len(self.starts) != len(self.plans) or not self.plans:
            raise PlanError("schedule needs one start slot per plan")
        if self.starts[0] != 0:
            raise PlanError("the first window must start at slot 0")
        if any(b <= a for a, b in zip(self.starts, self.starts[1:])):
            raise PlanError("window starts must be strictly increasing")
        if self.period is not None and self.period <= self.starts[-1]:
            raise PlanError("cycle period must extend past the last window")

    def plan_for_slot(self, t: int) -> Plan:
        """The plan active at online slot ``t``."""
        if self.period is not None:
            t = t % self.period
        index = bisect.bisect_right(self.starts, t) - 1
        return self.plans[max(index, 0)]

    @property
    def num_windows(self) -> int:
        return len(self.plans)


def compute_windowed_plans(
    substrate: SubstrateNetwork,
    apps: list[Application],
    history: list[Request],
    history_slots: int,
    online_slots: int,
    num_windows: int,
    alpha: float = 80.0,
    efficiency: EfficiencyModel | None = None,
    config: PlanVNEConfig | None = None,
    rng: np.random.Generator | None = None,
    min_demand: float = 1e-9,
    cycle_period: int | None = None,
) -> PlanSchedule:
    """Split the history into K windows and compute one plan per window.

    Window k's expected demand is the bootstrap P̂α of each class's demand
    series restricted to that window; its plan activates at the
    proportional slot of the online horizon.

    With ``cycle_period`` set (diurnal demand), windows slice the history
    *by phase*: window k aggregates every history slot whose phase
    ``t mod cycle_period`` falls in the k-th fraction of the cycle, and
    the returned schedule repeats with that period during the online
    phase. Without it, windows are contiguous chunks of the history and
    activate at proportional online slots.
    """
    if num_windows < 1:
        raise PlanError("need at least one window")
    if num_windows > history_slots:
        raise PlanError("more windows than history slots")
    if cycle_period is not None and not num_windows <= cycle_period <= history_slots:
        raise PlanError(
            "cycle period must fit the history and cover every window"
        )
    if rng is None:
        rng = np.random.default_rng(0)

    series = class_demand_series(history, history_slots)
    slot_index = np.arange(history_slots)
    starts: list[int] = []
    plans: list[Plan] = []
    for window in range(num_windows):
        if cycle_period is not None:
            lo = (window * cycle_period) // num_windows
            hi = ((window + 1) * cycle_period) // num_windows
            mask = (slot_index % cycle_period >= lo) & (
                slot_index % cycle_period < hi
            )
            starts.append(lo)
        else:
            lo = (window * history_slots) // num_windows
            hi = ((window + 1) * history_slots) // num_windows
            mask = (slot_index >= lo) & (slot_index < hi)
            starts.append((window * online_slots) // num_windows)
        aggregates: list[AggregateRequest] = []
        for key in sorted(series):
            segment = series[key][mask]
            estimate = bootstrap_percentile(
                segment,
                alpha=alpha,
                rng=child_rng(rng, "window", window, key[0], key[1]),
            )
            if estimate.estimate > min_demand:
                aggregates.append(
                    AggregateRequest(
                        app_index=key[0], ingress=key[1],
                        demand=estimate.estimate,
                    )
                )
        plans.append(
            compute_plan(substrate, apps, aggregates, efficiency, config)
        )
    return PlanSchedule(starts=starts, plans=plans, period=cycle_period)


class WindowedOliveAlgorithm(OliveAlgorithm):
    """OLIVE driving a :class:`PlanSchedule` (plan per time window)."""

    def __init__(
        self,
        substrate: SubstrateNetwork,
        apps: list[Application],
        schedule: PlanSchedule,
        efficiency: EfficiencyModel | None = None,
        **kwargs,
    ) -> None:
        super().__init__(
            substrate,
            apps,
            schedule.plan_for_slot(0),
            efficiency=efficiency,
            name=kwargs.pop("name", "OLIVE-W"),
            **kwargs,
        )
        self.schedule = schedule

    def on_slot(self, t: int) -> None:
        """Simulator hook: switch to the window's plan when it changes."""
        plan = self.schedule.plan_for_slot(t)
        if plan is not self.plan:
            self.switch_plan(plan)
