"""Flow decomposition of a PLAN-VNE solution into embedding patterns.

The LP yields, per class, a placement distribution per VNF (node masses)
and a flow per virtual link (arc flows) satisfying conservation (Eq. 14).
Because the virtual networks are trees rooted at θ — whose placement is
pinned to the ingress — the fractional embedding decomposes exactly into
unsplittable patterns: repeatedly trace one concrete mapping root-outward,
take the bottleneck weight, subtract it everywhere, and repeat until the
allocated fraction is consumed.

Cycles cannot appear in an optimal solution (they strictly add cost), but
the tracer cancels them defensively so numerical artifacts never loop.
"""

from __future__ import annotations

from repro.apps.application import ROOT_ID, Application
from repro.errors import PlanError
from repro.plan.pattern import EmbeddingPattern
from repro.substrate.network import LinkId, NodeId, link_id

Arc = tuple[NodeId, NodeId]
VLinkKey = tuple[int, int]

#: Masses/flows below this threshold are treated as numerical zero.
DEFAULT_TOLERANCE = 1e-7


def decompose_class(
    app: Application,
    ingress: NodeId,
    node_mass: dict[int, dict[NodeId, float]],
    arc_flow: dict[VLinkKey, dict[Arc, float]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[EmbeddingPattern], float]:
    """Decompose one class's fractional embedding into patterns.

    Parameters
    ----------
    node_mass:
        VNF id → node → allocated fraction (mutated in place).
    arc_flow:
        Virtual link → directed arc → flow value (mutated in place).

    Returns
    -------
    (patterns, lost):
        The extracted patterns and the fraction of allocated mass that
        could not be decomposed (numerical dust; ~0 for solver output).
    """
    remaining = node_mass.get(ROOT_ID, {}).get(ingress, 0.0)
    patterns: list[EmbeddingPattern] = []
    ordered_links = app.links_in_bfs_order()
    while remaining > tolerance:
        trace = _trace_pattern(
            ingress, ordered_links, node_mass, arc_flow, remaining, tolerance
        )
        if trace is None:
            break
        node_map, link_paths, weight = trace
        _subtract(node_map, link_paths, weight, node_mass, arc_flow, ingress)
        patterns.append(
            EmbeddingPattern(
                node_map=node_map,
                link_paths={
                    key: tuple(path) for key, path in link_paths.items()
                },
                weight=weight,
            )
        )
        remaining -= weight
    return patterns, max(remaining, 0.0)


def _trace_pattern(
    ingress: NodeId,
    ordered_links,
    node_mass: dict[int, dict[NodeId, float]],
    arc_flow: dict[VLinkKey, dict[Arc, float]],
    remaining: float,
    tolerance: float,
) -> tuple[dict[int, NodeId], dict[VLinkKey, list[LinkId]], float] | None:
    """Trace one pattern root-outward; returns None on a dead end."""
    node_map: dict[int, NodeId] = {ROOT_ID: ingress}
    link_paths: dict[VLinkKey, list[LinkId]] = {}
    weight = remaining
    for vlink in ordered_links:
        start = node_map[vlink.tail]
        result = _trace_flow_path(
            arc_flow[vlink.key], node_mass.get(vlink.head, {}), start, tolerance
        )
        if result is None:
            return None
        arcs, terminal, bottleneck = result
        node_map[vlink.head] = terminal
        link_paths[vlink.key] = [link_id(u, v) for (u, v) in arcs]
        weight = min(weight, bottleneck)
    if weight <= tolerance:
        return None
    return node_map, link_paths, weight


def _trace_flow_path(
    flows: dict[Arc, float],
    sink_mass: dict[NodeId, float],
    start: NodeId,
    tolerance: float,
) -> tuple[list[Arc], NodeId, float] | None:
    """Walk arc flows from ``start`` until sink mass is reached.

    Termination is sink-greedy: stop at the first node with positive sink
    mass (preferring collocation when ``start`` itself is a sink), else
    follow the largest outgoing flow. Cycles are cancelled and the walk
    restarts.
    """
    for _ in range(1 + len(flows)):  # each restart cancels ≥ 1 cycle
        arcs: list[Arc] = []
        node = start
        position: dict[NodeId, int] = {start: 0}
        cancelled = False
        while True:
            if sink_mass.get(node, 0.0) > tolerance:
                bottleneck = sink_mass[node]
                for arc in arcs:
                    bottleneck = min(bottleneck, flows[arc])
                return arcs, node, bottleneck
            best_arc, best_flow = None, tolerance
            for arc, flow in flows.items():
                if arc[0] == node and flow > best_flow:
                    best_arc, best_flow = arc, flow
            if best_arc is None:
                return None  # dead end: no sink here, no outgoing flow
            nxt = best_arc[1]
            if nxt in position:
                _cancel_cycle(flows, [*arcs, best_arc], position[nxt])
                cancelled = True
                break
            arcs.append(best_arc)
            position[nxt] = len(arcs)
            node = nxt
        if not cancelled:  # pragma: no cover - loop exits via returns
            return None
    raise PlanError("flow decomposition failed to terminate")  # pragma: no cover


def _cancel_cycle(
    flows: dict[Arc, float], arcs: list[Arc], cycle_start: int
) -> None:
    """Remove a detected cycle by subtracting its bottleneck flow."""
    cycle = arcs[cycle_start:]
    bottleneck = min(flows[arc] for arc in cycle)
    for arc in cycle:
        flows[arc] -= bottleneck


def _subtract(
    node_map: dict[int, NodeId],
    link_paths: dict[VLinkKey, list[LinkId]],
    weight: float,
    node_mass: dict[int, dict[NodeId, float]],
    arc_flow: dict[VLinkKey, dict[Arc, float]],
    ingress: NodeId,
) -> None:
    """Subtract one pattern's weight from the fractional solution."""
    node_mass[ROOT_ID][ingress] -= weight
    for key, path in link_paths.items():
        head = key[1]
        node_mass[head][node_map[head]] -= weight
        node = node_map[key[0]]
        for link in path:
            a, b = link
            arc = (node, b) if node == a else (node, a)
            arc_flow[key][arc] -= weight
            node = arc[1]
