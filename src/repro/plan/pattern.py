"""Plan data structures: embedding patterns and per-class plans.

PLAN-VNE's decision variables y^q_s(r̃) are fractional and splittable. The
online algorithm needs unsplittable guidance, so each class's fractional
embedding is decomposed into weighted *patterns*: full VN mappings (node
assignment plus a substrate path per virtual link). Pattern weights sum to
the class's allocated fraction; ``weight × d(r̃)`` is the planned capacity
OLIVE may draw from each pattern (the residual plan of Eq. 17).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.stats.aggregate import AggregateRequest, ClassKey
from repro.substrate.network import LinkId, NodeId

VLinkKey = tuple[int, int]


@dataclass(frozen=True)
class EmbeddingPattern:
    """One unsplittable VN mapping carrying a fraction of a class's demand.

    Attributes
    ----------
    node_map:
        VNF id → substrate node (includes the root θ at the ingress).
    link_paths:
        Virtual link (i, j) → substrate link sequence from node_map[i] to
        node_map[j]; the empty tuple means both endpoints are collocated.
    weight:
        Fraction of the class demand d(r̃) planned through this mapping.
    """

    node_map: dict[int, NodeId]
    link_paths: dict[VLinkKey, tuple[LinkId, ...]]
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise PlanError(f"pattern weight must be positive, got {self.weight}")

    def planned_capacity(self, class_demand: float) -> float:
        """Demand units this pattern guarantees for its class."""
        return self.weight * class_demand


@dataclass
class ClassPlan:
    """The planned embedding of one aggregate class r̃_{a,v}."""

    aggregate: AggregateRequest
    patterns: list[EmbeddingPattern]
    rejected_fraction: float

    @property
    def allocated_fraction(self) -> float:
        return sum(p.weight for p in self.patterns)

    @property
    def class_key(self) -> ClassKey:
        return self.aggregate.class_key

    def guaranteed_demand(self) -> float:
        """Total demand units the plan guarantees this class."""
        return self.allocated_fraction * self.aggregate.demand


@dataclass
class Plan:
    """A full embedding plan y(R̃): one :class:`ClassPlan` per class.

    An empty plan (no classes) degrades OLIVE into QUICKG — every request
    falls through to the greedy path — which is exactly how the paper
    defines the QUICKG baseline.
    """

    classes: dict[ClassKey, ClassPlan] = field(default_factory=dict)
    objective: float = 0.0

    def class_plan(self, key: ClassKey) -> ClassPlan | None:
        return self.classes.get(key)

    @property
    def is_empty(self) -> bool:
        return not self.classes

    @property
    def num_patterns(self) -> int:
        return sum(len(cp.patterns) for cp in self.classes.values())

    def total_guaranteed_demand(self) -> float:
        return sum(cp.guaranteed_demand() for cp in self.classes.values())

    def mean_rejected_fraction(self) -> float:
        """Demand-weighted mean planned rejection across classes."""
        total = sum(cp.aggregate.demand for cp in self.classes.values())
        if total == 0:
            return 0.0
        return (
            sum(
                cp.rejected_fraction * cp.aggregate.demand
                for cp in self.classes.values()
            )
            / total
        )
