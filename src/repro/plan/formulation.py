"""The PLAN-VNE linear program (Fig. 4).

Decision variables, per aggregate class r̃ (app a, ingress v(r̃)):

* ``y_node[c, i, v]`` ∈ [0, 1] — fraction of d(r̃) placing VNF i on node v
  (Eq. 10). The root θ only gets a variable at the ingress (Eq. 11); a VNF
  only gets variables on datacenters where η permits placement (the hard
  form of "extremely high η^q_s to prevent mapping").
* ``y_arc[c, (i,j), (u,v)]`` ≥ 0 — flow of virtual link (i, j) on the
  directed substrate arc u→v.
* ``y_q[c, p]`` ∈ [0, 1/P] — rejected fraction assigned to quantile p
  (Eq. 12), with rejection cost ψ·p (Eq. 9) producing the water-filling
  starvation protection.

Constraints: root balance (Eq. 13), per-virtual-link flow conservation
(Eq. 14), and element capacities (Eq. 15). Objective: resource cost
(Eqs. 7–8) plus quantile rejection cost (Eq. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel, UniformEfficiency
from repro.errors import PlanError
from repro.lp.model import ConstraintSense, LinearProgram
from repro.plan.rejection import rejection_factor
from repro.stats.aggregate import AggregateRequest
from repro.substrate.network import LinkId, NodeId, SubstrateNetwork

Arc = tuple[NodeId, NodeId]
VLinkKey = tuple[int, int]


@dataclass
class PlanVNEConfig:
    """Tunables of the PLAN-VNE LP.

    ``num_quantiles`` is P of Eq. 12 (the paper settles on 10 after the
    Fig. 11 study). ``rejection_base`` overrides the per-application ψ; by
    default ψ is derived from the substrate's most expensive elements (see
    :mod:`repro.plan.rejection`).
    """

    num_quantiles: int = 10
    rejection_base: float | None = None

    def __post_init__(self) -> None:
        if self.num_quantiles < 1:
            raise PlanError("need at least one rejection quantile")


@dataclass
class PlanVNEModel:
    """A built PLAN-VNE instance: the LP plus variable lookup tables."""

    program: LinearProgram
    substrate: SubstrateNetwork
    apps: list[Application]
    aggregates: list[AggregateRequest]
    efficiency: EfficiencyModel
    config: PlanVNEConfig
    #: (class_idx, vnf_id, node) → LP variable index.
    node_vars: dict[tuple[int, int, NodeId], int] = field(default_factory=dict)
    #: (class_idx, vlink_key, arc) → LP variable index.
    arc_vars: dict[tuple[int, VLinkKey, Arc], int] = field(default_factory=dict)
    #: (class_idx, quantile p) → LP variable index.
    quantile_vars: dict[tuple[int, int], int] = field(default_factory=dict)


def build_plan_vne(
    substrate: SubstrateNetwork,
    apps: list[Application],
    aggregates: list[AggregateRequest],
    efficiency: EfficiencyModel | None = None,
    config: PlanVNEConfig | None = None,
) -> PlanVNEModel:
    """Construct the Fig. 4 LP for the given aggregated demand."""
    efficiency = efficiency or UniformEfficiency()
    config = config or PlanVNEConfig()
    program = LinearProgram(name="plan-vne")
    model = PlanVNEModel(
        program=program,
        substrate=substrate,
        apps=apps,
        aggregates=aggregates,
        efficiency=efficiency,
        config=config,
    )

    arcs: list[tuple[Arc, LinkId]] = []
    for (a, b) in substrate.links:
        arcs.append(((a, b), (a, b)))
        arcs.append(((b, a), (a, b)))

    # Capacity accumulators: element → list[(variable, load coefficient)].
    node_cap_terms: dict[NodeId, list[tuple[int, float]]] = {
        v: [] for v in substrate.nodes
    }
    link_cap_terms: dict[LinkId, list[tuple[int, float]]] = {
        l: [] for l in substrate.links
    }

    for c, aggregate in enumerate(aggregates):
        app = apps[aggregate.app_index]
        if aggregate.ingress not in substrate.nodes:
            raise PlanError(
                f"class {aggregate.class_key}: unknown ingress "
                f"{aggregate.ingress!r}"
            )
        demand = aggregate.demand
        psi = (
            config.rejection_base
            if config.rejection_base is not None
            else rejection_factor(app, substrate)
        )

        # -- node variables (Eqs. 10–11) --------------------------------
        for vnf in app.vnfs:
            if vnf.id == ROOT_ID:
                # θ exists only at the ingress; β_θ = 0 so no load terms.
                var = program.add_variable(
                    name=f"y[{c}]n[{vnf.id}]@{aggregate.ingress}",
                    lower=0.0,
                    upper=1.0,
                )
                model.node_vars[(c, vnf.id, aggregate.ingress)] = var
                continue
            for v, attrs in substrate.nodes.items():
                eta = efficiency.node_eta(vnf, attrs)
                if eta is None:
                    continue
                load_coef = demand * vnf.size * eta
                var = program.add_variable(
                    name=f"y[{c}]n[{vnf.id}]@{v}",
                    lower=0.0,
                    upper=1.0,
                    objective=load_coef * attrs.cost,
                )
                model.node_vars[(c, vnf.id, v)] = var
                if load_coef > 0:
                    node_cap_terms[v].append((var, load_coef))

        # -- arc variables ------------------------------------------------
        for vlink in app.links:
            for arc, link in arcs:
                link_attrs = substrate.links[link]
                eta = efficiency.link_eta(vlink, link_attrs)
                load_coef = demand * vlink.size * eta
                var = program.add_variable(
                    name=f"y[{c}]l[{vlink.tail}-{vlink.head}]@{arc[0]}>{arc[1]}",
                    lower=0.0,
                    upper=1.0,
                    objective=load_coef * link_attrs.cost,
                )
                model.arc_vars[(c, vlink.key, arc)] = var
                if load_coef > 0:
                    link_cap_terms[link].append((var, load_coef))

        # -- quantile variables (Eqs. 9, 12) -----------------------------
        P = config.num_quantiles
        for p in range(1, P + 1):
            var = program.add_variable(
                name=f"y[{c}]q[{p}]",
                lower=0.0,
                upper=1.0 / P,
                objective=psi * demand * p,
            )
            model.quantile_vars[(c, p)] = var

        # -- root balance (Eq. 13) ---------------------------------------
        root_var = model.node_vars[(c, ROOT_ID, aggregate.ingress)]
        terms = {root_var: 1.0}
        for p in range(1, P + 1):
            terms[model.quantile_vars[(c, p)]] = 1.0
        program.add_constraint(
            terms, ConstraintSense.EQ, 1.0, name=f"root-balance[{c}]"
        )

        # -- flow conservation (Eq. 14) ----------------------------------
        for vlink in app.links:
            for v in substrate.nodes:
                terms = {}
                head_var = model.node_vars.get((c, vlink.head, v))
                if head_var is not None:
                    terms[head_var] = 1.0
                tail_var = model.node_vars.get((c, vlink.tail, v))
                if tail_var is not None:
                    terms[tail_var] = -1.0
                for w, _link in substrate.adjacency[v]:
                    terms[model.arc_vars[(c, vlink.key, (w, v))]] = -1.0
                    terms[model.arc_vars[(c, vlink.key, (v, w))]] = 1.0
                if terms:
                    program.add_constraint(
                        terms,
                        ConstraintSense.EQ,
                        0.0,
                        name=f"flow[{c}][{vlink.tail}-{vlink.head}]@{v}",
                    )

    # -- capacity constraints (Eq. 15), one row per substrate element ------
    for v, terms in node_cap_terms.items():
        if terms:
            program.add_constraint(
                terms,
                ConstraintSense.LE,
                substrate.node_capacity(v),
                name=f"cap-node@{v}",
            )
    for link, terms in link_cap_terms.items():
        if terms:
            program.add_constraint(
                terms,
                ConstraintSense.LE,
                substrate.link_capacity(link),
                name=f"cap-link@{link[0]}-{link[1]}",
            )

    return model
