"""Plan validation: certify a plan against its substrate.

A valid plan must be deployable at full guarantee: if every class drew its
entire planned capacity simultaneously, no substrate element may exceed its
capacity (Eq. 15), every pattern's paths must be contiguous and connect
their endpoint placements, and the root must sit at the class ingress
(Eq. 11). :func:`validate_plan` checks all of it and reports violations —
useful both as a test oracle and as a safety gate when plans come from an
external solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel, UniformEfficiency
from repro.plan.pattern import Plan
from repro.substrate.network import SubstrateNetwork


@dataclass
class PlanValidation:
    """Outcome of :func:`validate_plan`."""

    violations: list[str] = field(default_factory=list)
    #: Peak planned load per node/link at full guarantee.
    node_load: dict = field(default_factory=dict)
    link_load: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def validate_plan(
    plan: Plan,
    substrate: SubstrateNetwork,
    apps: list[Application],
    efficiency: EfficiencyModel | None = None,
    tolerance: float = 1e-6,
) -> PlanValidation:
    """Check structural and capacity consistency of a plan."""
    efficiency = efficiency or UniformEfficiency()
    result = PlanValidation(
        node_load={v: 0.0 for v in substrate.nodes},
        link_load={l: 0.0 for l in substrate.links},
    )

    for key, class_plan in plan.classes.items():
        app_index, ingress = key
        if not 0 <= app_index < len(apps):
            result.violations.append(f"{key}: unknown application index")
            continue
        app = apps[app_index]
        if ingress not in substrate.nodes:
            result.violations.append(f"{key}: unknown ingress {ingress!r}")
            continue
        demand = class_plan.aggregate.demand
        if class_plan.allocated_fraction > 1.0 + tolerance:
            result.violations.append(
                f"{key}: allocated fraction "
                f"{class_plan.allocated_fraction:.4f} exceeds 1"
            )
        for index, pattern in enumerate(class_plan.patterns):
            label = f"{key} pattern {index}"
            if pattern.node_map.get(ROOT_ID) != ingress:
                result.violations.append(
                    f"{label}: root not pinned to the ingress (Eq. 11)"
                )
            missing = {vnf.id for vnf in app.vnfs} - set(pattern.node_map)
            if missing:
                result.violations.append(f"{label}: unmapped VNFs {missing}")
                continue
            scale = pattern.weight * demand
            for vnf in app.non_root_vnfs():
                host = pattern.node_map[vnf.id]
                if host not in substrate.nodes:
                    result.violations.append(
                        f"{label}: unknown node {host!r}"
                    )
                    continue
                eta = efficiency.node_eta(vnf, substrate.nodes[host])
                if eta is None:
                    result.violations.append(
                        f"{label}: VNF {vnf.id} on forbidden node {host!r}"
                    )
                    continue
                result.node_load[host] += scale * vnf.size * eta
            for vlink in app.links:
                path = pattern.link_paths.get(vlink.key)
                if path is None:
                    result.violations.append(
                        f"{label}: missing path for virtual link {vlink.key}"
                    )
                    continue
                node = pattern.node_map[vlink.tail]
                broken = False
                for link in path:
                    if link not in substrate.links:
                        result.violations.append(
                            f"{label}: unknown link {link}"
                        )
                        broken = True
                        break
                    a, b = link
                    if node not in (a, b):
                        result.violations.append(
                            f"{label}: discontiguous path at {link}"
                        )
                        broken = True
                        break
                    node = b if node == a else a
                    eta = efficiency.link_eta(vlink, substrate.links[link])
                    result.link_load[link] += scale * vlink.size * eta
                if not broken and node != pattern.node_map[vlink.head]:
                    result.violations.append(
                        f"{label}: path for {vlink.key} ends at {node!r}, "
                        f"expected {pattern.node_map[vlink.head]!r}"
                    )

    for node, load in result.node_load.items():
        capacity = substrate.node_capacity(node)
        if load > capacity * (1.0 + tolerance):
            result.violations.append(
                f"node {node!r}: planned load {load:.1f} exceeds "
                f"capacity {capacity:.1f}"
            )
    for link, load in result.link_load.items():
        capacity = substrate.link_capacity(link)
        if load > capacity * (1.0 + tolerance):
            result.violations.append(
                f"link {link}: planned load {load:.1f} exceeds "
                f"capacity {capacity:.1f}"
            )
    return result
