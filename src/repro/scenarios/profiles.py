"""Built-in event-profile presets (the chaos-scenario battery).

Each profile is a seeded factory ``(scenario, rng) -> EventSchedule``
registered in :data:`repro.registry.event_profile_registry`; third-party
profiles register the same way::

    from repro.registry import register_event_profile

    @register_event_profile("my-outage", description="...")
    def _my_outage(scenario, rng):
        return EventSchedule([...], policy="reroute", name="my-outage")

Profiles scale with the scenario's online horizon: event windows are
placed at fixed fractions of ``config.online_slots`` (jittered by the
seeded rng where it matters), so the same profile is meaningful at test,
bench and paper scale. Element choices (which link fails, which node
drains) are drawn from the rng, so different seeds stress different parts
of the substrate while one seed is fully reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.registry import register_event_profile
from repro.scenarios.events import (
    CapacityDegradation,
    Event,
    EventSchedule,
    FlashCrowd,
    IngressMigration,
    LinkFailure,
    LinkRecovery,
    NodeDrain,
    NodeRestore,
)
from repro.workload.request import Request

#: Flash-crowd request ids start here — far beyond any trace id, so
#: injected requests never collide with the generated online stream.
INJECTED_ID_BASE = 1_000_000_000


def _choice(rng: np.random.Generator, items):
    """Deterministic uniform choice from a sequence (index-based, so it
    works for lists of tuples without numpy coercing them to arrays)."""
    return items[int(rng.integers(0, len(items)))]


def _window(scenario, start_frac: float, stop_frac: float) -> tuple[int, int]:
    """A slot window at fixed fractions of the horizon.

    Both bounds stay at most ``slots - 1``: profiles schedule events
    (recoveries included) directly at ``stop``, and the engine's slot
    loop ends at ``slots - 1`` — an event at ``slots`` would never fire
    (the engine rejects such schedules).
    """
    slots = scenario.config.online_slots
    last = max(1, slots - 1)
    start = min(max(1, int(slots * start_frac)), last)
    stop = min(max(start + 1, int(slots * stop_frac)), last)
    return start, max(stop, start)


@register_event_profile(
    "link-flap",
    description="a link repeatedly fails and recovers through the run",
)
def _link_flap(scenario, rng) -> EventSchedule:
    substrate = scenario.substrate
    link = _choice(rng, list(substrate.links))
    start, stop = _window(scenario, 0.2, 0.9)
    period = max(4, (stop - start) // 3)
    down = max(1, period // 2)
    events: list[Event] = []
    slot = start
    while slot < stop:
        events.append(LinkFailure(slot=slot, link=link))
        recovery = min(slot + down, stop)
        events.append(LinkRecovery(slot=recovery, link=link))
        slot += period
    return EventSchedule(events, policy="reroute", name="link-flap")


@register_event_profile(
    "node-maintenance",
    description="a datacenter is half-drained, taken down, then restored",
)
def _node_maintenance(scenario, rng) -> EventSchedule:
    substrate = scenario.substrate
    # Prefer non-edge datacenters: maintenance of an aggregation point is
    # the interesting case (edge ingresses also anchor request classes).
    candidates = substrate.transport_nodes + substrate.core_nodes
    if not candidates:
        candidates = list(substrate.nodes)
    node = _choice(rng, candidates)
    start, stop = _window(scenario, 0.25, 0.75)
    drain_slot = start
    outage_slot = min(start + max(1, (stop - start) // 3), stop)
    restore_slot = stop
    events = [
        NodeDrain(slot=drain_slot, node=node, fraction=0.5),
        NodeDrain(slot=outage_slot, node=node, fraction=0.0),
        NodeRestore(slot=restore_slot, node=node),
    ]
    return EventSchedule(events, policy="reroute", name="node-maintenance")


@register_event_profile(
    "flash-crowd",
    description="a demand surge at one edge datacenter (extra requests)",
)
def _flash_crowd(scenario, rng) -> EventSchedule:
    config = scenario.config
    online = scenario.trace.online_requests()
    hot = _choice(rng, scenario.substrate.edge_nodes)
    start, stop = _window(scenario, 0.35, 0.6)
    burst_slots = max(1, stop - start)
    # Surge intensity: several times the per-node arrival rate, with
    # demand/duration resampled from the scenario's own online stream so
    # the burst is distributionally faithful to the planned workload.
    per_slot = max(2, int(round(config.arrivals_per_node * 3)))
    if online:
        demands = [r.demand for r in online]
        durations = [r.duration for r in online]
    else:  # pragma: no cover - empty traces only in degenerate configs
        demands, durations = [1.0], [1]
    num_apps = len(scenario.apps)
    requests = []
    next_id = INJECTED_ID_BASE
    for slot in range(start, start + burst_slots):
        for _ in range(per_slot):
            demand = float(_choice(rng, demands))
            duration = int(_choice(rng, durations))
            requests.append(
                Request(
                    arrival=slot,
                    id=next_id,
                    app_index=int(rng.integers(0, num_apps)),
                    ingress=hot,
                    demand=demand,
                    duration=min(duration, config.online_slots - slot),
                )
            )
            next_id += 1
    events: list[Event] = [FlashCrowd(slot=start, requests=tuple(requests))]
    return EventSchedule(events, policy="preempt", name="flash-crowd")


@register_event_profile(
    "degradation",
    description="every link degrades to 60% capacity for a long window",
)
def _degradation(scenario, rng) -> EventSchedule:
    links = tuple(scenario.substrate.links)
    start, stop = _window(scenario, 0.3, 0.8)
    events = [
        CapacityDegradation(slot=start, fraction=0.6, links=links),
        CapacityDegradation(slot=stop, fraction=1.0, links=links),
    ]
    return EventSchedule(events, policy="reroute", name="degradation")


@register_event_profile(
    "ingress-migration",
    description="one edge node's arrivals re-home to another for a window",
)
def _ingress_migration(scenario, rng) -> EventSchedule:
    edges = scenario.substrate.edge_nodes
    source = _choice(rng, edges)
    others = [v for v in edges if v != source]
    if not others:  # pragma: no cover - single-edge topologies
        return EventSchedule([], name="ingress-migration")
    target = _choice(rng, others)
    start, stop = _window(scenario, 0.3, 0.8)
    events: list[Event] = [
        IngressMigration(slot=start, source=source, target=target, until=stop)
    ]
    return EventSchedule(events, policy="preempt", name="ingress-migration")


@register_event_profile(
    "blackout",
    description="cascade: a node and its links fail, then staged recovery",
)
def _blackout(scenario, rng) -> EventSchedule:
    substrate = scenario.substrate
    candidates = substrate.transport_nodes + substrate.core_nodes
    if not candidates:
        candidates = list(substrate.nodes)
    node = _choice(rng, candidates)
    incident = tuple(link for _, link in substrate.adjacency[node])
    start, stop = _window(scenario, 0.3, 0.85)
    mid = min(start + max(1, (stop - start) // 2), stop)
    events: list[Event] = [NodeDrain(slot=start, node=node, fraction=0.0)]
    events.extend(LinkFailure(slot=start, link=link) for link in incident)
    # Staged recovery: links come back first, then the datacenter.
    events.extend(LinkRecovery(slot=mid, link=link) for link in incident)
    events.append(NodeRestore(slot=stop, node=node))
    return EventSchedule(events, policy="reroute", name="blackout")
