"""Dynamic-scenario machinery: substrate events, disruption policies,
and the registered event-profile presets.

The paper's evaluation (Sec. IV-B) only exercises well-behaved planned
demand; this package opens the chaos-scenario workload family — link
failures, node drains, capacity degradations, flash crowds, ingress
migrations — consumed slot-by-slot by the simulation engine.
"""

from repro.scenarios.events import (
    DISRUPTION_POLICIES,
    CapacityDegradation,
    Event,
    EventCursor,
    EventSchedule,
    FlashCrowd,
    IngressMigration,
    LinkFailure,
    LinkRecovery,
    NodeDrain,
    NodeRestore,
    apply_and_resolve,
    apply_capacity_events,
    resolve_disruptions,
)

__all__ = [
    "CapacityDegradation",
    "DISRUPTION_POLICIES",
    "Event",
    "EventCursor",
    "EventSchedule",
    "FlashCrowd",
    "IngressMigration",
    "LinkFailure",
    "LinkRecovery",
    "NodeDrain",
    "NodeRestore",
    "apply_and_resolve",
    "apply_capacity_events",
    "resolve_disruptions",
]
