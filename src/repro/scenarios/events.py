"""Dynamic substrate/workload events and the schedule the engine consumes.

An :class:`EventSchedule` is a seeded, slot-ordered sequence of events of
two shapes:

* **Capacity events** (link failure/recovery, node drain/maintenance,
  capacity degradation) mutate the *effective* capacity tracked by
  :class:`~repro.core.residual.ResidualState` at the start of their slot
  (after departures, before arrivals). A cut below the currently
  allocated load drives residuals negative; the schedule's *disruption
  policy* then resolves the stranded allocations — ``"preempt"`` drops
  them, ``"reroute"`` re-embeds them greedily against the degraded
  substrate and drops only what no longer fits. Both engines (the
  incremental fast path and :mod:`repro.core.greedy_reference`) share
  this exact code path, so the differential oracle applies unchanged.
* **Workload events** (flash crowds, ingress migrations) deterministically
  transform the online request stream *before* the run starts, so every
  compared algorithm sees the identical perturbed trace — the paper's
  same-trace methodology.

All events of one slot are applied atomically: stranding is resolved once
per slot, after the last event. A failure followed by a recovery in the
same slot is therefore a no-op — one of the metamorphic properties the
test suite pins.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol

from repro.core.residual import EPSILON
from repro.errors import SimulationError
from repro.substrate.network import (
    LinkAttrs,
    LinkId,
    NodeId,
    SubstrateNetwork,
    substrate_index,
)
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.residual import ResidualState

#: Valid disruption policies for requests stranded by capacity events.
DISRUPTION_POLICIES = ("preempt", "reroute")

#: ``("node"|"link", element, new_capacity)`` — one effective-capacity write.
CapacityChange = tuple[str, object, float]


class ResidualAlgorithm(Protocol):
    """What the disruption resolver needs from an algorithm.

    Structural contract shared by OLIVE/QUICKG/FULLG (and anything else
    routing ``apply_events`` through :func:`apply_and_resolve`): explicit
    residual bookkeeping plus release/reroute hooks. ``active_loads``
    yields ``(request, loads)`` pairs in insertion order — identical
    between the fast and reference engines, which is what keeps victim
    selection bit-equivalent.
    """

    name: str
    residual: Any

    def active_loads(self) -> Any: ...

    def release(self, request: Request) -> None: ...

    def reroute(self, request: Request) -> bool: ...


@dataclass(frozen=True)
class Event:
    """Base event: something happening at the start of ``slot``."""

    slot: int

    def capacity_changes(
        self, substrate: SubstrateNetwork
    ) -> list[CapacityChange]:
        """``("node"|"link", element, new_capacity)`` tuples, if any."""
        return []


# -- capacity events ----------------------------------------------------------


@dataclass(frozen=True)
class LinkFailure(Event):
    """A link goes down: effective capacity drops to zero."""

    link: LinkId = ("", "")

    def capacity_changes(
        self, substrate: SubstrateNetwork
    ) -> list[CapacityChange]:
        return [("link", self.link, 0.0)]


@dataclass(frozen=True)
class LinkRecovery(Event):
    """A failed/degraded link returns to its nominal capacity."""

    link: LinkId = ("", "")

    def capacity_changes(
        self, substrate: SubstrateNetwork
    ) -> list[CapacityChange]:
        return [("link", self.link, substrate.link_capacity(self.link))]


@dataclass(frozen=True)
class NodeDrain(Event):
    """A datacenter is drained for maintenance.

    ``fraction`` is the remaining share of nominal capacity: 0.0 is a
    full outage, 0.5 a half-drain (typical pre-maintenance step).
    """

    node: NodeId = ""
    fraction: float = 0.0

    def capacity_changes(
        self, substrate: SubstrateNetwork
    ) -> list[CapacityChange]:
        return [
            ("node", self.node,
             substrate.node_capacity(self.node) * self.fraction)
        ]


@dataclass(frozen=True)
class NodeRestore(Event):
    """A drained datacenter returns to its nominal capacity."""

    node: NodeId = ""

    def capacity_changes(
        self, substrate: SubstrateNetwork
    ) -> list[CapacityChange]:
        return [("node", self.node, substrate.node_capacity(self.node))]


@dataclass(frozen=True)
class CapacityDegradation(Event):
    """Partial capacity loss over a set of elements (e.g. a whole tier).

    Sets every listed element to ``fraction`` of its nominal capacity;
    restore by issuing a second event with ``fraction=1.0``.
    """

    fraction: float = 1.0
    links: tuple[LinkId, ...] = ()
    nodes: tuple[NodeId, ...] = ()

    def capacity_changes(
        self, substrate: SubstrateNetwork
    ) -> list[CapacityChange]:
        changes: list[CapacityChange] = []
        for node in self.nodes:
            changes.append(
                ("node", node, substrate.node_capacity(node) * self.fraction)
            )
        for link in self.links:
            changes.append(
                ("link", link, substrate.link_capacity(link) * self.fraction)
            )
        return changes


# -- workload events ----------------------------------------------------------


@dataclass(frozen=True)
class FlashCrowd(Event):
    """A burst of extra requests injected into the online stream.

    The requests are synthesized by the event profile (seeded), carry
    ids disjoint from the trace's, and arrive at ``slot`` onwards like
    any other arrival — every compared algorithm sees the same burst.
    """

    requests: tuple[Request, ...] = ()


@dataclass(frozen=True)
class IngressMigration(Event):
    """Arrivals at ``source`` are re-homed to ``target`` for a window.

    Models a user-population shift (disaster evacuation, PoP drain):
    every online request with ``slot <= arrival < until`` whose ingress
    is ``source`` is rewritten to arrive at ``target`` instead.
    """

    source: NodeId = ""
    target: NodeId = ""
    until: int = 0


# -- schedule -----------------------------------------------------------------


class EventSchedule:
    """A slot-ordered event sequence plus its disruption policy.

    Events are stably sorted by slot (insertion order breaks ties), so a
    profile controls intra-slot application order. The schedule is
    immutable once built; :meth:`with_policy` returns a copy with a
    different stranded-request policy.
    """

    def __init__(
        self,
        events: "list[Event] | tuple[Event, ...]" = (),
        policy: str = "preempt",
        name: str = "",
    ) -> None:
        if policy not in DISRUPTION_POLICIES:
            raise SimulationError(
                f"unknown disruption policy {policy!r}; "
                f"known: {list(DISRUPTION_POLICIES)}"
            )
        for event in events:
            if event.slot < 0:
                raise SimulationError(
                    f"event {event!r} scheduled before slot 0"
                )
        self.events: tuple[Event, ...] = tuple(
            sorted(events, key=lambda e: e.slot)
        )
        self.policy = policy
        self.name = name
        capacity_by_slot: dict[int, list[Event]] = {}
        self._migrations: list[IngressMigration] = []
        self._injected: list[Request] = []
        for event in self.events:
            if isinstance(event, IngressMigration):
                self._migrations.append(event)
            elif isinstance(event, FlashCrowd):
                self._injected.extend(event.requests)
            else:
                capacity_by_slot.setdefault(event.slot, []).append(event)
        self._capacity_by_slot = {
            slot: tuple(batch) for slot, batch in capacity_by_slot.items()
        }
        #: Workload-shaped events (flash crowds, migrations): consumed by
        #: :meth:`transform_requests` before the run, not slot-by-slot.
        self.num_workload_events = len(self._migrations) + sum(
            1 for event in self.events if isinstance(event, FlashCrowd)
        )
        # One (input, output) pair: run_single simulates several
        # algorithms over the same request list, so the transform of the
        # shared stream is computed once, not once per algorithm.
        self._transform_cache: tuple[list[Request], list[Request]] | None = None

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def has_capacity_events(self) -> bool:
        return bool(self._capacity_by_slot)

    @property
    def max_capacity_slot(self) -> int:
        """The last slot with a capacity event (-1 without any)."""
        return max(self._capacity_by_slot, default=-1)

    @property
    def max_event_slot(self) -> int:
        """The last slot any event (or injected arrival) needs (-1 if none).

        The engine fails fast when this reaches the horizon — a capacity
        event or migration start at ``slot >= num_slots`` would otherwise
        silently never fire (the slot loop ends at ``num_slots - 1``),
        and an injected arrival there could never be processed.
        """
        last = max((event.slot for event in self.events), default=-1)
        if self._injected:
            last = max(last, max(r.arrival for r in self._injected))
        return last

    def capacity_events_at(self, slot: int) -> tuple[Event, ...]:
        """The slot's capacity events, in schedule order."""
        return self._capacity_by_slot.get(slot, ())

    def cursor(self, next_slot: int = 0, consumed: int = 0) -> "EventCursor":
        """A resumable read position over this schedule's capacity events.

        The streaming session consumes events through a cursor so a
        checkpoint can record exactly how far the schedule has been
        applied (see :class:`EventCursor`).
        """
        return EventCursor(self, next_slot=next_slot, consumed=consumed)

    def with_policy(self, policy: str) -> "EventSchedule":
        """A copy of this schedule under a different disruption policy."""
        return EventSchedule(self.events, policy=policy, name=self.name)

    def shifted(self, offset: int) -> "EventSchedule":
        """A copy with every event moved ``offset`` slots later.

        Flash-crowd arrivals and migration windows move with their
        events, so a shifted schedule perturbs the run identically —
        just later. Negative offsets are allowed as long as no event
        lands before slot 0 (the constructor rejects that).
        """
        if offset == 0:
            return self
        events: list[Event] = []
        for event in self.events:
            if isinstance(event, FlashCrowd):
                requests = tuple(
                    dataclasses.replace(r, arrival=r.arrival + offset)
                    for r in event.requests
                )
                events.append(
                    dataclasses.replace(
                        event, slot=event.slot + offset, requests=requests
                    )
                )
            elif isinstance(event, IngressMigration):
                events.append(
                    dataclasses.replace(
                        event,
                        slot=event.slot + offset,
                        until=event.until + offset,
                    )
                )
            else:
                events.append(
                    dataclasses.replace(event, slot=event.slot + offset)
                )
        name = f"{self.name}@{offset:+d}" if self.name else ""
        return EventSchedule(events, policy=self.policy, name=name)

    def compose(
        self,
        *others: "EventSchedule",
        policy: str | None = None,
        name: str = "",
    ) -> "EventSchedule":
        """Overlay schedules into one — e.g. a flash crowd *during* a drain.

        Events are concatenated in operand order and re-sorted by slot;
        because the constructor's sort is stable, **same-slot ordering is
        operand order** (all of ``self``'s slot-``t`` events fire before
        any of ``others[0]``'s, and so on) — composition is therefore
        associative but deliberately not commutative.

        The operands must agree on the disruption policy, or an explicit
        ``policy=`` must pick one; composing schedules that silently
        disagree on how to treat stranded requests is almost certainly a
        bug, so it fails fast.

        Combine with :meth:`shifted` for relative placement::

            drain.compose(flash_crowd.shifted(drain_start + 3))
        """
        schedules = (self, *others)
        if policy is None:
            policies = {schedule.policy for schedule in schedules}
            if len(policies) > 1:
                raise SimulationError(
                    f"composed schedules disagree on disruption policy "
                    f"{sorted(policies)}; pass policy=... to choose one"
                )
            policy = self.policy
        events = [
            event for schedule in schedules for event in schedule.events
        ]
        if not name:
            parts = [s.name for s in schedules if s.name]
            name = "+".join(parts)
        return EventSchedule(events, policy=policy, name=name)

    def apply_migrations(self, request: Request) -> Request:
        """One request with any matching ingress migrations applied.

        The identical per-request rewrite :meth:`transform_requests`
        performs on the seed stream — used by the streaming session so
        an ad-hoc ``submit()`` arrival is re-homed exactly like a trace
        arrival in the same window would have been. Returns the input
        unchanged when no migration matches.
        """
        for migration in self._migrations:
            if (
                migration.slot <= request.arrival < migration.until
                and request.ingress == migration.source
            ):
                request = dataclasses.replace(
                    request, ingress=migration.target
                )
        return request

    def transform_requests(self, requests: list[Request]) -> list[Request]:
        """Apply the workload events to the online stream, deterministically.

        Ingress migrations rewrite matching arrivals; flash-crowd bursts
        are merged in. The result is re-sorted by ``(arrival, id)`` so it
        remains a valid ON-VNE processing order.
        """
        if not self._migrations and not self._injected:
            return requests
        cached = self._transform_cache
        if cached is not None and cached[0] is requests:
            return cached[1]
        transformed = [self.apply_migrations(request) for request in requests]
        transformed.extend(self._injected)
        transformed.sort()
        self._transform_cache = (requests, transformed)
        return transformed

    def validate(
        self, substrate: SubstrateNetwork, num_apps: int | None = None
    ) -> None:
        """Fail fast on events referencing unknown substrate elements.

        ``num_apps`` additionally range-checks the ``app_index`` of
        flash-crowd requests (pass ``len(scenario.apps)`` when known).
        """
        for event in self.events:
            try:
                changes = event.capacity_changes(substrate)
            except KeyError as exc:
                # Recovery/drain events dereference the substrate for the
                # nominal capacity; surface the same fail-fast error the
                # membership check below produces.
                raise SimulationError(
                    f"event {event!r} references unknown element "
                    f"{exc.args[0]!r} of substrate {substrate.name!r}"
                ) from None
            for kind, element, _ in changes:
                known = substrate.links if kind == "link" else substrate.nodes
                if element not in known:
                    raise SimulationError(
                        f"event {event!r} references unknown {kind} "
                        f"{element!r} of substrate {substrate.name!r}"
                    )
            if isinstance(event, IngressMigration):
                for node in (event.source, event.target):
                    if node not in substrate.nodes:
                        raise SimulationError(
                            f"event {event!r} references unknown node "
                            f"{node!r} of substrate {substrate.name!r}"
                        )
            elif isinstance(event, FlashCrowd):
                for request in event.requests:
                    if request.ingress not in substrate.nodes:
                        raise SimulationError(
                            f"flash-crowd request {request.id} (slot "
                            f"{event.slot}) references unknown node "
                            f"{request.ingress!r} of substrate "
                            f"{substrate.name!r}"
                        )
                    if num_apps is not None and not (
                        0 <= request.app_index < num_apps
                    ):
                        raise SimulationError(
                            f"flash-crowd request {request.id} (slot "
                            f"{event.slot}) references app_index "
                            f"{request.app_index}, outside the scenario's "
                            f"{num_apps} applications"
                        )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"EventSchedule({len(self.events)} events{label}, "
            f"policy={self.policy!r})"
        )


class EventCursor:
    """A resumable read position over a schedule's capacity events.

    The schedule itself is immutable and randomly addressable
    (:meth:`EventSchedule.capacity_events_at`); what a *run* needs on top
    is a record of how far it has consumed the schedule — which slot
    comes next and how many capacity events have been applied (the
    ``num_events`` accounting). Keeping that here makes the simulation
    session's checkpoint/restore trivial: :meth:`state` is two integers,
    and :meth:`EventSchedule.cursor` rebuilds the position exactly.
    """

    __slots__ = ("schedule", "next_slot", "consumed")

    def __init__(
        self, schedule: EventSchedule, next_slot: int = 0, consumed: int = 0
    ) -> None:
        self.schedule = schedule
        self.next_slot = next_slot
        self.consumed = consumed

    def advance(self, slot: int) -> tuple[Event, ...]:
        """Consume and return the capacity events of ``slot``.

        Slots must be consumed in order, each exactly once — rewinding or
        skipping would desynchronize the residual state from the
        schedule, so both fail fast.
        """
        if slot != self.next_slot:
            raise SimulationError(
                f"event cursor expected slot {self.next_slot}, "
                f"got {slot}; slots must be consumed in order"
            )
        events = self.schedule.capacity_events_at(slot)
        self.next_slot = slot + 1
        self.consumed += len(events)
        return events

    @property
    def exhausted(self) -> bool:
        """Whether every capacity event lies behind the cursor."""
        return self.next_slot > self.schedule.max_capacity_slot

    def state(self) -> tuple[int, int]:
        """``(next_slot, consumed)`` — everything a checkpoint needs."""
        return (self.next_slot, self.consumed)

    def __repr__(self) -> str:
        return (
            f"EventCursor(next_slot={self.next_slot}, "
            f"consumed={self.consumed} of {self.schedule!r})"
        )


# -- application --------------------------------------------------------------


def apply_capacity_events(
    residual: "ResidualState", events: tuple[Event, ...]
) -> bool:
    """Apply a slot's capacity events to one residual state.

    Returns whether any effective capacity actually changed (a failure of
    an already-failed link is a no-op and triggers no disruption scan).
    """
    substrate = residual.substrate
    changed = False
    for event in events:
        for kind, element, capacity in event.capacity_changes(substrate):
            if kind == "node":
                changed = residual.set_node_capacity(element, capacity) or changed
            else:
                changed = residual.set_link_capacity(element, capacity) or changed
    return changed


def apply_and_resolve(
    algorithm: ResidualAlgorithm, events: tuple[Event, ...], policy: str
) -> list[Request]:
    """One slot's capacity events against a residual-tracking algorithm.

    The single code path OLIVE (hence QUICKG/OLIVE-W/OLIVE-RE) and FULLG
    route their ``apply_events`` through — mutate the residual, then
    resolve whatever the cuts stranded. Returns the dropped requests.
    """
    if not apply_capacity_events(algorithm.residual, events):
        return []
    return resolve_disruptions(algorithm, policy)


def resolve_disruptions(
    algorithm: ResidualAlgorithm, policy: str
) -> list[Request]:
    """Resolve allocations stranded by a capacity cut, deterministically.

    While any element's residual is negative, the earliest still-active
    allocation touching an overloaded element is released (insertion
    order of the algorithm's active table — identical between the fast
    and reference engines, so whole-sim bit-equivalence is preserved).
    Under the ``"reroute"`` policy each released request then gets one
    greedy re-embedding attempt against the degraded substrate, in
    release order; only requests that no longer fit anywhere are dropped.

    The algorithm must expose ``residual``, ``active_loads()``,
    ``release(request)`` and (for reroute) ``reroute(request) -> bool``.

    One forward pass suffices: releases only *return* capacity, so the
    overloaded set monotonically shrinks and an allocation skipped once
    can never become a toucher later — the pass selects exactly the
    victims (in the same order) that repeated earliest-toucher scans
    would, at O(active + elements) instead of quadratic.
    """
    residual = algorithm.residual
    released: list[Request] = []
    over_nodes, over_links = residual.overloaded_elements()
    if not over_nodes and not over_links:
        return []
    over_node_set = set(over_nodes)
    over_link_set = set(over_links)
    node_index = residual.index.node_index
    link_index = residual.index.link_index
    # Snapshot: release() mutates the active table mid-iteration.
    for request, loads in list(algorithm.active_loads()):
        if not (over_node_set or over_link_set):
            break
        if any(node in over_node_set for node in loads.nodes) or any(
            link in over_link_set for link in loads.links
        ):
            algorithm.release(request)
            released.append(request)
            # Only elements this release touched can leave the set.
            for node in loads.nodes:
                if (
                    node in over_node_set
                    and residual.node_residual[node_index[node]] >= -EPSILON
                ):
                    over_node_set.discard(node)
            for link in loads.links:
                if (
                    link in over_link_set
                    and residual.link_residual[link_index[link]] >= -EPSILON
                ):
                    over_link_set.discard(link)
    if over_node_set or over_link_set:  # pragma: no cover - cut below zero
        raise SimulationError(
            "capacity overload not attributable to any active "
            f"allocation (nodes {sorted(over_node_set)}, "
            f"links {sorted(over_link_set)})"
        )
    if policy == "reroute":
        dropped = []
        for request in released:
            if not algorithm.reroute(request):
                dropped.append(request)
        return dropped
    return released


def substrate_with_capacities(
    substrate: SubstrateNetwork,
    node_capacity: dict[NodeId, float],
    link_capacity: dict[LinkId, float],
) -> SubstrateNetwork:
    """A substrate copy with some effective capacities overridden.

    Used by algorithms that re-derive state from the substrate each slot
    (SLOTOFF's per-slot LP) rather than tracking a residual.
    """
    if not node_capacity and not link_capacity:
        return substrate
    nodes = {
        v: (
            dataclasses.replace(attrs, capacity=node_capacity[v])
            if v in node_capacity
            else attrs
        )
        for v, attrs in substrate.nodes.items()
    }
    links: dict[LinkId, LinkAttrs] = {
        l: (
            dataclasses.replace(attrs, capacity=link_capacity[l])
            if l in link_capacity
            else attrs
        )
        for l, attrs in substrate.links.items()
    }
    return SubstrateNetwork(name=substrate.name, nodes=nodes, links=links)


def capacity_invariant_gap(algorithm: ResidualAlgorithm) -> float:
    """max |residual + Σ active loads − effective capacity| over elements.

    The capacity invariant every residual-tracking algorithm must keep;
    exposed for the metamorphic property tests.
    """
    residual = algorithm.residual
    index = substrate_index(residual.substrate)
    node_used = [0.0] * index.num_nodes
    link_used = [0.0] * index.num_links
    for _, loads in algorithm.active_loads():
        for node, load in loads.nodes.items():
            node_used[index.node_index[node]] += load
        for link, load in loads.links.items():
            link_used[index.link_index[link]] += load
    gap = 0.0
    for i in range(index.num_nodes):
        gap = max(
            gap,
            abs(
                residual.node_residual[i]
                + node_used[i]
                - residual.node_capacity[i]
            ),
        )
    for i in range(index.num_links):
        gap = max(
            gap,
            abs(
                residual.link_residual[i]
                + link_used[i]
                - residual.link_capacity[i]
            ),
        )
    return gap
