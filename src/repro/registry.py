"""Pluggable component registries — the library's extension points.

Every string-dispatched component family (algorithms, topologies, trace
kinds, application mixes, efficiency models) is backed by one
:class:`Registry`. The built-in entries are registered by the modules
that define them; third-party code extends the system the same way,
without touching any core file::

    from repro.registry import register_algorithm

    @register_algorithm("MYALG", needs_plan=False,
                        description="my custom embedder")
    def _make_myalg(scenario):
        return MyAlgorithm(scenario.substrate, scenario.apps)

After that, ``"MYALG"`` works everywhere a built-in name does: in
``Experiment(...).algorithms("MYALG")``, in ``make_algorithm``, in the
CLI's ``--algo`` flag, and in ``python -m repro.experiments list``.

Lookup errors raise each registry's domain exception (so existing
``except TopologyError`` call sites keep working) and always name the
registry and its known keys. Duplicate registrations raise
:class:`~repro.errors.RegistryError` — shadowing a built-in silently is
never allowed; use :meth:`Registry.unregister` first if replacement is
intended (tests do this in a ``finally`` block).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, TypeVar

from repro.errors import (
    ApplicationError,
    RegistryError,
    ReproError,
    SimulationError,
    TopologyError,
)

__all__ = [
    "Registry",
    "RegistryEntry",
    "algorithm_registry",
    "topology_registry",
    "trace_registry",
    "app_mix_registry",
    "efficiency_registry",
    "event_profile_registry",
    "admission_policy_registry",
    "shard_policy_registry",
    "register_algorithm",
    "register_topology",
    "register_trace",
    "register_app_mix",
    "register_efficiency",
    "register_event_profile",
    "register_admission_policy",
    "register_shard_policy",
]

#: A registered component factory (call signatures vary per family).
Factory = Callable[..., Any]

_F = TypeVar("_F", bound=Factory)


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its factory plus per-entry metadata."""

    name: str
    factory: Factory
    description: str = ""
    metadata: Mapping[str, object] = field(
        default_factory=lambda: MappingProxyType({})
    )

    @property
    def needs_plan(self) -> bool:
        """Whether this component requires an offline plan (algorithms)."""
        return bool(self.metadata.get("needs_plan", False))

    @property
    def metrics(self) -> tuple[str, ...]:
        """The metric names this component reports per run (algorithms)."""
        return tuple(self.metadata.get("metrics", ()))


class Registry:
    """A named factory table with decorator-based registration.

    ``kind`` is the human-readable component family ("algorithm",
    "topology", ...) used in error messages; ``error`` is the exception
    class raised on unknown-name lookups, so each family keeps its
    domain exception.
    """

    def __init__(
        self, kind: str, error: type[ReproError] = RegistryError
    ) -> None:
        self.kind = kind
        self.error = error
        self._entries: dict[str, RegistryEntry] = {}

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str | None = None,
        *,
        description: str = "",
        **metadata: object,
    ) -> Callable[[_F], _F]:
        """Decorator registering a factory under ``name``.

        Without ``name`` the factory's ``__name__`` is used. Extra
        keyword arguments become the entry's metadata (``needs_plan``,
        ``metrics``, ...).
        """

        def decorator(factory: _F) -> _F:
            key = name if name is not None else factory.__name__
            if key in self._entries:
                raise RegistryError(
                    f"{self.kind} {key!r} is already registered in the "
                    f"{self.kind} registry; unregister it first to replace"
                )
            self._entries[key] = RegistryEntry(
                name=key,
                factory=factory,
                description=description or (factory.__doc__ or "").strip().split("\n")[0],
                metadata=MappingProxyType(dict(metadata)),
            )
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove one entry (primarily for tests and hot replacement)."""
        if name not in self._entries:
            raise RegistryError(
                f"cannot unregister unknown {self.kind} {name!r}"
            )
        del self._entries[name]

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> RegistryEntry:
        """The entry for ``name``; unknown names raise the domain error."""
        try:
            return self._entries[name]
        except KeyError:
            raise self.error(
                f"unknown {self.kind} {name!r}; the {self.kind} registry "
                f"knows: {sorted(self._entries)}"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate ``name``'s component via its factory."""
        return self.get(name).factory(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def entries(self) -> tuple[RegistryEntry, ...]:
        return tuple(self._entries[name] for name in sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def as_mapping(self) -> Mapping[str, Factory]:
        """A live read-only ``{name: factory}`` view (legacy dict shape)."""
        return _FactoryView(self)


class _FactoryView(Mapping[str, Factory]):
    """Read-only mapping proxy exposing a registry as ``{name: factory}``.

    Kept so legacy constants like ``TOPOLOGY_BUILDERS`` stay importable
    and reflect late registrations.
    """

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> Factory:
        # Mapping contract: missing keys raise KeyError (``in`` relies on
        # it); the registry's rich domain error stays on ``Registry.get``.
        try:
            return self._registry._entries[name].factory
        except KeyError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry)

    def __len__(self) -> int:
        return len(self._registry)


#: Online embedding algorithms: ``factory(scenario) -> algorithm``.
algorithm_registry = Registry("algorithm", error=SimulationError)
#: Substrate topologies: ``factory() -> SubstrateNetwork``.
topology_registry = Registry("topology", error=TopologyError)
#: Trace generators: ``factory(substrate, apps, trace_config, rng) -> Trace``.
trace_registry = Registry("trace kind", error=SimulationError)
#: Application mixes: ``factory(rng) -> list[Application]``.
app_mix_registry = Registry("app mix", error=ApplicationError)
#: Efficiency models: ``factory() -> EfficiencyModel``.
efficiency_registry = Registry("efficiency model", error=SimulationError)
#: Dynamic-event profiles: ``factory(scenario, rng) -> EventSchedule``.
event_profile_registry = Registry("event profile", error=SimulationError)
#: Service admission policies: ``factory(**params) -> AdmissionPolicy``.
admission_policy_registry = Registry("admission policy", error=SimulationError)
#: Substrate shard policies:
#: ``factory(substrate, num_shards, rng) -> {NodeId: shard}``.
shard_policy_registry = Registry("shard policy", error=SimulationError)

register_algorithm = algorithm_registry.register
register_topology = topology_registry.register
register_trace = trace_registry.register
register_app_mix = app_mix_registry.register
register_efficiency = efficiency_registry.register
register_event_profile = event_profile_registry.register
register_admission_policy = admission_policy_registry.register
register_shard_policy = shard_policy_registry.register
