"""Demand statistics: time aggregation and bootstrap percentile estimation.

Implements Sec. III-A: the request history R_HIST is grouped into classes
r̃_{a,v} by application and ingress; per-class demand time series d(r̃, t)
are reduced to a single expected peak demand d(r̃) = P̂_α — the bootstrap
estimate of the α-percentile of the series (the paper uses P̂_80 to avoid
over-provisioning).
"""

from repro.stats.aggregate import (
    AggregateRequest,
    build_aggregate_demand,
    class_demand_series,
)
from repro.stats.bootstrap import (
    PercentileEstimate,
    bootstrap_percentile,
    demand_conforms,
    ecdf,
)

__all__ = [
    "AggregateRequest",
    "class_demand_series",
    "build_aggregate_demand",
    "PercentileEstimate",
    "bootstrap_percentile",
    "ecdf",
    "demand_conforms",
]
