"""Bootstrap estimation of demand percentiles (Sec. III-A).

The percentile of a sample is itself a random variable; the paper estimates
it with the standard bootstrap [25]: resample the per-slot demand series
with replacement, compute the α-percentile of each resample, and use the
bootstrap mean as the point estimate with a percentile-method confidence
interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class PercentileEstimate:
    """Bootstrap point estimate and confidence interval of a percentile."""

    estimate: float
    ci_low: float
    ci_high: float
    alpha: float

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high


def bootstrap_percentile(
    series: np.ndarray,
    alpha: float = 80.0,
    num_resamples: int = 200,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> PercentileEstimate:
    """Bootstrap-estimate the α-percentile of a demand series.

    Parameters
    ----------
    series:
        Per-slot aggregate demand observations d(r̃, t).
    alpha:
        Percentile in (0, 100]; the paper uses 80.
    num_resamples:
        Bootstrap resample count.
    confidence:
        Width of the percentile-method CI (default 95 %, matching the
        paper's conformance definition).
    """
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        raise WorkloadError("cannot estimate a percentile of an empty series")
    if not 0 < alpha <= 100:
        raise WorkloadError(f"alpha must be in (0, 100], got {alpha}")
    if num_resamples < 1:
        raise WorkloadError("need at least one bootstrap resample")
    if rng is None:
        rng = np.random.default_rng(0)
    samples = rng.choice(series, size=(num_resamples, series.size), replace=True)
    stats = np.percentile(samples, alpha, axis=1)
    tail = (1.0 - confidence) / 2.0
    ci_low = float(np.quantile(stats, tail))
    ci_high = float(np.quantile(stats, 1.0 - tail))
    # Float summation can push the bootstrap mean an ulp outside its own
    # interval for near-constant series; clamp to keep the invariant.
    estimate = min(max(float(stats.mean()), ci_low), ci_high)
    return PercentileEstimate(
        estimate=estimate, ci_low=ci_low, ci_high=ci_high, alpha=alpha
    )


def ecdf(series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a series: sorted values and cumulative probabilities."""
    series = np.asarray(series, dtype=float)
    if series.size == 0:
        raise WorkloadError("cannot build the ECDF of an empty series")
    values = np.sort(series)
    probabilities = np.arange(1, values.size + 1) / values.size
    return values, probabilities


def demand_conforms(
    online_series: np.ndarray,
    history_series: np.ndarray,
    alpha: float = 80.0,
    num_resamples: int = 200,
    rng: np.random.Generator | None = None,
) -> bool:
    """Does online demand conform to the history's expectations?

    The paper's definition: the observed online percentile P_α falls within
    the 95 % confidence interval of P̂_α estimated from R_HIST.
    """
    online_series = np.asarray(online_series, dtype=float)
    if online_series.size == 0:
        raise WorkloadError("empty online series")
    observed = float(np.percentile(online_series, alpha))
    estimate = bootstrap_percentile(
        history_series, alpha=alpha, num_resamples=num_resamples, rng=rng
    )
    return estimate.contains(observed)
