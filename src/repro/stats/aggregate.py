"""Time aggregation of request histories into PLAN-VNE inputs (Sec. III-A).

Grouping: r̃_{a,v} = requests of application a arriving at ingress v
(Eq. 5). Per-class demand series: d(r̃, t) = Σ d(r) over requests of the
class active at slot t. Expected demand: d(r̃) = P̂_α of that series
(Eq. 6), estimated by bootstrap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.stats.bootstrap import bootstrap_percentile
from repro.utils.rng import child_rng
from repro.workload.request import Request

ClassKey = tuple[int, str]


@dataclass(frozen=True)
class AggregateRequest:
    """One aggregated request class r̃_{a,v} with its expected demand d(r̃)."""

    app_index: int
    ingress: str
    demand: float

    @property
    def class_key(self) -> ClassKey:
        return (self.app_index, self.ingress)


def class_demand_series(
    requests: list[Request], num_slots: int
) -> dict[ClassKey, np.ndarray]:
    """Per-class active-demand time series d(r̃, t) over ``num_slots`` slots.

    A request contributes its demand to every slot in [t(r), t(r)+T(r)).
    Activity past the horizon is truncated at ``num_slots``.
    """
    if num_slots < 1:
        raise WorkloadError("need at least one slot")
    per_class: dict[ClassKey, list[Request]] = {}
    for request in requests:
        per_class.setdefault(request.class_key(), []).append(request)
    series: dict[ClassKey, np.ndarray] = {}
    for key, members in per_class.items():
        starts = np.array(
            [min(r.arrival, num_slots) for r in members], dtype=np.int64
        )
        stops = np.array(
            [min(r.departure, num_slots) for r in members], dtype=np.int64
        )
        demands = np.array([r.demand for r in members])
        lengths = stops - starts
        keep = lengths > 0
        starts, lengths, demands = starts[keep], lengths[keep], demands[keep]
        out = np.zeros(num_slots)
        if lengths.size:
            # Concatenated [start, stop) ranges, one per request in
            # request order; np.add.at applies the unbuffered adds in
            # index order, reproducing the per-request slice-accumulation
            # of the scalar loop bit for bit.
            offsets = np.cumsum(lengths) - lengths
            total = int(lengths.sum())
            positions = (
                np.arange(total, dtype=np.int64)
                + np.repeat(starts - offsets, lengths)
            )
            np.add.at(out, positions, np.repeat(demands, lengths))
        series[key] = out
    return series


def build_aggregate_demand(
    requests: list[Request],
    num_slots: int,
    alpha: float = 80.0,
    num_resamples: int = 200,
    rng: np.random.Generator | None = None,
    min_demand: float = 1e-9,
) -> list[AggregateRequest]:
    """Aggregate a history into PLAN-VNE's input request set R̃.

    Classes whose estimated demand is ≤ ``min_demand`` are dropped — they
    contribute nothing to the plan and would only bloat the LP.

    Results are sorted by class key so the LP layout is deterministic.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    series = class_demand_series(requests, num_slots)
    aggregates: list[AggregateRequest] = []
    for key in sorted(series):
        app_index, ingress = key
        estimate = bootstrap_percentile(
            series[key],
            alpha=alpha,
            num_resamples=num_resamples,
            rng=child_rng(rng, "bootstrap", app_index, ingress),
        )
        if estimate.estimate > min_demand:
            aggregates.append(
                AggregateRequest(
                    app_index=app_index, ingress=ingress,
                    demand=estimate.estimate,
                )
            )
    return aggregates
