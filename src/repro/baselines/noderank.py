"""NODERANK: topology-aware node-ranking embedding (Cheng et al. [16]).

A representative of the classic heuristic family the paper's related work
surveys: substrate nodes are ranked once per slot by a Markov-chain measure
combining free resources and connectivity (analogous to PageRank over the
capacity-weighted topology); virtual nodes are mapped greedily
best-rank-first onto the highest-ranked feasible substrate nodes, then
virtual links are routed on capacity-feasible shortest paths.

Included as an extra comparison point beyond the paper's three baselines:
it shares QUICKG's online per-request operation but spreads load by rank
instead of collocating by cost.
"""

from __future__ import annotations

import numpy as np

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel, UniformEfficiency
from repro.core.embedding import Embedding, compute_loads
from repro.core.olive import Decision
from repro.core.residual import ResidualState
from repro.substrate.network import NodeId, SubstrateNetwork
from repro.utils.paths import capacity_constrained_dijkstra, path_links
from repro.workload.request import Request

#: Damping factor of the rank Markov chain (PageRank convention).
DAMPING = 0.85
#: Convergence threshold and iteration cap for the power method.
RANK_TOLERANCE = 1e-8
RANK_MAX_ITERATIONS = 200


def compute_node_ranks(
    substrate: SubstrateNetwork, residual: ResidualState
) -> dict[NodeId, float]:
    """Resource-and-connectivity rank of every substrate node.

    Each node's intrinsic weight is its free CPU capacity times the free
    bandwidth of its incident links (Cheng et al.'s H value); the Markov
    chain then diffuses weight along links, so well-connected nodes near
    capacity-rich regions rank higher.
    """
    nodes = list(substrate.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    intrinsic = np.zeros(len(nodes))
    for i, v in enumerate(nodes):
        free_bandwidth = sum(
            residual.links[link] for _, link in substrate.adjacency[v]
        )
        intrinsic[i] = max(residual.nodes[v], 0.0) * max(free_bandwidth, 1.0)
    total = intrinsic.sum()
    if total <= 0:
        return {v: 0.0 for v in nodes}
    intrinsic /= total

    rank = intrinsic.copy()
    for _ in range(RANK_MAX_ITERATIONS):
        spread = np.zeros(len(nodes))
        for v in nodes:
            neighbors = substrate.adjacency[v]
            if not neighbors:
                continue
            share = rank[index[v]] / len(neighbors)
            for neighbor, _ in neighbors:
                spread[index[neighbor]] += share
        updated = (1.0 - DAMPING) * intrinsic + DAMPING * spread
        if np.abs(updated - rank).max() < RANK_TOLERANCE:
            rank = updated
            break
        rank = updated
    return {v: float(rank[index[v]]) for v in nodes}


class NodeRankAlgorithm:
    """Per-request node-ranking embedder (release/process interface).

    Ranks are refreshed lazily once per time slot — recomputing per request
    would dominate runtime without changing decisions much (the residual
    moves slowly within a slot).
    """

    def __init__(
        self,
        substrate: SubstrateNetwork,
        apps: list[Application],
        efficiency: EfficiencyModel | None = None,
    ) -> None:
        self.substrate = substrate
        self.apps = apps
        self.efficiency = efficiency or UniformEfficiency()
        self.name = "NODERANK"
        self.residual = ResidualState(substrate)
        self.active: dict[int, tuple[Request, object, float]] = {}
        self._ranks: dict[NodeId, float] | None = None

    def on_slot(self, t: int) -> None:
        """Simulator hook: invalidate the rank cache each slot."""
        self._ranks = None

    def release(self, request: Request) -> None:
        entry = self.active.pop(request.id, None)
        if entry is None:
            return
        self.residual.release(entry[1])

    def _ranked_nodes(self) -> list[NodeId]:
        if self._ranks is None:
            self._ranks = compute_node_ranks(self.substrate, self.residual)
        return sorted(self._ranks, key=self._ranks.get, reverse=True)

    def _embed(self, request: Request, app: Application) -> Embedding | None:
        """Greedy rank-first node mapping + shortest-path link mapping."""
        ranked = self._ranked_nodes()
        node_map: dict[int, NodeId] = {ROOT_ID: request.ingress}
        # Track node consumption during mapping so two virtual nodes do not
        # jointly overshoot one substrate node.
        provisional: dict[NodeId, float] = {}
        # Map virtual nodes largest-first (harder to place).
        for vnf in sorted(app.non_root_vnfs(), key=lambda v: -v.size):
            placed = False
            for candidate in ranked:
                attrs = self.substrate.nodes[candidate]
                eta = self.efficiency.node_eta(vnf, attrs)
                if eta is None:
                    continue
                load = request.demand * vnf.size * eta
                used = provisional.get(candidate, 0.0)
                if load + used <= self.residual.nodes[candidate]:
                    node_map[vnf.id] = candidate
                    provisional[candidate] = used + load
                    placed = True
                    break
            if not placed:
                return None
        # Link mapping: per-virtual-link capacity-feasible shortest path.
        link_paths: dict[tuple[int, int], tuple] = {}
        provisional_links: dict = {}
        for vlink in app.links:
            source = node_map[vlink.tail]
            target = node_map[vlink.head]
            if source == target:
                link_paths[vlink.key] = ()
                continue
            load = request.demand * vlink.size

            def feasible(link, load=load):
                used = provisional_links.get(link, 0.0)
                return self.residual.links[link] >= load + used

            dist, parent = capacity_constrained_dijkstra(
                self.substrate.adjacency,
                source,
                link_weight=lambda l: load * self.substrate.link_cost(l),
                link_feasible=feasible,
            )
            if target not in dist:
                return None
            path = tuple(path_links(parent, source, target))
            for link in path:
                provisional_links[link] = (
                    provisional_links.get(link, 0.0) + load
                )
            link_paths[vlink.key] = path
        return Embedding(node_map=node_map, link_paths=link_paths)

    def process(self, request: Request) -> Decision:
        app = self.apps[request.app_index]
        embedding = self._embed(request, app)
        if embedding is None:
            return Decision(request=request, accepted=False)
        loads = compute_loads(
            app, request.demand, embedding, self.substrate, self.efficiency
        )
        if not self.residual.fits(loads):
            return Decision(request=request, accepted=False)
        self.residual.allocate(loads)
        cost = loads.cost_per_slot(self.substrate)
        self.active[request.id] = (request, loads, cost)
        return Decision(
            request=request,
            accepted=True,
            via_greedy=True,
            embedding=embedding,
            cost_per_slot=cost,
        )

    def active_demand(self) -> float:
        return sum(entry[0].demand for entry in self.active.values())

    def active_cost_per_slot(self) -> float:
        return sum(entry[2] for entry in self.active.values())
