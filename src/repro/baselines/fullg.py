"""FULLG: exact per-request minimum-cost embedding (Sec. IV-A).

The paper's FULLG solves a full OFF-VNE ILP per request — "the best
possible greedy algorithm", evaluated only as a reference point because it
does not scale. Our substitute exploits that every evaluation VN is a tree
rooted at θ (pinned to the ingress): the minimum-cost unsplittable
embedding then decomposes over subtrees and is computed exactly by dynamic
programming.

For each virtual node j and substrate node v, ``H_j(v)`` is the minimum
cost of embedding the subtree rooted at j with j placed on v::

    H_j(v) = place(j, v) + Σ_{children k} min_w [ route_{jk}(v, w) + H_k(w) ]

The inner minimum over all w is computed for *all* v simultaneously with
one multi-source Dijkstra per virtual link, seeded with H_k(w) at every w
(route costs are symmetric on an undirected substrate).

The DP prices each element against the residual capacity independently; a
mapping where several virtual elements share one substrate element could
overshoot jointly, so the reconstructed embedding is verified against the
exact residual (Eq. 18) before acceptance. Individual requests are tiny
relative to element capacities, so this binds only at extreme utilization —
the same regime where the paper's ILP would reject too.
"""

from __future__ import annotations

import heapq
import math

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel, UniformEfficiency
from repro.core.embedding import Embedding, compute_loads
from repro.core.profile import AppProfile, AppProfileCache
from repro.core.residual import ResidualState
from repro.errors import SimulationError
from repro.substrate.network import NodeId, SubstrateNetwork, substrate_index
from repro.workload.request import Request


def _multi_source_dijkstra(
    substrate: SubstrateNetwork,
    link_residual: dict,
    link_cost: dict,
    seeds: dict[NodeId, float],
    link_load: float,
) -> tuple[dict[NodeId, float], dict[NodeId, tuple[NodeId, tuple]]]:
    """min_w [route(v, w) + seed(w)] for every v, with parent pointers.

    Seeds are the subtree costs H_k(w); traversal is restricted to links
    whose residual capacity covers ``link_load`` and priced at
    ``link_load × cost(link)`` per hop. Walking parents from any v leads
    back to its optimal seed node w. ``link_residual``/``link_cost`` are
    plain-dict snapshots (residuals are fixed for the duration of one
    request; native dict lookups keep the relaxation loop fast).
    """
    dist: dict[NodeId, float] = dict(seeds)
    parent: dict[NodeId, tuple[NodeId, tuple]] = {}
    heap = [(cost, i, node) for i, (node, cost) in enumerate(seeds.items())]
    heapq.heapify(heap)
    counter = len(heap)
    finished: set[NodeId] = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in finished or d > dist.get(node, math.inf):
            continue
        finished.add(node)
        for neighbor, link in substrate.adjacency[node]:
            if neighbor in finished:
                continue
            if link_residual[link] < link_load:
                continue
            candidate = d + link_load * link_cost[link]
            if candidate < dist.get(neighbor, math.inf):
                dist[neighbor] = candidate
                parent[neighbor] = (node, link)
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return dist, parent


def exact_embed(
    request: Request,
    app: Application,
    substrate: SubstrateNetwork,
    efficiency: EfficiencyModel,
    residual: ResidualState,
    profile: AppProfile | None = None,
) -> Embedding | None:
    """Exact min-cost embedding of one request, or None if infeasible.

    ``profile`` supplies precomputed per-(VNF, node) η rows so the
    placement-feasibility scan skips the per-node efficiency calls; the
    resulting placement costs are bit-identical either way.
    """
    demand = request.demand
    if request.ingress not in substrate.nodes:
        raise SimulationError(f"unknown ingress {request.ingress!r}")
    index = substrate_index(substrate)
    node_ids = index.node_ids
    node_costs = index.node_cost_list
    # Position-indexed residuals, already in node-id order; fixed for the
    # duration of one request. The link snapshot feeds the per-virtual-
    # link Dijkstras' key-based lookups.
    node_residual = residual.node_residual
    link_residual = dict(zip(index.link_ids, residual.link_residual))
    link_cost = index.link_cost_map
    eta_lists = (
        {vnf_id: etas for vnf_id, (_, etas) in
         zip(profile.vnf_ids, profile.node_terms)}
        if profile is not None
        else None
    )

    # Bottom-up DP. Children of a node must be solved before the node, so
    # process virtual links in reverse BFS order.
    subtree_cost: dict[int, dict[NodeId, float]] = {}
    route_maps: dict[tuple[int, int], tuple[dict, dict]] = {}

    ordered = app.links_in_bfs_order()
    for vlink in reversed(ordered):
        child = app.vnf(vlink.head)
        if eta_lists is not None:
            etas = eta_lists[child.id]
        else:
            etas = [
                efficiency.node_eta(child, substrate.nodes[v])
                for v in node_ids
            ]
        place: dict[NodeId, float] = {}
        grand_links = app.children_links(child.id)
        size = child.size
        for i, v in enumerate(node_ids):
            eta = etas[i]
            if eta is None:
                continue
            load = demand * size * eta
            if load != load or load > node_residual[i]:  # nan = forbidden
                continue
            cost = load * node_costs[i]
            extra = 0.0
            feasible = True
            for grand_link in grand_links:
                routed = route_maps[grand_link.key][0]
                if v not in routed:
                    feasible = False
                    break
                extra += routed[v]
            if feasible:
                place[v] = cost + extra
        if not place:
            return None
        subtree_cost[child.id] = place
        link_load = demand * vlink.size
        route_maps[vlink.key] = _multi_source_dijkstra(
            substrate, link_residual, link_cost, place, link_load
        )

    # Root: θ is pinned to the ingress with β = 0.
    total = 0.0
    for vlink in app.children_links(ROOT_ID):
        routed = route_maps[vlink.key][0]
        if request.ingress not in routed:
            return None
        total += routed[request.ingress]

    # Top-down reconstruction following the Dijkstra parent pointers.
    node_map: dict[int, NodeId] = {ROOT_ID: request.ingress}
    link_paths: dict[tuple[int, int], tuple] = {}
    stack = [(ROOT_ID, request.ingress)]
    while stack:
        vnf_id, host = stack.pop()
        for vlink in app.children_links(vnf_id):
            _, parents = route_maps[vlink.key]
            links = []
            node = host
            while node in parents:
                prev, link = parents[node]
                links.append(link)
                node = prev
            # ``node`` is now the seed (child placement); the walked links
            # lead host→seed, which is the virtual link's path.
            node_map[vlink.head] = node
            link_paths[vlink.key] = tuple(links)
            stack.append((vlink.head, node))

    embedding = Embedding(node_map=node_map, link_paths=link_paths)
    loads = compute_loads(app, demand, embedding, substrate, efficiency)
    if not residual.fits(loads):
        return None  # joint use of one element overshot; see module docstring
    return embedding


class FullGAlgorithm:
    """Per-request exact embedder with OLIVE's release/process interface."""

    def __init__(
        self,
        substrate: SubstrateNetwork,
        apps: list[Application],
        efficiency: EfficiencyModel | None = None,
    ) -> None:
        self.substrate = substrate
        self.apps = apps
        self.efficiency = efficiency or UniformEfficiency()
        self.name = "FULLG"
        self.residual = ResidualState(substrate)
        self.active: dict[int, tuple[Request, object, float]] = {}
        #: Shared per-application static data (η rows per node), reused
        #: by every request's placement-feasibility scan.
        self.profiles = AppProfileCache(substrate, self.efficiency)

    def release(self, request: Request) -> None:
        entry = self.active.pop(request.id, None)
        if entry is None:
            return
        self.residual.release(entry[1])

    def process(self, request: Request):
        from repro.core.olive import Decision  # cycle-free late import

        app = self.apps[request.app_index]
        embedding = exact_embed(
            request, app, self.substrate, self.efficiency, self.residual,
            profile=self.profiles.get(app),
        )
        if embedding is None:
            return Decision(request=request, accepted=False)
        loads = compute_loads(
            app, request.demand, embedding, self.substrate, self.efficiency
        )
        self.residual.allocate(loads)
        cost = loads.cost_per_slot(self.substrate)
        self.active[request.id] = (request, loads, cost)
        return Decision(
            request=request,
            accepted=True,
            via_greedy=True,
            embedding=embedding,
            cost_per_slot=cost,
        )

    def active_demand(self) -> float:
        return sum(entry[0].demand for entry in self.active.values())

    def active_cost_per_slot(self) -> float:
        return sum(entry[2] for entry in self.active.values())

    # -- dynamic events ------------------------------------------------------

    def active_loads(self):
        """``(request, loads)`` in allocation order (disruption scans)."""
        for request, loads, _ in self.active.values():
            yield request, loads

    def reroute(self, request: Request) -> bool:
        """Re-embed a disrupted request exactly, against the degraded
        substrate; the original allocation is already released."""
        app = self.apps[request.app_index]
        embedding = exact_embed(
            request, app, self.substrate, self.efficiency, self.residual,
            profile=self.profiles.get(app),
        )
        if embedding is None:
            return False
        loads = compute_loads(
            app, request.demand, embedding, self.substrate, self.efficiency
        )
        self.residual.allocate(loads)
        self.active[request.id] = (
            request, loads, loads.cost_per_slot(self.substrate)
        )
        return True

    def apply_events(self, t: int, events, policy: str) -> list[Request]:
        """Consume one slot's capacity events (see OLIVE's counterpart)."""
        from repro.scenarios.events import apply_and_resolve

        return apply_and_resolve(self, events, policy)
