"""SLOTOFF: per-slot offline re-optimization (Sec. IV-A).

"SLOTOFF sequentially computes an allocation for each time slot t, by
solving a separate OFF-VNE instance comprising the active requests R(t).
Ongoing active requests may have a completely different allocation for each
time slot (an inherent advantage over OLIVE); rejected requests are not
reconsidered."

The paper runs PRANOS as the per-slot solver; we run our PLAN-VNE LP on the
slot's per-class aggregation (PRANOS is itself an aggregate LP relaxation —
see DESIGN.md §2). The fractional per-class allocation is apportioned to
individual requests earliest-arrival-first: a newly arrived request that
does not fit its class quota is permanently rejected; in the rare case an
ongoing request no longer fits, it is dropped (reported as preempted).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel, UniformEfficiency
from repro.core.olive import Decision
from repro.core.profile import MemoizedEfficiency
from repro.core.residual import EPSILON
from repro.lp.solver import solve_lp
from repro.plan.formulation import PlanVNEConfig, build_plan_vne
from repro.stats.aggregate import AggregateRequest, ClassKey
from repro.substrate.network import SubstrateNetwork
from repro.workload.request import Request


@dataclass
class SlotResult:
    """Outcome of one SLOTOFF slot."""

    decisions: list[Decision]
    dropped: list[Request]
    resource_cost: float


class SlotOffAlgorithm:
    """Batch per-slot offline solver with the simulator's batch interface."""

    def __init__(
        self,
        substrate: SubstrateNetwork,
        apps: list[Application],
        efficiency: EfficiencyModel | None = None,
        config: PlanVNEConfig | None = None,
    ) -> None:
        self.substrate = substrate
        self.apps = apps
        # The per-slot PLAN-VNE rebuild asks for the same (VNF, node) /
        # (virtual link, link) η pairs every slot; memoizing the lookups
        # removes that repeated work from the feasibility checks without
        # changing a single coefficient.
        self.efficiency = MemoizedEfficiency(efficiency or UniformEfficiency())
        self.config = config or PlanVNEConfig()
        self.name = "SLOTOFF"
        #: Requests currently embedded (accepted and still active).
        self.active: dict[int, Request] = {}
        self._last_resource_cost = 0.0
        self._last_fraction: dict[ClassKey, float] = {}
        #: The nominal substrate; ``self.substrate`` is swapped for an
        #: effective-capacity copy while dynamic events are in force.
        self._nominal_substrate = substrate
        self._node_overrides: dict = {}
        self._link_overrides: dict = {}

    def release(self, request: Request) -> None:
        self.active.pop(request.id, None)

    def apply_events(self, t: int, events, policy: str) -> list[Request]:
        """Consume one slot's capacity events.

        SLOTOFF re-solves the whole slot from the substrate anyway, so an
        event merely swaps in an effective-capacity substrate copy; the
        next :meth:`run_slot` naturally sheds over-quota ongoing requests
        (reported as dropped there), so no immediate preemption happens
        here and the disruption policy is moot.
        """
        from repro.scenarios.events import substrate_with_capacities

        nominal = self._nominal_substrate
        changed = False
        for event in events:
            for kind, element, capacity in event.capacity_changes(nominal):
                overrides = (
                    self._node_overrides if kind == "node"
                    else self._link_overrides
                )
                nominal_capacity = (
                    nominal.node_capacity(element) if kind == "node"
                    else nominal.link_capacity(element)
                )
                if capacity == nominal_capacity:
                    changed = overrides.pop(element, None) is not None or changed
                elif overrides.get(element) != capacity:
                    overrides[element] = capacity
                    changed = True
        if changed:
            self.substrate = substrate_with_capacities(
                nominal, self._node_overrides, self._link_overrides
            )
        return []

    def run_slot(self, t: int, arrivals: list[Request]) -> SlotResult:
        """Re-solve the slot's OFF-VNE instance and apportion per request."""
        population = sorted(
            list(self.active.values()) + list(arrivals),
            key=lambda r: (r.arrival, r.id),
        )
        if not population:
            self._last_resource_cost = 0.0
            return SlotResult(decisions=[], dropped=[], resource_cost=0.0)

        by_class: dict[ClassKey, list[Request]] = {}
        for request in population:
            by_class.setdefault(request.class_key(), []).append(request)
        aggregates = [
            AggregateRequest(
                app_index=key[0],
                ingress=key[1],
                demand=sum(r.demand for r in requests),
            )
            for key, requests in sorted(by_class.items())
        ]

        model = build_plan_vne(
            self.substrate, self.apps, aggregates, self.efficiency, self.config
        )
        solution = solve_lp(model.program)

        # Resource cost = objective minus the quantile rejection penalty.
        rejection_cost = 0.0
        for (_c, _p), var in model.quantile_vars.items():
            rejection_cost += solution.values[var] * (
                model.program.objective_coefficient(var)
            )
        self._last_resource_cost = solution.objective - rejection_cost

        fractions: dict[ClassKey, float] = {}
        for c, aggregate in enumerate(aggregates):
            root_var = model.node_vars[(c, ROOT_ID, aggregate.ingress)]
            fractions[aggregate.class_key] = float(solution.values[root_var])
        self._last_fraction = fractions

        arrival_ids = {r.id for r in arrivals}
        decisions: list[Decision] = []
        dropped: list[Request] = []
        for key, requests in by_class.items():
            total = sum(r.demand for r in requests)
            quota = fractions[key] * total + EPSILON * max(1.0, total)
            used = 0.0
            for request in requests:  # already earliest-first
                fits = used + request.demand <= quota
                if fits:
                    used += request.demand
                if request.id in arrival_ids:
                    decisions.append(
                        Decision(request=request, accepted=fits)
                    )
                    if fits:
                        self.active[request.id] = request
                elif not fits:
                    self.active.pop(request.id, None)
                    dropped.append(request)
        return SlotResult(
            decisions=decisions,
            dropped=dropped,
            resource_cost=self._last_resource_cost,
        )

    # -- introspection, mirroring the per-request algorithms ----------------

    def active_demand(self) -> float:
        return sum(r.demand for r in self.active.values())

    def active_cost_per_slot(self) -> float:
        """Resource cost of the last solved slot (Eq. 3 inner sum)."""
        return self._last_resource_cost
