"""QUICKG: OLIVE with an empty plan (Sec. IV-A).

"QUICKG runs OLIVE with an empty plan, resorting to greedily allocating
each request, applying the heuristic approach of GREEDYEMBED." With no
plan there are no planned allocations, hence nothing to preempt for, and
the collocation restriction is kept strict (the paper excludes QUICKG from
the GPU study because of it).
"""

from __future__ import annotations

from repro.apps.application import Application
from repro.apps.efficiency import EfficiencyModel
from repro.core.olive import OliveAlgorithm
from repro.plan.api import empty_plan
from repro.substrate.network import SubstrateNetwork


def make_quickg(
    substrate: SubstrateNetwork,
    apps: list[Application],
    efficiency: EfficiencyModel | None = None,
    use_fast_greedy: bool = True,
    greedy_cache_mode: str = "adaptive",
    expected_offers_per_slot: float | None = None,
) -> OliveAlgorithm:
    """Build the QUICKG baseline for one simulation run."""
    return OliveAlgorithm(
        substrate=substrate,
        apps=apps,
        plan=empty_plan(),
        efficiency=efficiency,
        enable_preemption=False,
        allow_split_greedy=False,
        name="QUICKG",
        use_fast_greedy=use_fast_greedy,
        greedy_cache_mode=greedy_cache_mode,
        expected_offers_per_slot=expected_offers_per_slot,
    )
