"""Baseline algorithms from the paper's evaluation (Sec. IV-A).

* **QUICKG** — OLIVE with an empty plan: every request is embedded by the
  collocated greedy heuristic (GREEDYEMBED).
* **FULLG** — the best possible greedy: an exact minimum-cost embedding of
  each request against the residual substrate (the paper uses a per-request
  ILP; we use an exact dynamic program over the tree-shaped VNs — see
  DESIGN.md §2).
* **SLOTOFF** — re-solves an offline aggregate LP for the active requests
  of every time slot (the paper runs PRANOS; we run our PLAN-VNE
  formulation on the per-slot aggregation). Rejected requests are never
  reconsidered.
"""

from repro.baselines.fullg import FullGAlgorithm, exact_embed
from repro.baselines.noderank import NodeRankAlgorithm, compute_node_ranks
from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm

__all__ = [
    "make_quickg",
    "FullGAlgorithm",
    "exact_embed",
    "SlotOffAlgorithm",
    "NodeRankAlgorithm",
    "compute_node_ranks",
]
