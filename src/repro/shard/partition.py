"""Substrate partitioning: K connected region shards + boundary ledger.

The sharding policies live in :data:`repro.registry.shard_policy_registry`
(``factory(substrate, num_shards, rng) → {node: shard}``), so third-party
heuristics plug in exactly like algorithms or topologies. The built-ins
follow the shape of distriopt's ``kbalanced`` graph partitioner: grow K
regions outward from spread seed nodes, always extending the region with
the least accumulated capacity, so regions stay connected by construction
and capacity-balanced by greedy choice.

:func:`partition_substrate` turns a policy's assignment into a
:class:`SubstratePartition`: one induced sub-substrate per shard (node
and link **insertion order preserved** from the source substrate, which
is what makes a K=1 partition bit-identical to the unsharded network for
tie-breaking purposes), the boundary links that cross shards, and a
:class:`BoundaryLedger` — the two-phase reserve→commit/abort capacity
account the frontend charges when it re-homes a request across a
boundary link.

Everything here is deterministic given ``(substrate, policy, seed)``:
node scans run in insertion order, candidate selection breaks ties on
``(capacity, insertion index)``, and the rng parameter exists for
policies that want randomized refinement — the built-ins never draw
from it.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import ShardError, TopologyError
from repro.plan.pattern import ClassPlan, Plan
from repro.registry import register_shard_policy, shard_policy_registry
from repro.substrate.network import LinkId, NodeId, SubstrateNetwork
from repro.substrate.tiers import Tier
from repro.utils.rng import make_rng

#: Capacity slack tolerated by the ledger before a reservation is refused
#: (guards against float drift across repeated reserve/release cycles).
LEDGER_EPS = 1e-9

#: Growth preference rank per tier for the ``tier-aware`` policy: claim
#: backbone (core) nodes first, edges last, so every region keeps its
#: edge nodes attached to their transport/core uplinks.
_TIER_RANK = {Tier.CORE: 0, Tier.TRANSPORT: 1, Tier.EDGE: 2}


def _hop_distances(
    substrate: SubstrateNetwork, source: NodeId
) -> dict[NodeId, int]:
    """BFS hop count from ``source`` to every node (insertion-order queue)."""
    distances = {source: 0}
    frontier = [source]
    while frontier:
        next_frontier: list[NodeId] = []
        for node in frontier:
            for neighbor, _ in substrate.adjacency[node]:
                if neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return distances


def _spread_seeds(
    substrate: SubstrateNetwork,
    num_shards: int,
    candidates: list[NodeId],
) -> list[NodeId]:
    """K seed nodes spread by farthest-point traversal over ``candidates``.

    The first seed is the highest-capacity candidate (ties: insertion
    order); each next seed maximizes the minimum hop distance to the
    seeds chosen so far (ties: higher capacity, then insertion order).
    """
    order = {node: i for i, node in enumerate(substrate.nodes)}
    seeds = [
        max(candidates, key=lambda v: (substrate.nodes[v].capacity, -order[v]))
    ]
    min_distance = dict(_hop_distances(substrate, seeds[0]))
    while len(seeds) < num_shards:
        chosen = max(
            (v for v in candidates if v not in seeds),
            key=lambda v: (
                min_distance.get(v, 0),
                substrate.nodes[v].capacity,
                -order[v],
            ),
        )
        seeds.append(chosen)
        for node, distance in _hop_distances(substrate, chosen).items():
            if distance < min_distance.get(node, distance + 1):
                min_distance[node] = distance
    return seeds


def _grow_regions(
    substrate: SubstrateNetwork,
    seeds: list[NodeId],
    prefer: "dict[NodeId, int] | None" = None,
) -> dict[NodeId, int]:
    """Grow one connected region per seed, balancing accumulated capacity.

    Each step extends the open region with the least accumulated node
    capacity (ties: lower shard id) by its best frontier node —
    ``prefer`` rank first (lower is better) when given, then higher
    capacity, then insertion order. Regions only ever extend along
    substrate links, so each is connected by construction; in a
    connected substrate every node is eventually some region's frontier,
    so the assignment always covers the whole node set.
    """
    order = {node: i for i, node in enumerate(substrate.nodes)}
    assignment: dict[NodeId, int] = {}
    frontiers: list[set[NodeId]] = [set() for _ in seeds]
    weights = [0.0 for _ in seeds]

    def claim(node: NodeId, shard: int) -> None:
        assignment[node] = shard
        weights[shard] += substrate.nodes[node].capacity
        for neighbor, _ in substrate.adjacency[node]:
            if neighbor not in assignment:
                frontiers[shard].add(neighbor)

    for shard, seed in enumerate(seeds):
        claim(seed, shard)
    while len(assignment) < substrate.num_nodes:
        shard = min(
            (s for s in range(len(seeds)) if frontiers[s]),
            key=lambda s: (weights[s], s),
        )
        frontiers[shard] -= assignment.keys()
        node = min(
            frontiers[shard],
            key=lambda v: (
                prefer[v] if prefer is not None else 0,
                -substrate.nodes[v].capacity,
                order[v],
            ),
        )
        frontiers[shard].discard(node)
        claim(node, shard)
    return assignment


@register_shard_policy(
    "kbalanced",
    description="capacity-balanced seeded region growth (distriopt-style)",
)
def _kbalanced(
    substrate: SubstrateNetwork, num_shards: int, rng: np.random.Generator
) -> dict[NodeId, int]:
    """Greedy capacity-balanced growth from farthest-spread seeds."""
    seeds = _spread_seeds(substrate, num_shards, list(substrate.nodes))
    return _grow_regions(substrate, seeds)


@register_shard_policy(
    "tier-aware",
    description="kbalanced growth seeded on core nodes, claiming "
    "backbone tiers first",
)
def _tier_aware(
    substrate: SubstrateNetwork, num_shards: int, rng: np.random.Generator
) -> dict[NodeId, int]:
    """Capacity-balanced growth that keeps regions tier-shaped.

    Seeds sit on core nodes when there are at least K of them (every
    shard owns a slice of the backbone), and growth claims core before
    transport before edge, so edge nodes join the region that already
    holds their uplink instead of being orphaned across a boundary.
    """
    cores = substrate.core_nodes
    candidates = cores if len(cores) >= num_shards else list(substrate.nodes)
    seeds = _spread_seeds(substrate, num_shards, candidates)
    prefer = {
        node: _TIER_RANK[attrs.tier]
        for node, attrs in substrate.nodes.items()
    }
    return _grow_regions(substrate, seeds, prefer=prefer)


@dataclass(frozen=True)
class ShardRegion:
    """One shard: its induced sub-substrate and summary attributes."""

    shard_id: int
    #: Induced sub-substrate (insertion order inherited from the source).
    substrate: SubstrateNetwork
    #: Member node ids, in source insertion order.
    nodes: tuple[NodeId, ...]
    #: Total member node capacity (the balance measure).
    capacity: float


@dataclass(frozen=True)
class SubstratePartition:
    """A substrate cut into K connected region shards.

    ``assignment`` maps every node to its shard; ``boundary_links`` are
    the links whose endpoints live in different shards (classified out
    of every sub-substrate), in source insertion order. Build one with
    :func:`partition_substrate`.
    """

    source: SubstrateNetwork
    policy: str
    seed: int
    num_shards: int
    assignment: Mapping[NodeId, int]
    shards: tuple[ShardRegion, ...]
    boundary_links: tuple[LinkId, ...]

    def shard_of(self, node: NodeId) -> int:
        """The shard owning ``node`` (unknown nodes raise)."""
        try:
            return self.assignment[node]
        except KeyError:
            raise ShardError(
                f"node {node!r} is not part of substrate "
                f"{self.source.name!r}"
            ) from None

    def boundary_between(self, a: int, b: int) -> tuple[LinkId, ...]:
        """Boundary links joining shards ``a`` and ``b``, insertion order."""
        return tuple(
            link
            for link in self.boundary_links
            if {self.assignment[link[0]], self.assignment[link[1]]} == {a, b}
        )

    def neighbor_shards(self, shard: int) -> tuple[int, ...]:
        """Shards reachable from ``shard`` over ≥1 boundary link, ascending."""
        found = set()
        for a, b in self.boundary_links:
            shard_a, shard_b = self.assignment[a], self.assignment[b]
            if shard == shard_a:
                found.add(shard_b)
            elif shard == shard_b:
                found.add(shard_a)
        return tuple(sorted(found))

    def make_ledger(self) -> "BoundaryLedger":
        """A fresh two-phase capacity ledger over the boundary links."""
        return BoundaryLedger(
            {link: self.source.links[link].capacity
             for link in self.boundary_links}
        )

    def summary(self) -> dict:
        """One diagnostics row per partition (balance, boundary size)."""
        capacities = [region.capacity for region in self.shards]
        return {
            "policy": self.policy,
            "num_shards": self.num_shards,
            "nodes_per_shard": [len(r.nodes) for r in self.shards],
            "capacity_per_shard": capacities,
            "capacity_imbalance": (
                max(capacities) / min(capacities) if min(capacities) else
                float("inf")
            ),
            "boundary_links": len(self.boundary_links),
            "boundary_fraction": (
                len(self.boundary_links) / self.source.num_links
                if self.source.num_links
                else 0.0
            ),
        }


def partition_substrate(
    substrate: SubstrateNetwork,
    num_shards: int,
    policy: str = "kbalanced",
    seed: int = 0,
) -> SubstratePartition:
    """Cut ``substrate`` into ``num_shards`` connected region shards.

    The named policy (see :data:`repro.registry.shard_policy_registry`)
    produces the node→shard assignment; this function validates it
    (total coverage, every shard non-empty) and materializes the
    per-shard sub-substrates and the boundary classification. Each
    sub-substrate must be connected — a policy returning a fragmented
    region is a contract violation and raises :class:`ShardError`.
    """
    if num_shards < 1:
        raise ShardError(f"need at least one shard (got {num_shards})")
    if num_shards > substrate.num_nodes:
        raise ShardError(
            f"cannot cut {substrate.num_nodes} nodes into "
            f"{num_shards} shards"
        )
    rng = make_rng(seed)
    assignment = dict(
        shard_policy_registry.create(policy, substrate, num_shards, rng)
    )
    if set(assignment) != set(substrate.nodes):
        missing = sorted(set(substrate.nodes) - set(assignment))
        extra = sorted(set(assignment) - set(substrate.nodes))
        raise ShardError(
            f"shard policy {policy!r} broke coverage: "
            f"missing={missing[:5]} extra={extra[:5]}"
        )
    shard_ids = set(assignment.values())
    if shard_ids != set(range(num_shards)):
        raise ShardError(
            f"shard policy {policy!r} assigned shard ids {sorted(shard_ids)}; "
            f"expected exactly 0..{num_shards - 1} (every shard non-empty)"
        )

    # Induced sub-substrates, preserving the source's node and link
    # insertion order — SubstrateIndex tie-breaking depends on it, and a
    # K=1 sub-substrate must reproduce the unsharded order exactly.
    member_nodes: list[dict] = [{} for _ in range(num_shards)]
    for node, attrs in substrate.nodes.items():
        member_nodes[assignment[node]][node] = attrs
    member_links: list[dict] = [{} for _ in range(num_shards)]
    boundary: list[LinkId] = []
    for link, attrs in substrate.links.items():
        a, b = assignment[link[0]], assignment[link[1]]
        if a == b:
            member_links[a][link] = attrs
        else:
            boundary.append(link)

    shards = []
    for shard in range(num_shards):
        try:
            sub = SubstrateNetwork(
                name=f"{substrate.name}/shard{shard}of{num_shards}",
                nodes=member_nodes[shard],
                links=member_links[shard],
            )
        except TopologyError as error:
            raise ShardError(
                f"shard policy {policy!r} produced a fragmented region "
                f"(shard {shard} of {num_shards} on "
                f"{substrate.name!r}): {error}"
            ) from error
        shards.append(
            ShardRegion(
                shard_id=shard,
                substrate=sub,
                nodes=tuple(member_nodes[shard]),
                capacity=sum(
                    attrs.capacity for attrs in member_nodes[shard].values()
                ),
            )
        )
    return SubstratePartition(
        source=substrate,
        policy=policy,
        seed=seed,
        num_shards=num_shards,
        assignment=assignment,
        shards=tuple(shards),
        boundary_links=tuple(boundary),
    )


@dataclass
class _Reservation:
    link: LinkId
    load: float
    committed: bool = False


class BoundaryLedger:
    """Two-phase capacity account over the boundary links.

    The frontend *reserves* boundary capacity before forwarding a
    cross-shard request to a remote worker, then *commits* the
    reservation (holding it until the request's departure slot) when the
    remote shard accepts, or *aborts* it (restoring the capacity
    immediately) when it rejects. :meth:`advance` releases committed
    holds whose departure slot has been reached. All bookkeeping is
    plain floats keyed in boundary-link insertion order — deterministic
    and single-threaded (only the frontend touches the ledger).
    """

    def __init__(self, capacities: Mapping[LinkId, float]) -> None:
        self.capacities = dict(capacities)
        self._residual = dict(self.capacities)
        self._reservations: dict[int, _Reservation] = {}
        self._releases: list[tuple[int, int]] = []  # (release slot, token)
        self._tokens = itertools.count()
        self.reserved = 0
        self.committed = 0
        self.aborted = 0
        self.released = 0

    def residual(self, link: LinkId) -> float:
        """Uncommitted capacity left on one boundary link."""
        try:
            return self._residual[link]
        except KeyError:
            raise ShardError(
                f"link {link!r} is not a boundary link of this partition"
            ) from None

    @property
    def outstanding(self) -> int:
        """Reservations neither aborted nor released yet."""
        return len(self._reservations)

    def try_reserve(self, link: LinkId, load: float) -> "int | None":
        """Phase one: hold ``load`` on ``link``; None when it won't fit."""
        if load <= 0:
            raise ShardError(
                f"boundary reservation load must be positive (got {load})"
            )
        residual = self.residual(link)
        if load > residual + LEDGER_EPS:
            return None
        self._residual[link] = residual - load
        token = next(self._tokens)
        self._reservations[token] = _Reservation(link=link, load=load)
        self.reserved += 1
        return token

    def _pending(self, token: int, verb: str) -> _Reservation:
        reservation = self._reservations.get(token)
        if reservation is None:
            raise ShardError(
                f"cannot {verb} unknown reservation token {token}"
            )
        if reservation.committed:
            raise ShardError(
                f"cannot {verb} reservation {token}: already committed"
            )
        return reservation

    def commit(self, token: int, release_slot: int) -> None:
        """Phase two (accept): hold the capacity until ``release_slot``."""
        reservation = self._pending(token, "commit")
        reservation.committed = True
        heapq.heappush(self._releases, (release_slot, token))
        self.committed += 1

    def abort(self, token: int) -> None:
        """Phase two (reject): give the reserved capacity straight back."""
        reservation = self._pending(token, "abort")
        self._residual[reservation.link] += reservation.load
        del self._reservations[token]
        self.aborted += 1

    def advance(self, slot: int) -> int:
        """Release committed holds with ``release_slot <= slot``.

        Mirrors the session's departure handling: a request departing at
        slot ``d`` frees its boundary capacity when the clock reaches
        ``d``. Returns how many holds were released.
        """
        count = 0
        while self._releases and self._releases[0][0] <= slot:
            _, token = heapq.heappop(self._releases)
            reservation = self._reservations.pop(token)
            self._residual[reservation.link] += reservation.load
            self.released += 1
            count += 1
        return count


def restrict_plan(plan: Plan, region: SubstrateNetwork) -> Plan:
    """The slice of ``plan`` a shard's algorithm can actually use.

    A class survives when its ingress lies in the region; a pattern
    survives when every mapped node and every routed link does. Dropped
    patterns simply lower the class's allocated fraction — OLIVE already
    treats un-planned demand by falling through to greedy, so no
    re-normalization is needed. With a whole-substrate region (K=1) the
    restriction keeps everything, preserving bit-identical plan residual
    accounting versus the unsharded service.
    """
    nodes = region.nodes.keys()
    links = region.links.keys()
    classes = {}
    for key, class_plan in plan.classes.items():
        if key[1] not in nodes:
            continue
        patterns = [
            pattern
            for pattern in class_plan.patterns
            if all(node in nodes for node in pattern.node_map.values())
            and all(
                link in links
                for path in pattern.link_paths.values()
                for link in path
            )
        ]
        if not patterns:
            continue
        classes[key] = ClassPlan(
            aggregate=class_plan.aggregate,
            patterns=patterns,
            rejected_fraction=class_plan.rejected_fraction,
        )
    return Plan(classes=classes, objective=plan.objective)


__all__ = [
    "BoundaryLedger",
    "LEDGER_EPS",
    "ShardRegion",
    "SubstratePartition",
    "partition_substrate",
    "restrict_plan",
]
