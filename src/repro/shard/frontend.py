"""`ShardedEmbedderService`: the routing frontend over K shard workers.

The frontend mirrors the :class:`~repro.serve.EmbedderService` surface
(``offer`` / ``offer_many`` / ``tick`` / ``advance_to`` / ``finish`` /
``metrics``) while the embedding work happens in per-shard workers:

1. **Route.** Every request homes to the shard owning its ingress node.
   A slot's batch is split into per-shard sub-batches, broadcast to all
   involved workers, and collected afterwards — with process workers
   the K shard computations overlap on K cores.
2. **Two-phase cross-shard resolve.** A request its home shard rejects
   is retried, in offer order, against the home's neighbor shards in
   ascending shard id: the frontend *reserves* the crossing load on the
   best boundary link (phase one), re-homes the request to the link's
   remote endpoint and offers it there; a remote accept *commits* the
   reservation until the request departs, a reject *aborts* it and the
   next neighbor is tried. All tie-breaking is deterministic (link
   preference: ingress-adjacent first, then cheaper, then insertion
   order), so a run is reproducible at any worker count and for either
   worker kind.
3. **Checkpoint / failover.** Every worker is checkpointed at every
   slot boundary (``checkpoint_every``); :meth:`kill_worker` +
   :meth:`restore_worker` replace a dead worker with a spare booted
   from its latest checkpoint, bit-identically to a worker that never
   died.

Fidelity notes, deliberate and documented:

* The crossing load charged to a boundary link is the request's
  root-incident virtual-link load (demand × β × η for every virtual
  link leaving θ) — exact for collocated embeddings (QUICKG's, and the
  vast majority of OLIVE's); the home-side path segment from the
  ingress to the boundary link is not charged (the home shard rejected
  the request, so its intra-shard capacity is untouched by design).
* Per-shard sessions are independent: a shard's ``SimulationResult``
  is its local view (a cross-shard request appears as a home rejection
  *and* a remote acceptance). :attr:`ShardedRunResult.decisions` — the
  frontend's log, one final decision per offer in offer order — is the
  authoritative stream, and at ``num_shards=1`` it is bit-identical to
  the unsharded service's.
* Dynamic event schedules address the whole substrate and are not yet
  partitioned; serving with ``events`` attached raises.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.apps.application import ROOT_ID
from repro.core.olive import Decision
from repro.errors import ShardError, SimulationError
from repro.registry import algorithm_registry
from repro.serve.metrics import ServiceMetrics, _percentile
from repro.serve.service import EmbedderService
from repro.shard.partition import (
    SubstratePartition,
    partition_substrate,
    restrict_plan,
)
from repro.shard.worker import (
    InlineShardWorker,
    ProcessShardWorker,
    WorkerCheckpoint,
)
from repro.sim.engine import SimulationResult
from repro.sim.session import SimulationSession
from repro.substrate.network import LinkId, NodeId
from repro.workload.request import Request


@dataclass(frozen=True)
class ShardedRunResult:
    """What a sharded horizon produced.

    ``decisions`` is the frontend's authoritative stream (one final
    decision per offer, in offer order — cross-shard accepts replace
    their home rejections); ``per_shard`` holds each worker's local
    :class:`~repro.sim.engine.SimulationResult`.
    """

    decisions: tuple[Decision, ...]
    per_shard: tuple[SimulationResult, ...]
    cross_shard: dict

    @property
    def num_offers(self) -> int:
        return len(self.decisions)

    @property
    def num_accepted(self) -> int:
        return sum(1 for d in self.decisions if d.accepted)

    @property
    def acceptance_rate(self) -> float:
        return self.num_accepted / self.num_offers if self.decisions else 1.0


class ShardedEmbedderService:
    """K shard workers behind one ``EmbedderService``-shaped frontend.

    ``workers`` selects the worker kind: ``"process"`` (child processes
    — real parallelism, the default) or ``"inline"`` (in this process —
    zero IPC, for deterministic tests and debugging). Both are
    decision-identical. ``checkpoint_every`` checkpoints every worker
    at every N-th slot boundary (0 disables; disable for pure
    throughput benchmarking). ``cross_shard=False`` turns off the
    two-phase retry, leaving pure partitioned serving.
    """

    def __init__(
        self,
        scenario: Any,
        algorithm: str,
        num_shards: int,
        shard_policy: str = "kbalanced",
        workers: str = "process",
        admission: str = "always",
        admission_params: dict | None = None,
        metrics_window: int = 512,
        checkpoint_every: int = 1,
        cross_shard: bool = True,
    ) -> None:
        if workers not in ("process", "inline"):
            raise ShardError(
                f"workers must be 'process' or 'inline' (got {workers!r})"
            )
        if checkpoint_every < 0:
            raise ShardError(
                f"checkpoint_every must be >= 0 (got {checkpoint_every})"
            )
        if not isinstance(admission, str):
            raise ShardError(
                "a sharded service ships its admission policy to worker "
                "processes by registry name; pass a registered name (got "
                f"{type(admission).__name__})"
            )
        algorithm_registry.get(algorithm)  # fail fast on unknown names
        self.scenario = scenario
        self.algorithm_name = algorithm
        self.horizon = int(scenario.config.online_slots)
        self.partition: SubstratePartition = partition_substrate(
            scenario.substrate,
            num_shards,
            policy=shard_policy,
            seed=scenario.seed,
        )
        self.ledger = self.partition.make_ledger()
        self.cross_shard = cross_shard
        self.checkpoint_every = checkpoint_every
        self._worker_kind = workers
        self._admission = admission
        self._admission_params = dict(admission_params or {})
        self._metrics_window = metrics_window
        self._clock = 0
        self._decisions: list[Decision] = []
        self._offered_in_slot: set[int] = set()
        self._cross_log: list[dict] = []
        self._cross_attempts = 0
        self._cross_commits = 0
        self._cross_aborts = 0
        self._closed = False

        # Root-incident virtual links per application — the β sizes a
        # collocated remote embedding routes over the boundary link.
        self._root_vlinks = [
            tuple(vl for vl in app.links if vl.tail == ROOT_ID)
            for app in scenario.apps
        ]

        self._checkpoints: list[bytes] = []
        self._workers: list[Any] = []
        for region in self.partition.shards:
            checkpoint = self._boot_checkpoint(region)
            self._checkpoints.append(checkpoint.to_bytes())
            self._workers.append(self._spawn(checkpoint))

    def _boot_checkpoint(self, region) -> WorkerCheckpoint:
        """Build shard ``region``'s service at slot 0 and checkpoint it.

        The shard scenario swaps in the region's sub-substrate and the
        plan slice it can use; the algorithm then comes from the same
        registry factory the unsharded service uses, so a whole-
        substrate shard (K=1) instantiates a bit-identical algorithm.
        """
        shard_scenario = dataclasses.replace(
            self.scenario,
            substrate=region.substrate,
            plan=restrict_plan(self.scenario.plan, region.substrate),
        )
        session = SimulationSession(
            algorithm_registry.create(self.algorithm_name, shard_scenario),
            (),
            self.horizon,
        )
        service = EmbedderService(
            session,
            admission=self._admission,
            admission_params=self._admission_params or None,
            metrics_window=self._metrics_window,
        )
        return WorkerCheckpoint.capture(
            region.shard_id, service, self._admission, self._admission_params
        )

    def _spawn(self, checkpoint: WorkerCheckpoint):
        if self._worker_kind == "process":
            return ProcessShardWorker(checkpoint)
        return InlineShardWorker(checkpoint)

    # -- introspection -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    @property
    def current_slot(self) -> int:
        return self._clock

    @property
    def is_done(self) -> bool:
        return self._clock >= self.horizon

    @property
    def decisions(self) -> tuple[Decision, ...]:
        """The authoritative decision stream so far (offer order)."""
        return tuple(self._decisions)

    def shard_of(self, node: NodeId) -> int:
        """Which shard serves offers ingressing at ``node``."""
        return self.partition.shard_of(node)

    # -- the admission API ---------------------------------------------------

    def offer(self, request: Request) -> Decision:
        """Offer one arrival; the sharded analogue of ``offer()``."""
        return self._offer_run([request])[0]

    def offer_many(self, requests: list[Request]) -> list[Decision]:
        """Offer a run of arrivals, coalesced per slot and per shard."""
        decisions: list[Decision] = []
        total = len(requests)
        i = 0
        while i < total:
            j = i + 1
            arrival = requests[i].arrival
            while j < total and requests[j].arrival == arrival:
                j += 1
            decisions.extend(self._offer_run(requests[i:j]))
            i = j
        return decisions

    def offer_batch(self, requests: list[Request]) -> list[Decision]:
        """Compatibility alias for :meth:`offer_many`."""
        return self.offer_many(requests)

    def _offer_run(self, run: list[Request]) -> list[Decision]:
        """One same-slot run: route, collect, cross-shard resolve, log."""
        self._require_open()
        arrival = run[0].arrival
        if arrival >= self.horizon:
            raise SimulationError(
                f"request {run[0].id} arrives at {arrival}, beyond the "
                f"{self.horizon}-slot horizon"
            )
        if arrival < self._clock:
            raise SimulationError(
                f"request {run[0].id} arrives at {arrival}, but the "
                f"service is already at slot {self._clock}"
            )
        if arrival > self._clock:
            self.advance_to(arrival)

        # Phase: route home. Sub-batches preserve offer order within a
        # shard; the broadcast/collect split lets process workers embed
        # their sub-batches concurrently.
        by_shard: dict[int, list[int]] = {}
        for index, request in enumerate(run):
            by_shard.setdefault(
                self.partition.shard_of(request.ingress), []
            ).append(index)
        involved = sorted(by_shard)
        for shard in involved:
            self._workers[shard].send(
                "offer_run", [run[i] for i in by_shard[shard]]
            )
            self._offered_in_slot.add(shard)
        decisions: list[Decision | None] = [None] * len(run)
        for shard in involved:
            for index, decision in zip(
                by_shard[shard], self._workers[shard].recv()
            ):
                decisions[index] = decision

        # Phase: two-phase cross-shard resolve, in offer order.
        if self.cross_shard and self.num_shards > 1:
            for index, decision in enumerate(decisions):
                if decision.accepted:
                    continue
                resolved = self._resolve_cross_shard(run[index])
                if resolved is not None:
                    decisions[index] = resolved
        self._decisions.extend(decisions)
        return list(decisions)

    def _crossing_load(self, request: Request, link_attrs) -> float:
        """Boundary capacity a re-homed request occupies on one link."""
        efficiency = self.scenario.efficiency
        return sum(
            request.demand * vlink.size * efficiency.link_eta(
                vlink, link_attrs
            )
            for vlink in self._root_vlinks[request.app_index]
        )

    def _resolve_cross_shard(self, request: Request) -> "Decision | None":
        """Try the home shard's neighbors through the boundary ledger.

        One gateway attempt per neighbor shard, neighbors in ascending
        shard id; the gateway is the remote endpoint of the best
        reservable boundary link (ingress-adjacent beats cheaper beats
        earlier-inserted). Returns the remote accept rewritten onto the
        original request, or None when every neighbor rejects or no
        boundary capacity fits.
        """
        home = self.partition.shard_of(request.ingress)
        assignment = self.partition.assignment
        for remote in self.partition.neighbor_shards(home):
            candidate: "tuple[tuple, LinkId, float, str] | None" = None
            for link in self.partition.boundary_between(home, remote):
                attrs = self.partition.source.links[link]
                load = self._crossing_load(request, attrs)
                if load > self.ledger.residual(link):
                    continue
                home_end = (
                    link[0] if assignment[link[0]] == home else link[1]
                )
                gateway = link[1] if home_end == link[0] else link[0]
                rank = (
                    0 if home_end == request.ingress else 1,
                    attrs.cost,
                    link,
                )
                if candidate is None or rank < candidate[0]:
                    candidate = (rank, link, load, gateway)
            if candidate is None:
                continue
            _, link, load, gateway = candidate
            token = (
                self.ledger.try_reserve(link, load) if load > 0 else None
            )
            if load > 0 and token is None:  # pragma: no cover - raced above
                continue
            twin = Request.trusted(
                arrival=request.arrival,
                id=request.id,
                app_index=request.app_index,
                ingress=gateway,
                demand=request.demand,
                duration=request.duration,
            )
            self._cross_attempts += 1
            self._workers[remote].send("offer_run", [twin])
            self._offered_in_slot.add(remote)
            outcome = self._workers[remote].recv()[0]
            if outcome.accepted:
                if token is not None:
                    self.ledger.commit(token, request.departure)
                self._cross_commits += 1
                self._cross_log.append(
                    {
                        "request": request.id,
                        "home": home,
                        "remote": remote,
                        "link": link,
                        "load": load,
                        "slot": request.arrival,
                    }
                )
                return dataclasses.replace(outcome, request=request)
            if token is not None:
                self.ledger.abort(token)
            self._cross_aborts += 1
        return None

    # -- time ----------------------------------------------------------------

    def tick(self) -> None:
        """Advance one slot on every worker (and the boundary ledger)."""
        self.advance_to(self._clock + 1)

    def advance_to(self, slot: int) -> None:
        """Drain every slot before ``slot`` in lockstep across shards."""
        self._require_open()
        if slot > self.horizon:
            raise SimulationError(
                f"advance_to({slot}) exceeds the {self.horizon}-slot horizon"
            )
        while self._clock < slot:
            new_clock = self._clock + 1
            for worker in self._workers:
                worker.send("advance_to", new_clock)
            for worker in self._workers:
                worker.recv()
            self.ledger.advance(new_clock)
            self._clock = new_clock
            self._offered_in_slot.clear()
            if self.checkpoint_every and (
                new_clock % self.checkpoint_every == 0
            ):
                self.checkpoint_workers()

    def finish(self) -> ShardedRunResult:
        """Drain the full horizon and assemble the sharded result."""
        self.advance_to(self.horizon)
        for worker in self._workers:
            worker.send("result")
        per_shard = tuple(worker.recv() for worker in self._workers)
        return ShardedRunResult(
            decisions=tuple(self._decisions),
            per_shard=per_shard,
            cross_shard=self.cross_shard_stats(),
        )

    def cross_shard_stats(self) -> dict:
        """Two-phase protocol counters plus the ledger's account."""
        return {
            "attempts": self._cross_attempts,
            "commits": self._cross_commits,
            "aborts": self._cross_aborts,
            "ledger_reserved": self.ledger.reserved,
            "ledger_committed": self.ledger.committed,
            "ledger_aborted": self.ledger.aborted,
            "ledger_released": self.ledger.released,
            "routes": list(self._cross_log),
        }

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> ServiceMetrics:
        """Merged per-shard metrics as one :class:`ServiceMetrics`.

        Cumulative counters (offers, accepted, rejected, shed,
        disrupted) are exact sums. Utilization is the capacity-weighted
        mean of shard utilizations — exact for node capacity. The
        rolling acceptance rate and the latency percentiles merge the
        shards' bounded windows; because each shard's window is bounded
        separately, the merged percentile is an **approximation** of
        what one global window would hold (exact while total traffic
        fits the windows).
        """
        self._require_open()
        for worker in self._workers:
            worker.send("metrics")
        summaries = [worker.recv() for worker in self._workers]
        offers = sum(s["offers"] for s in summaries)
        accepted = sum(s["accepted"] for s in summaries)
        outcomes = [flag for s in summaries for flag in s["outcomes"]]
        latencies = sorted(
            value for s in summaries for value in s["latencies"]
        )
        total_capacity = sum(r.capacity for r in self.partition.shards)
        utilization = (
            sum(
                s["utilization"] * region.capacity
                for s, region in zip(summaries, self.partition.shards)
            )
            / total_capacity
            if total_capacity
            else 0.0
        )
        return ServiceMetrics(
            slot=self._clock,
            offers=offers,
            accepted=accepted,
            rejected=sum(s["rejected"] for s in summaries),
            shed=sum(s["shed"] for s in summaries),
            pending=sum(s["pending"] for s in summaries),
            utilization=utilization,
            acceptance_rate=accepted / offers if offers else 1.0,
            rolling_acceptance_rate=(
                sum(outcomes) / len(outcomes) if outcomes else 1.0
            ),
            p50_latency_ms=_percentile(latencies, 0.50) * 1e3,
            p99_latency_ms=_percentile(latencies, 0.99) * 1e3,
            disrupted=sum(s["disrupted"] for s in summaries),
        )

    # -- checkpointing / failover --------------------------------------------

    def checkpoint_workers(self) -> None:
        """Checkpoint every worker now (slot boundaries only)."""
        for worker in self._workers:
            worker.send("checkpoint")
        for shard, worker in enumerate(self._workers):
            self._checkpoints[shard] = worker.recv()

    def kill_worker(self, shard: int) -> None:
        """Hard-kill one worker (fault injection; process workers only)."""
        self._workers[shard].kill()

    def restore_worker(self, shard: int) -> None:
        """Boot a spare from shard ``shard``'s latest checkpoint.

        Valid at the slot boundary the checkpoint was taken at, before
        the shard received any offer in the current slot — exactly the
        states per-slot checkpointing guarantees exist. The spare is
        bit-identical to the worker that died.
        """
        checkpoint = WorkerCheckpoint.from_bytes(self._checkpoints[shard])
        if checkpoint.clock != self._clock:
            raise ShardError(
                f"shard {shard}'s latest checkpoint is at slot "
                f"{checkpoint.clock}, but the service clock is at "
                f"{self._clock}; restore only at the checkpointed boundary"
            )
        if shard in self._offered_in_slot:
            raise ShardError(
                f"shard {shard} already took offers in slot {self._clock}; "
                "restoring its boundary checkpoint would drop them"
            )
        old = self._workers[shard]
        if old.alive:
            old.close()
        self._workers[shard] = self._spawn(checkpoint)

    def worker_alive(self, shard: int) -> bool:
        return self._workers[shard].alive

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop and reap every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.close()
            except ShardError:  # pragma: no cover - defensive reap
                pass

    def __enter__(self) -> "ShardedEmbedderService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise ShardError("the sharded service has been closed")

    def __repr__(self) -> str:
        return (
            f"ShardedEmbedderService({self.algorithm_name!r}, "
            f"{self.num_shards} shards [{self.partition.policy}], "
            f"slot {self._clock}/{self.horizon}, "
            f"workers={self._worker_kind!r})"
        )


__all__ = ["ShardedEmbedderService", "ShardedRunResult"]
