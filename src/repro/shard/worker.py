"""Per-shard session workers: one embedder per shard, checkpoint-first.

A shard worker owns one :class:`~repro.serve.EmbedderService` over its
shard's sub-substrate. Both implementations boot **from a checkpoint**
(:class:`WorkerCheckpoint`) and execute the same command set through
one shared interpreter (:func:`_execute`), so the in-process and the
child-process worker are decision-identical by construction:

* :class:`InlineShardWorker` runs the service in the calling process —
  zero IPC, the deterministic baseline the shard tests drive;
* :class:`ProcessShardWorker` runs it in a child process behind a pipe,
  which is where the aggregate-throughput win comes from: K workers
  embed their shard's slot batch on K cores concurrently.

Everything crossing the process boundary rides the pickle-certified
:class:`~repro.sim.session.SessionSnapshot` surface (the RPS audit of
PR 8 pins that boundary): a worker's boot payload is a serialized
checkpoint, and its per-slot ``checkpoint`` command returns a fresh one
— which is exactly what makes kill-and-restore-on-a-spare bit-identical
to an undisturbed run.

Pool discipline follows :mod:`repro.sim.runner`: spawning workers is a
parent-process-only operation (``_require_parent_process``), and this
module keeps **no** module-level mutable state — every worker's state
lives on the worker object, so nothing can silently diverge between the
parent and its children.
"""

from __future__ import annotations

import multiprocessing
import pickle
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ShardError
from repro.serve.metrics import MetricsStream
from repro.serve.service import EmbedderService
from repro.sim.runner import _require_parent_process
from repro.sim.session import SessionSnapshot, SimulationSession


def freeze_metrics(metrics: MetricsStream) -> dict:
    """The picklable value-state of a metrics stream.

    Subscribers are live callables (operational wiring, often
    unpicklable) and deliberately stay behind — a restored worker starts
    with the counters and rolling windows of the original but notifies
    nobody until the owning frontend re-subscribes.
    """
    return {
        "window": metrics.window,
        "offers": metrics.offers,
        "accepted": metrics.accepted,
        "rejected": metrics.rejected,
        "shed": metrics.shed,
        "disrupted": metrics.disrupted,
        "slots": metrics.slots,
        "outcomes": list(metrics._outcomes),
        "latencies": list(metrics._latencies),
    }


def thaw_metrics(state: dict) -> MetricsStream:
    """Rebuild a :class:`MetricsStream` from :func:`freeze_metrics` state."""
    metrics = MetricsStream(window=state["window"])
    metrics.offers = state["offers"]
    metrics.accepted = state["accepted"]
    metrics.rejected = state["rejected"]
    metrics.shed = state["shed"]
    metrics.disrupted = state["disrupted"]
    metrics.slots = state["slots"]
    metrics._outcomes = deque(state["outcomes"], maxlen=metrics.window)
    metrics._latencies = deque(state["latencies"], maxlen=metrics.window)
    return metrics


@dataclass(frozen=True)
class WorkerCheckpoint:
    """Everything needed to (re)build one shard's service, by value.

    ``session_bytes`` is the shard session serialized through
    :meth:`~repro.sim.session.SessionSnapshot.to_bytes` — the certified
    pickle boundary; admission travels as a registry name plus factory
    params (policy *instances* are operational objects and stay with
    their process). ``clock`` is the slot the restored service resumes
    at, recorded so a restore can assert it matches the frontend clock.
    """

    shard_id: int
    algorithm: str
    clock: int
    session_bytes: bytes
    admission: str
    admission_params: dict
    metrics_window: int
    metrics_state: dict

    def to_bytes(self) -> bytes:
        """Serialize for shipping to a child process or to disk."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "WorkerCheckpoint":
        checkpoint = pickle.loads(payload)
        if not isinstance(checkpoint, WorkerCheckpoint):
            raise ShardError(
                "payload does not contain a WorkerCheckpoint"
            )
        return checkpoint

    @classmethod
    def capture(
        cls,
        shard_id: int,
        service: EmbedderService,
        admission: str,
        admission_params: dict,
    ) -> "WorkerCheckpoint":
        """Checkpoint a live service (slot boundaries only)."""
        return cls(
            shard_id=shard_id,
            algorithm=service.algorithm.name,
            clock=service.current_slot,
            session_bytes=service.snapshot().to_bytes(),
            admission=admission,
            admission_params=dict(admission_params),
            metrics_window=service.metrics.window,
            metrics_state=freeze_metrics(service.metrics),
        )


class _WorkerState:
    """One booted shard service plus the metadata to re-checkpoint it."""

    def __init__(self, checkpoint: WorkerCheckpoint) -> None:
        self.shard_id = checkpoint.shard_id
        self.admission = checkpoint.admission
        self.admission_params = dict(checkpoint.admission_params)
        session = SimulationSession.restore(
            SessionSnapshot.from_bytes(checkpoint.session_bytes)
        )
        self.service = EmbedderService(
            session,
            admission=checkpoint.admission,
            admission_params=self.admission_params or None,
            metrics_window=checkpoint.metrics_window,
        )
        self.service.metrics = thaw_metrics(checkpoint.metrics_state)

    def checkpoint(self) -> WorkerCheckpoint:
        return WorkerCheckpoint.capture(
            self.shard_id, self.service, self.admission, self.admission_params
        )


def _execute(state: _WorkerState, command: str, args: tuple) -> Any:
    """Run one worker command — the single interpreter both worker kinds
    share, so inline and child-process execution cannot drift apart."""
    service = state.service
    if command == "offer_run":
        return service.offer_many(args[0])
    if command == "advance_to":
        service.advance_to(args[0])
        return None
    if command == "checkpoint":
        return state.checkpoint().to_bytes()
    if command == "metrics":
        return {
            "slot": service.current_slot,
            "utilization": service.utilization(),
            "pending": service.pending_count,
            **freeze_metrics(service.metrics),
        }
    if command == "result":
        return service.result()
    if command == "finish":
        return service.finish()
    raise ShardError(f"unknown shard-worker command {command!r}")


def _shard_worker_main(conn, payload: bytes) -> None:
    """Child-process entry point: boot from the checkpoint, serve commands.

    The reply envelope is ``("ok", result)`` or ``("error", message)`` —
    exceptions are transported as strings (tracebacks of shard commands
    are actionable in the parent; live exception objects may not
    pickle). ``stop`` acknowledges and exits; a closed pipe (parent
    died) exits silently.
    """
    state = _WorkerState(WorkerCheckpoint.from_bytes(payload))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] == "stop":
            conn.send(("ok", None))
            break
        try:
            result = _execute(state, message[0], tuple(message[1:]))
        except Exception as error:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        else:
            conn.send(("ok", result))
    conn.close()


class InlineShardWorker:
    """A shard worker running in the calling process (no parallelism).

    Commands execute eagerly on :meth:`send` and queue their results for
    :meth:`recv`, preserving the split send/receive calling convention
    the frontend uses to overlap process workers.
    """

    def __init__(self, checkpoint: WorkerCheckpoint) -> None:
        self.shard_id = checkpoint.shard_id
        self._state = _WorkerState(checkpoint)
        self._results: deque[Any] = deque()

    @property
    def alive(self) -> bool:
        return True

    @property
    def service(self) -> EmbedderService:
        """The underlying service (inline workers only — tests peek)."""
        return self._state.service

    def send(self, command: str, *args: Any) -> None:
        self._results.append(_execute(self._state, command, args))

    def recv(self) -> Any:
        return self._results.popleft()

    def call(self, command: str, *args: Any) -> Any:
        self.send(command, *args)
        return self.recv()

    def kill(self) -> None:
        raise ShardError(
            "inline shard workers run in this process and cannot be "
            "killed; use workers='process' for fault injection"
        )

    def close(self) -> None:
        pass


class ProcessShardWorker:
    """A shard worker in a child process behind a duplex pipe.

    The boot payload is the serialized checkpoint; every later exchange
    is one pickled command tuple and one reply envelope. :meth:`send`
    and :meth:`recv` are split so the frontend can broadcast a slot's
    sub-batches to all workers first and collect afterwards — that
    overlap is the aggregate-throughput win.
    """

    def __init__(self, checkpoint: WorkerCheckpoint) -> None:
        # Same discipline as repro.sim.runner's pools: only the parent
        # process may spawn shard workers (nested workers would fork
        # from inconsistent pool state and double-subscribe cores).
        _require_parent_process("spawning a shard worker")
        self.shard_id = checkpoint.shard_id
        context = multiprocessing.get_context()
        self._conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_shard_worker_main,
            args=(child_conn, checkpoint.to_bytes()),
            daemon=True,
            name=f"repro-shard-{checkpoint.shard_id}",
        )
        self._process.start()
        child_conn.close()

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    def send(self, command: str, *args: Any) -> None:
        if not self.alive:
            raise ShardError(
                f"shard worker {self.shard_id} is dead; restore it from "
                "its latest checkpoint first"
            )
        self._conn.send((command, *args))

    def recv(self) -> Any:
        try:
            status, result = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ShardError(
                f"shard worker {self.shard_id} died mid-command "
                f"({type(error).__name__}); restore it from its latest "
                "checkpoint"
            ) from error
        if status == "error":
            raise ShardError(
                f"shard worker {self.shard_id} failed: {result}"
            )
        return result

    def call(self, command: str, *args: Any) -> Any:
        self.send(command, *args)
        return self.recv()

    def kill(self) -> None:
        """Hard-kill the child (fault injection); the object stays dead."""
        self._process.kill()
        self._process.join()
        self._conn.close()

    def close(self) -> None:
        """Graceful shutdown: stop the loop, reap the process."""
        if self.alive:
            try:
                self.call("stop")
            except ShardError:
                pass
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - defensive reap
            self._process.kill()
            self._process.join()
        self._conn.close()


__all__ = [
    "InlineShardWorker",
    "ProcessShardWorker",
    "WorkerCheckpoint",
    "freeze_metrics",
    "thaw_metrics",
]
