"""The sharded serving tier: partition → route → two-phase commit.

A single :class:`~repro.serve.EmbedderService` is bounded by one core:
every offer runs the embedding algorithm over the whole substrate in
the serving process. This package scales the service *out* instead of
up, in three layers:

* :mod:`repro.shard.partition` cuts the substrate into K connected
  region shards via a registered, seeded, deterministic policy
  (``shard_policy_registry``: ``kbalanced``, ``tier-aware``), classifies
  every link as intra-shard or boundary, and materializes one
  sub-substrate per shard plus a capacity ledger over the boundary
  links;
* :mod:`repro.shard.worker` runs one
  :class:`~repro.sim.session.SimulationSession` per shard — inline for
  deterministic tests, or in a child process for real parallelism —
  booted from and checkpointed to the pickle-certified
  :class:`~repro.sim.session.SessionSnapshot` boundary, so a killed
  worker restores on a spare bit-identically;
* :mod:`repro.shard.frontend` exposes
  :class:`~repro.shard.frontend.ShardedEmbedderService`, mirroring the
  ``offer``/``offer_many``/``tick``/``finish`` surface of the unsharded
  service, routing each request to its ingress shard and resolving
  home-shard rejections through a two-phase reserve→commit/abort
  protocol on the boundary ledger.

At ``num_shards=1`` the sharded service is bit-identical to the
unsharded :class:`~repro.serve.EmbedderService` — the serve test tier
and ``benchmarks/test_bench_shard.py`` pin this.
"""

from repro.registry import register_shard_policy, shard_policy_registry
from repro.shard.frontend import ShardedEmbedderService, ShardedRunResult
from repro.shard.partition import (
    BoundaryLedger,
    ShardRegion,
    SubstratePartition,
    partition_substrate,
    restrict_plan,
)
from repro.shard.worker import (
    InlineShardWorker,
    ProcessShardWorker,
    WorkerCheckpoint,
)

__all__ = [
    "BoundaryLedger",
    "InlineShardWorker",
    "ProcessShardWorker",
    "ShardRegion",
    "ShardedEmbedderService",
    "ShardedRunResult",
    "SubstratePartition",
    "WorkerCheckpoint",
    "partition_substrate",
    "register_shard_policy",
    "restrict_plan",
    "shard_policy_registry",
]
