"""repro — reproduction of "Plan-Based Scalable Online Virtual Network
Embedding" (OLIVE, ICDCS 2025).

Public API quick-map:

* the fluent experiment facade — :mod:`repro.api` (start here);
* pluggable component registries — :mod:`repro.registry`
  (``@register_algorithm``, ``@register_topology``, ...);
* substrate networks — :mod:`repro.substrate` (four evaluation topologies);
* applications / virtual networks — :mod:`repro.apps`;
* workload traces — :mod:`repro.workload`;
* demand aggregation — :mod:`repro.stats`;
* the PLAN-VNE LP and embedding plans — :mod:`repro.plan`;
* the OLIVE online algorithm — :mod:`repro.core`;
* baselines (QUICKG, FULLG, SLOTOFF) — :mod:`repro.baselines`;
* dynamic chaos scenarios (failures, drains, flash crowds) —
  :mod:`repro.scenarios`;
* the simulator, streaming sessions, and metrics — :mod:`repro.sim`;
* the live embedding-service layer (admission policies, rolling
  metrics) — :mod:`repro.serve`;
* paper-figure experiment drivers — :mod:`repro.experiments`.

Minimal end-to-end example::

    from repro import Experiment, ExperimentConfig

    result = (
        Experiment(ExperimentConfig.test())
        .algorithms("OLIVE", "QUICKG")
        .sweep("utilization", (0.6, 1.0, 1.4))
        .run(jobs=4)
    )
    print(result.table("rejection_rate"))

The lower-level building blocks stay public — ``build_scenario`` /
``make_algorithm`` / ``simulate`` assemble and run one repetition by
hand when the facade is too coarse.
"""

# isort: skip_file
#
# The imports below are in *dependency* order, not alphabetical order,
# and must stay that way: this __init__ runs before any `repro.*`
# submodule import, so it is what resolves the plan <-> core cycle
# (plan.replanning -> core.olive -> core.embedding -> plan.pattern).
# Importing `repro.plan` before `repro.core` guarantees `plan.pattern`
# is fully initialized by the time `core.embedding` needs it;
# alphabetizing (api first) enters the cycle from the wrong side and
# raises ImportError at interpreter start.

from repro.errors import (
    ApplicationError,
    InfeasibleError,
    LPError,
    PlanError,
    RegistryError,
    ReproError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.substrate import (
    SubstrateNetwork,
    Tier,
    make_100n150e,
    make_5gen,
    make_citta_studi,
    make_iris,
    make_topology,
    split_gpu_datacenters,
)
from repro.apps import (
    Application,
    VNF,
    VNFKind,
    VirtualLink,
    draw_standard_mix,
    make_accelerator,
    make_chain,
    make_gpu_chain,
    make_tree,
)
from repro.workload import (
    Request,
    Trace,
    TraceConfig,
    demand_mean_for_utilization,
    generate_caida_like_trace,
    generate_mmpp_trace,
)
from repro.stats import (
    AggregateRequest,
    bootstrap_percentile,
    build_aggregate_demand,
    class_demand_series,
)
from repro.plan import (
    ClassPlan,
    EmbeddingPattern,
    Plan,
    PlanVNEConfig,
    compute_plan,
    empty_plan,
)
from repro.core import Decision, Embedding, OliveAlgorithm, greedy_embed
from repro.baselines import FullGAlgorithm, SlotOffAlgorithm, make_quickg
from repro.sim import (
    SessionSnapshot,
    SimulationResult,
    SimulationSession,
    SlotReport,
    SlotSimulator,
    balance_index,
    confidence_interval,
    cost_breakdown,
    demand_series,
    rejection_rate,
    simulate,
)
from repro.serve import EmbedderService, MetricsStream, ServiceMetrics
from repro.shard import (
    ShardedEmbedderService,
    SubstratePartition,
    partition_substrate,
)
from repro.experiments import (
    ExperimentConfig,
    algorithms_need_plan,
    build_scenario,
    make_algorithm,
)
from repro.api import Experiment, SweepPoint, SweepResult
from repro.registry import (
    Registry,
    RegistryEntry,
    admission_policy_registry,
    algorithm_registry,
    app_mix_registry,
    efficiency_registry,
    event_profile_registry,
    register_admission_policy,
    register_algorithm,
    register_app_mix,
    register_efficiency,
    register_event_profile,
    register_topology,
    register_trace,
    topology_registry,
    trace_registry,
)
from repro.scenarios import EventSchedule

__version__ = "1.3.0"

__all__ = [
    # errors
    "ReproError",
    "LPError",
    "InfeasibleError",
    "TopologyError",
    "ApplicationError",
    "WorkloadError",
    "PlanError",
    "RegistryError",
    "SimulationError",
    # substrate
    "SubstrateNetwork",
    "Tier",
    "make_iris",
    "make_citta_studi",
    "make_5gen",
    "make_100n150e",
    "make_topology",
    "split_gpu_datacenters",
    # apps
    "Application",
    "VNF",
    "VNFKind",
    "VirtualLink",
    "make_chain",
    "make_tree",
    "make_accelerator",
    "make_gpu_chain",
    "draw_standard_mix",
    # workload
    "Request",
    "Trace",
    "TraceConfig",
    "generate_mmpp_trace",
    "generate_caida_like_trace",
    "demand_mean_for_utilization",
    # stats
    "AggregateRequest",
    "class_demand_series",
    "build_aggregate_demand",
    "bootstrap_percentile",
    # plan
    "Plan",
    "ClassPlan",
    "EmbeddingPattern",
    "PlanVNEConfig",
    "compute_plan",
    "empty_plan",
    # core
    "OliveAlgorithm",
    "Decision",
    "Embedding",
    "greedy_embed",
    # baselines
    "make_quickg",
    "FullGAlgorithm",
    "SlotOffAlgorithm",
    # sim
    "simulate",
    "SlotSimulator",
    "SimulationResult",
    "SimulationSession",
    "SessionSnapshot",
    "SlotReport",
    # serve
    "EmbedderService",
    "MetricsStream",
    "ServiceMetrics",
    # shard
    "ShardedEmbedderService",
    "SubstratePartition",
    "partition_substrate",
    "rejection_rate",
    "cost_breakdown",
    "balance_index",
    "demand_series",
    "confidence_interval",
    # experiments
    "ExperimentConfig",
    "algorithms_need_plan",
    "build_scenario",
    "make_algorithm",
    # facade
    "Experiment",
    "SweepPoint",
    "SweepResult",
    # dynamic events
    "EventSchedule",
    # registries
    "Registry",
    "RegistryEntry",
    "algorithm_registry",
    "topology_registry",
    "trace_registry",
    "app_mix_registry",
    "efficiency_registry",
    "event_profile_registry",
    "admission_policy_registry",
    "register_algorithm",
    "register_topology",
    "register_trace",
    "register_app_mix",
    "register_efficiency",
    "register_event_profile",
    "register_admission_policy",
]
