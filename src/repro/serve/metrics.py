"""Rolling service metrics — what an operator watches, streamed.

:class:`MetricsStream` accumulates per-offer and per-slot observations
with bounded memory (latency percentiles and rolling rates come from a
fixed-size window) and publishes immutable :class:`ServiceMetrics`
snapshots: pull the latest with :attr:`MetricsStream.latest`, or
subscribe a callback to receive one after every closed slot — that is
the "stream" in the name; the service emits, subscribers render.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.sim.session import SlotReport


@dataclass(frozen=True)
class ServiceMetrics:
    """One immutable snapshot of the service's health."""

    #: Slot the snapshot was taken at (the service clock).
    slot: int
    #: Cumulative offers seen (admitted or shed).
    offers: int
    #: Cumulative offers the algorithm accepted.
    accepted: int
    #: Cumulative offers the algorithm rejected.
    rejected: int
    #: Cumulative offers shed by admission policy / backpressure
    #: (never reached the algorithm).
    shed: int
    #: Scheduled arrivals not yet handed to the algorithm.
    pending: int
    #: Mean substrate node utilization in [0, 1].
    utilization: float
    #: Cumulative accepted / offered (1.0 before any offer).
    acceptance_rate: float
    #: Acceptance rate over the rolling window only.
    rolling_acceptance_rate: float
    #: Decision latency percentiles over the rolling window, in
    #: milliseconds (0.0 before any timed offer).
    p50_latency_ms: float
    p99_latency_ms: float
    #: Cumulative requests dropped by dynamic events (disruptions).
    disrupted: int

    def describe(self) -> str:
        """One operator-readable status line."""
        return (
            f"slot {self.slot}: {self.offers} offers, "
            f"{self.acceptance_rate:.1%} accepted "
            f"(rolling {self.rolling_acceptance_rate:.1%}), "
            f"{self.shed} shed, util {self.utilization:.1%}, "
            f"latency p50 {self.p50_latency_ms:.3f}ms "
            f"p99 {self.p99_latency_ms:.3f}ms"
        )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty).

    True nearest-rank definition: the smallest value with at least
    ``fraction`` of the sample at or below it — rank
    ``ceil(fraction * n) - 1`` (0-based), clamped to the ends. Matches
    ``numpy.percentile(..., method="inverted_cdf")`` exactly.
    """
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    rank = min(n - 1, max(0, math.ceil(fraction * n) - 1))
    return sorted_values[rank]


class MetricsStream:
    """Bounded-memory rolling metrics with push-based snapshots.

    ``window`` caps how many recent offers feed the rolling acceptance
    rate and the latency percentiles; cumulative counters are exact
    regardless. Subscribers registered with :meth:`subscribe` receive a
    :class:`ServiceMetrics` after every slot the owning service closes.
    """

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ValueError(f"metrics window must be >= 1 (got {window})")
        self.window = window
        self._latencies: deque[float] = deque(maxlen=window)
        self._outcomes: deque[bool] = deque(maxlen=window)
        self.offers = 0
        self.accepted = 0
        self.rejected = 0
        self.shed = 0
        self.disrupted = 0
        self.slots = 0
        self._subscribers: list[Callable[[ServiceMetrics], None]] = []
        self._latest: ServiceMetrics | None = None

    # -- recording -----------------------------------------------------------

    def record_offer(self, accepted: bool, latency_seconds: float) -> None:
        """One offer that reached the algorithm."""
        self.offers += 1
        if accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        self._outcomes.append(accepted)
        self._latencies.append(latency_seconds)

    def record_offers(
        self, accepted_flags: list[bool], latency_seconds: float
    ) -> None:
        """A run of offers sharing one amortized per-offer latency.

        Equivalent to calling :meth:`record_offer` once per flag with
        the same latency — the bulk entry point
        (:meth:`~repro.serve.service.EmbedderService.offer_many`) uses
        it so per-offer accounting stays off the batched hot path.
        """
        n = len(accepted_flags)
        accepted = sum(accepted_flags)
        self.offers += n
        self.accepted += accepted
        self.rejected += n - accepted
        self._outcomes.extend(accepted_flags)
        self._latencies.extend([latency_seconds] * n)

    def record_shed(self) -> None:
        """One offer shed by admission policy or backpressure.

        Shed offers count toward the offer totals (an operator sees the
        full arrival pressure) but not toward the rolling acceptance
        window or the latency percentiles — they carry no algorithm
        decision.
        """
        self.offers += 1
        self.shed += 1

    def record_slot(self, report: SlotReport) -> None:
        """Fold one closed slot's report into the counters."""
        self.slots += 1
        self.disrupted += len(report.disrupted)

    # -- publishing ----------------------------------------------------------

    def subscribe(self, callback: Callable[[ServiceMetrics], None]) -> None:
        """Receive a snapshot after every slot the service closes."""
        self._subscribers.append(callback)

    @property
    def latest(self) -> ServiceMetrics | None:
        """The most recently emitted snapshot (None before the first)."""
        return self._latest

    def snapshot(
        self, slot: int, utilization: float, pending: int
    ) -> ServiceMetrics:
        """Assemble a point-in-time snapshot (does not notify anyone)."""
        latencies = sorted(self._latencies)
        outcomes = self._outcomes
        rolling = (
            sum(outcomes) / len(outcomes) if outcomes
            else 1.0
        )
        return ServiceMetrics(
            slot=slot,
            offers=self.offers,
            accepted=self.accepted,
            rejected=self.rejected,
            shed=self.shed,
            pending=pending,
            utilization=utilization,
            acceptance_rate=(
                self.accepted / self.offers if self.offers else 1.0
            ),
            rolling_acceptance_rate=rolling,
            p50_latency_ms=_percentile(latencies, 0.50) * 1e3,
            p99_latency_ms=_percentile(latencies, 0.99) * 1e3,
            disrupted=self.disrupted,
        )

    def emit(
        self, slot: int, utilization: float, pending: int
    ) -> ServiceMetrics:
        """Snapshot, remember as :attr:`latest`, and notify subscribers."""
        metrics = self.snapshot(slot, utilization, pending)
        self._latest = metrics
        for callback in self._subscribers:
            callback(metrics)
        return metrics
