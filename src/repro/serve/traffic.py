"""Synthetic live-traffic generators for driving an EmbedderService.

The offline trace machinery (:mod:`repro.workload.trace`) materializes
a whole horizon upfront — the right shape for batch experiments, the
wrong one for a service demo. :func:`poisson_offers` instead yields one
slot's worth of arrivals at a time, so a driver loop can ``offer()``
them as they "happen"::

    for slot, batch in poisson_offers(scenario, slots=200, rng=rng):
        for request in batch:
            service.offer(request)

The draws mirror the paper's workload shape (Poisson arrivals per node,
N(μ, σ) demand clamped to a positive floor, geometric-ish durations)
but deliberately stay independent of the trace generators — live
traffic is *new* load, not a replay.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.workload.request import Request

#: Id offset for generated live traffic, far above any trace id.
LIVE_ID_BASE = 10_000_000


def poisson_offers(
    scenario: Any,
    slots: int,
    rng: np.random.Generator,
    rate_per_node: float | None = None,
    start_slot: int = 0,
    id_base: int = LIVE_ID_BASE,
) -> Iterator[tuple[int, list[Request]]]:
    """Yield ``(slot, requests)`` batches of synthetic live arrivals.

    ``rate_per_node`` defaults to the scenario config's
    ``arrivals_per_node`` divided by the number of applications — the
    same mean pressure the offline trace would apply. Ids are disjoint
    from any trace (``id_base`` upward), so generated traffic can ride
    on top of a preloaded stream.
    """
    config = scenario.config
    nodes = sorted(scenario.substrate.nodes)
    num_apps = len(scenario.apps)
    if not nodes or num_apps == 0:
        raise SimulationError("scenario has no substrate nodes or no apps")
    if rate_per_node is None:
        rate_per_node = config.arrivals_per_node / max(1, num_apps)
    rate = rate_per_node * len(nodes)
    if rate <= 0:
        raise SimulationError(f"offer rate must be positive (got {rate})")
    # Match the scenario's demand scale (the utilization-targeted mean)
    # so live traffic stresses the substrate like the offline trace did.
    trace_config = getattr(scenario.trace, "config", None)
    demand_mean = getattr(trace_config, "demand_mean", 10.0)
    demand_std = getattr(trace_config, "demand_std", 4.0)
    next_id = id_base
    for slot in range(start_slot, start_slot + slots):
        count = int(rng.poisson(rate))
        batch: list[Request] = []
        for _ in range(count):
            demand = max(0.1, float(rng.normal(demand_mean, demand_std)))
            duration = max(1, int(rng.geometric(1.0 / config.duration_mean)))
            batch.append(
                Request.trusted(
                    arrival=slot,
                    id=next_id,
                    app_index=int(rng.integers(num_apps)),
                    ingress=nodes[int(rng.integers(len(nodes)))],
                    demand=demand,
                    duration=duration,
                )
            )
            next_id += 1
        yield slot, batch
