"""The embedding service: a long-running session behind an admission API.

:class:`EmbedderService` wraps one
:class:`~repro.sim.session.SimulationSession` and turns it into the
ROADMAP's long-running embedder serving live traffic:

* ``offer(request) → Decision`` — the synchronous admission API. The
  service advances the session to the request's arrival slot, consults
  its admission policy (shedding costs the algorithm nothing), and
  hands admitted offers to the algorithm mid-slot. Same-slot offers are
  **micro-batched**: they share one open slot — departures, capacity
  events and per-slot accounting are paid once per slot, not once per
  offer. ``offer_many`` takes an explicit list and additionally routes
  each slot's run through the algorithm's vectorized batch kernel,
  bit-identical to sequential offers (``offer_batch`` is an alias).
* ``schedule(request) → bool`` — enqueue a future arrival, subject to
  the ``max_pending`` queue bound (backpressure: a full queue sheds
  instead of growing without limit).
* ``tick()`` / ``advance_to(t)`` — progress simulated time when no
  traffic forces it (idle slots still release departures and apply
  events).
* ``metrics`` — a :class:`~repro.serve.metrics.MetricsStream` fed on
  every offer and every closed slot; subscribe to watch acceptance
  rate, utilization and decision-latency percentiles live.

The service requires a per-request algorithm (OLIVE, QUICKG, FULLG, or
anything registered with ``process()``); batch algorithms (SLOTOFF)
solve whole slots at once and cannot answer an offer synchronously.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

from repro.core.olive import Decision
from repro.errors import SimulationError
from repro.registry import admission_policy_registry
from repro.serve.admission import AdmissionPolicy
from repro.serve.metrics import MetricsStream, ServiceMetrics
from repro.sim.engine import SimulationResult
from repro.sim.session import SessionSnapshot, SimulationSession, SlotReport
from repro.workload.request import Request


class EmbedderService:
    """One embedding algorithm served behind admission control.

    ``admission`` is a registered policy name (resolved through
    :data:`repro.registry.admission_policy_registry` with
    ``admission_params`` as factory kwargs) or an
    :class:`~repro.serve.admission.AdmissionPolicy` instance.
    ``max_pending`` bounds the scheduled-arrival queue consumed by
    :meth:`schedule` (None = unbounded).
    """

    def __init__(
        self,
        session: SimulationSession,
        admission: "str | AdmissionPolicy" = "always",
        admission_params: dict | None = None,
        max_pending: int | None = None,
        metrics_window: int = 512,
        scenario: Any = None,
    ) -> None:
        if not isinstance(session, SimulationSession):
            raise SimulationError(
                "EmbedderService wraps a SimulationSession "
                f"(got {type(session).__name__}); build one with "
                "Experiment.serve() or SimulationSession(...)"
            )
        if not session.supports_streaming:
            raise SimulationError(
                f"algorithm {session.algorithm.name!r} solves whole slots "
                "at once (batch shape) and cannot answer offers "
                "synchronously; serve a per-request algorithm instead"
            )
        if isinstance(admission, str):
            admission = admission_policy_registry.create(
                admission, **(admission_params or {})
            )
        elif admission_params:
            raise SimulationError(
                "admission_params only apply when admission is a "
                "registered policy name; configure the policy instance "
                "directly instead"
            )
        if not isinstance(admission, AdmissionPolicy):
            raise SimulationError(
                "admission must be a registered policy name or an "
                f"AdmissionPolicy (got {type(admission).__name__})"
            )
        if max_pending is not None and max_pending < 1:
            raise SimulationError(
                f"max_pending must be >= 1 or None (got {max_pending})"
            )
        self.session = session
        self.admission = admission
        self.max_pending = max_pending
        self.metrics = MetricsStream(window=metrics_window)
        #: The scenario the session was built from, when known
        #: (``Experiment.serve`` sets it) — handy context for traffic
        #: generators (substrate nodes, applications); never read by the
        #: service itself.
        self.scenario = scenario
        #: Recent shed offers as ``(request id, slot, reason)`` — a small
        #: debugging window, not an unbounded log.
        self.recent_shed: deque[tuple[int, int, str]] = deque(maxlen=64)

    # -- introspection -------------------------------------------------------

    @property
    def algorithm(self) -> Any:
        return self.session.algorithm

    @property
    def current_slot(self) -> int:
        """The slot the service is currently in (the session clock)."""
        return self.session.clock

    @property
    def horizon(self) -> int:
        return self.session.num_slots

    @property
    def is_done(self) -> bool:
        return self.session.is_done

    @property
    def pending_count(self) -> int:
        """Scheduled arrivals not yet handed to the algorithm."""
        return self.session.pending_arrivals

    def utilization(self) -> float:
        """Mean substrate node utilization in [0, 1].

        Derived from the algorithm's residual state (effective capacity
        minus active allocations); 0.0 for algorithms without one.
        """
        residual = getattr(self.session.algorithm, "residual", None)
        if residual is None:
            return 0.0
        total = sum(residual.node_capacity)
        if total <= 0:
            return 0.0
        return max(0.0, 1.0 - sum(residual.node_residual) / total)

    # -- the admission API ---------------------------------------------------

    def offer(self, request: Request) -> Decision:
        """Offer one arrival; return the decision synchronously.

        The request's arrival slot must not lie in the past; offering
        for a future slot first drains the slots in between (their
        departures and events happen on the way). Offers shed by the
        admission policy return ``Decision(accepted=False)`` without the
        algorithm ever seeing them — they are visible in
        :attr:`metrics` (``shed``) and :attr:`recent_shed`, not in the
        session's decision log.
        """
        self._ensure_slot(request)
        # Latency is measured from here: slot drains on the way to a
        # future arrival (departures, events, preloaded-trace work) are
        # simulated-time progress, not part of this offer's decision.
        start = time.perf_counter()  # repro-lint: allow[RPR003] decision-latency telemetry (MetricsStream p50/p99); never reaches results or goldens
        if self._decide(request) is not None:
            return Decision(request=request, accepted=False)
        decision = self.session.process(request)
        self.metrics.record_offer(
            decision.accepted,
            time.perf_counter() - start,  # repro-lint: allow[RPR003] decision-latency telemetry (MetricsStream p50/p99); never reaches results or goldens
        )
        return decision

    def offer_many(self, requests: list[Request]) -> list[Decision]:
        """Offer a run of arrivals, coalesced per slot — the batched API.

        **Decision-equivalent to calling** :meth:`offer` **per request in
        order** (the serve test tier asserts bit-identity): arrivals must
        be non-decreasing, each slot's run shares one open slot, the
        admission policy is consulted per request at exactly the point
        its sequential offer would have been, and admitted requests
        commit in order through
        :meth:`~repro.sim.session.SimulationSession.process_many` — the
        session-level bulk path that hands the run to the algorithm's
        vectorized batch kernel. What changes is only the per-offer
        overhead: slot bookkeeping, timing and metrics are paid once per
        run, and each admitted offer records the run's amortized
        per-offer latency instead of an individually timed one.
        """
        decisions: list[Decision] = []
        # The stateless admit-everything base policy can never shed, so
        # the per-request admission callback (and its call overhead in
        # the session loop) is skipped entirely — any subclass, stateful
        # or not, keeps the exact sequential consultation order.
        decide = (
            None if type(self.admission) is AdmissionPolicy else self._decide
        )
        total = len(requests)
        i = 0
        while i < total:
            j = i + 1
            arrival = requests[i].arrival
            while j < total and requests[j].arrival == arrival:
                j += 1
            run = requests[i:j]
            self._ensure_slot(run[0])
            start = time.perf_counter()  # repro-lint: allow[RPR003] decision-latency telemetry (MetricsStream p50/p99); never reaches results or goldens
            outcomes = self.session.process_many(run, decide=decide)
            latency = (
                time.perf_counter() - start  # repro-lint: allow[RPR003] decision-latency telemetry (MetricsStream p50/p99); never reaches results or goldens
            ) / len(run)
            settled = [o for o in outcomes if o is not None]
            if len(settled) == len(outcomes):
                self.metrics.record_offers(
                    [outcome.accepted for outcome in settled], latency
                )
                decisions.extend(settled)
            else:
                for request, outcome in zip(run, outcomes):
                    if outcome is None:
                        # Shed by admission; _decide already recorded it.
                        decisions.append(
                            Decision(request=request, accepted=False)
                        )
                    else:
                        self.metrics.record_offer(outcome.accepted, latency)
                        decisions.append(outcome)
            i = j
        return decisions

    def offer_batch(self, requests: list[Request]) -> list[Decision]:
        """Compatibility alias for :meth:`offer_many`."""
        return self.offer_many(requests)

    def schedule(self, request: Request) -> bool:
        """Enqueue a future arrival; False when backpressure sheds it.

        The queue is the session's pending-arrival set; ``max_pending``
        bounds it. A shed schedule costs the algorithm nothing and is
        counted in :attr:`metrics` like a shed offer.
        """
        if self.max_pending is not None and (
            self.pending_count >= self.max_pending
        ):
            self.recent_shed.append(
                (request.id, request.arrival,
                 f"backpressure ({self.max_pending} pending)")
            )
            self.metrics.record_shed()
            return False
        self.session.submit(request)
        return True

    # -- time ----------------------------------------------------------------

    def tick(self) -> SlotReport:
        """Advance one slot: close the open slot, or run the next one."""
        if not self.session.slot_open:
            self.session.begin_slot()
        return self._close_slot()

    def advance_to(self, slot: int) -> list[SlotReport]:
        """Drain every slot before ``slot``; returns their reports."""
        if slot > self.horizon:
            raise SimulationError(
                f"advance_to({slot}) exceeds the {self.horizon}-slot horizon"
            )
        reports: list[SlotReport] = []
        if self.session.slot_open and self.session.clock < slot:
            reports.append(self._close_slot())
        while self.session.clock < slot:
            self.session.begin_slot()
            reports.append(self._close_slot())
        return reports

    def finish(self) -> SimulationResult:
        """Drain the full horizon and return the final result."""
        self.advance_to(self.horizon)
        return self.session.result()

    def result(self) -> SimulationResult:
        """The accumulated result so far (see ``SimulationSession.result``)."""
        return self.session.result()

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> SessionSnapshot:
        """Checkpoint the underlying session (slot boundaries only).

        The rolling metrics stream is operational state, not simulation
        state — it is *not* part of the checkpoint; a service resumed
        from the snapshot starts a fresh stream.
        """
        return self.session.snapshot()

    @classmethod
    def restore(
        cls, snapshot: SessionSnapshot, **service_kwargs: Any
    ) -> "EmbedderService":
        """A new service over a session resumed from ``snapshot``."""
        return cls(SimulationSession.restore(snapshot), **service_kwargs)

    # -- internals -----------------------------------------------------------

    def _decide(self, request: Request) -> str | None:
        """Consult admission for one offer; record and return a shed reason.

        ``None`` means admitted. Shared by :meth:`offer` and (as the
        per-request callback threaded into ``session.process_many``) by
        :meth:`offer_many`, so stateful policies observe the exact same
        call sequence on both paths.
        """
        reason = self.admission.decide(request, self)
        if reason is not None:
            self.recent_shed.append((request.id, request.arrival, reason))
            self.metrics.record_shed()
        return reason

    def _ensure_slot(self, request: Request) -> None:
        """Advance to the request's arrival slot and open it."""
        session = self.session
        if session.is_done:
            raise SimulationError(
                f"the service's {self.horizon}-slot horizon has ended"
            )
        if request.arrival >= self.horizon:
            raise SimulationError(
                f"request {request.id} arrives at {request.arrival}, "
                f"beyond the {self.horizon}-slot horizon"
            )
        if request.arrival < session.clock:
            raise SimulationError(
                f"request {request.id} arrives at {request.arrival}, but "
                f"the service is already at slot {session.clock}"
            )
        if request.arrival > session.clock:
            self.advance_to(request.arrival)
        if not session.slot_open:
            session.begin_slot()

    def _close_slot(self) -> SlotReport:
        report = self.session.close_slot()
        self.metrics.record_slot(report)
        self.metrics.emit(
            self.session.clock, self.utilization(), self.pending_count
        )
        return report

    def __repr__(self) -> str:
        return (
            f"EmbedderService({self.session.algorithm.name!r}, "
            f"slot {self.current_slot}/{self.horizon}, "
            f"admission={self.admission!r}, "
            f"{self.pending_count} pending)"
        )


__all__ = ["EmbedderService", "MetricsStream", "ServiceMetrics"]
