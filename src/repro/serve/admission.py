"""Admission policies: who gets to talk to the embedder at all.

An :class:`~repro.serve.service.EmbedderService` consults its admission
policy *before* the embedding algorithm sees an offer — the policy is
the service's first line of defense (backpressure, overload shedding,
rate limiting), distinct from the algorithm's own accept/reject
decision. Policies are registered in
:data:`repro.registry.admission_policy_registry`, so third-party code
plugs in new ones the same way it registers algorithms::

    from repro.registry import register_admission_policy
    from repro.serve.admission import AdmissionPolicy

    @register_admission_policy("ingress-blocklist",
                               description="shed traffic from hot PoPs")
    def _make_blocklist(nodes=()):
        return Blocklist(frozenset(nodes))

A policy is a small object with one method::

    decide(request, service) -> str | None

returning ``None`` to admit or a short human-readable reason to shed
(the reason feeds the service's metrics). Policies may keep state (the
token bucket does) and may read the service — current slot, queue
depth, utilization — but must not mutate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.registry import register_admission_policy
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.service import EmbedderService


class AdmissionPolicy:
    """Base class: admit everything; subclasses override :meth:`decide`."""

    #: Registry name (informational; set by the service when resolving).
    name = "always"

    def decide(
        self, request: Request, service: EmbedderService
    ) -> str | None:
        """``None`` to admit ``request``, else a shed reason."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class QueueBound(AdmissionPolicy):
    """Shed offers while the pending-arrival queue is at capacity.

    The classic bounded-queue backpressure: scheduled-but-unprocessed
    arrivals (``service.pending_count``) form the queue; once it holds
    ``max_pending`` requests, new offers are shed instead of queued.
    """

    name = "queue-bound"

    def __init__(self, max_pending: int = 64) -> None:
        if max_pending < 1:
            raise SimulationError(
                f"queue-bound needs max_pending >= 1 (got {max_pending})"
            )
        self.max_pending = max_pending

    def decide(
        self, request: Request, service: EmbedderService
    ) -> str | None:
        if service.pending_count >= self.max_pending:
            return f"queue full ({self.max_pending} pending)"
        return None

    def __repr__(self) -> str:
        return f"QueueBound(max_pending={self.max_pending})"


class UtilizationGuard(AdmissionPolicy):
    """Shed offers while substrate node utilization is above a threshold.

    Protects tail latency and leaves headroom for planned traffic: when
    mean node utilization reaches ``threshold``, further offers are shed
    before the algorithm spends any work on them.
    """

    name = "utilization-guard"

    def __init__(self, threshold: float = 0.95) -> None:
        if not 0.0 < threshold <= 1.0:
            raise SimulationError(
                f"utilization-guard needs 0 < threshold <= 1 "
                f"(got {threshold})"
            )
        self.threshold = threshold

    def decide(
        self, request: Request, service: EmbedderService
    ) -> str | None:
        utilization = service.utilization()
        if utilization >= self.threshold:
            return f"utilization {utilization:.2f} >= {self.threshold:.2f}"
        return None

    def __repr__(self) -> str:
        return f"UtilizationGuard(threshold={self.threshold})"


class TokenBucket(AdmissionPolicy):
    """Deterministic per-slot rate limiter with a burst allowance.

    ``rate`` tokens are added at the start of every slot (capped at
    ``burst``); each admitted offer consumes one. Entirely deterministic
    in slot time, so rate-limited runs stay reproducible.
    """

    name = "token-bucket"

    def __init__(self, rate: float = 8.0, burst: float | None = None) -> None:
        if rate <= 0:
            raise SimulationError(
                f"token-bucket needs a positive rate (got {rate})"
            )
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else 2.0 * self.rate
        if self.burst < 1.0:
            raise SimulationError(
                f"token-bucket needs burst >= 1 (got {self.burst})"
            )
        self._tokens = self.burst
        self._last_slot: int | None = None

    def decide(
        self, request: Request, service: EmbedderService
    ) -> str | None:
        slot = service.current_slot
        if self._last_slot is None:
            self._last_slot = slot
        elif slot > self._last_slot:
            self._tokens = min(
                self.burst, self._tokens + self.rate * (slot - self._last_slot)
            )
            self._last_slot = slot
        if self._tokens < 1.0:
            return f"rate limited ({self.rate:g}/slot)"
        self._tokens -= 1.0
        return None

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate:g}, burst={self.burst:g})"


@register_admission_policy(
    "always", description="admit every offer (no shedding)"
)
def _make_always() -> AdmissionPolicy:
    return AdmissionPolicy()


@register_admission_policy(
    "queue-bound",
    description="bounded pending queue: shed offers when it is full",
)
def _make_queue_bound(max_pending: int = 64) -> QueueBound:
    return QueueBound(max_pending=max_pending)


@register_admission_policy(
    "utilization-guard",
    description="shed offers above a node-utilization threshold",
)
def _make_utilization_guard(threshold: float = 0.95) -> UtilizationGuard:
    return UtilizationGuard(threshold=threshold)


@register_admission_policy(
    "token-bucket",
    description="deterministic per-slot rate limiter with burst",
)
def _make_token_bucket(
    rate: float = 8.0, burst: float | None = None
) -> TokenBucket:
    return TokenBucket(rate=rate, burst=burst)
