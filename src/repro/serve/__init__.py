"""The serving layer: a long-running embedder behind an admission API.

Built on the streaming :class:`~repro.sim.session.SimulationSession`,
:class:`EmbedderService` models the ROADMAP north-star of an embedder
serving live traffic: synchronous ``offer() → Decision`` admission with
registry-pluggable policies (:mod:`repro.serve.admission`), bounded
queues with backpressure, micro-batched same-slot offers, and rolling
operational metrics (:mod:`repro.serve.metrics`).

Quick start::

    from repro.api import Experiment
    from repro.experiments.config import ExperimentConfig

    service = (
        Experiment(ExperimentConfig.test())
        .algorithms("OLIVE")
        .serve(seed=0, admission="queue-bound",
               admission_params={"max_pending": 32})
    )
    decision = service.offer(request)      # synchronous admission
    print(service.metrics.latest)          # rolling operational metrics
    result = service.finish()              # the usual SimulationResult
"""

from repro.registry import (
    admission_policy_registry,
    register_admission_policy,
)
from repro.serve.admission import (
    AdmissionPolicy,
    QueueBound,
    TokenBucket,
    UtilizationGuard,
)
from repro.serve.metrics import MetricsStream, ServiceMetrics
from repro.serve.service import EmbedderService
from repro.serve.traffic import poisson_offers

__all__ = [
    "AdmissionPolicy",
    "EmbedderService",
    "MetricsStream",
    "QueueBound",
    "ServiceMetrics",
    "TokenBucket",
    "UtilizationGuard",
    "admission_policy_registry",
    "poisson_offers",
    "register_admission_policy",
]
