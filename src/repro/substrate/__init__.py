"""Physical substrate networks: tiered datacenters and links.

Models the substrate exactly as Sec. II-A of the paper: a graph whose nodes
are datacenters and whose links are inter-datacenter connections, each with
a capacity ``cap(s)`` and per-capacity-unit usage cost ``cost(s)``. Nodes
belong to one of three tiers (edge / transport / core) following the mobile
access network architecture used in the evaluation.
"""

from repro.substrate.analysis import (
    TopologyReport,
    analyze_topology,
    bottleneck_links,
    edge_uplink_capacity,
    tier_summaries,
)
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork
from repro.substrate.tiers import (
    TIER_LINK_CAPACITY,
    TIER_LINK_COST,
    TIER_MEAN_NODE_COST,
    TIER_NODE_CAPACITY,
    Tier,
)
from repro.substrate.topologies import (
    TOPOLOGY_BUILDERS,
    make_100n150e,
    make_5gen,
    make_citta_studi,
    make_iris,
    make_tiered_topology,
    make_topology,
    split_gpu_datacenters,
)

__all__ = [
    "Tier",
    "TIER_NODE_CAPACITY",
    "TIER_MEAN_NODE_COST",
    "TIER_LINK_CAPACITY",
    "TIER_LINK_COST",
    "NodeAttrs",
    "LinkAttrs",
    "SubstrateNetwork",
    "make_iris",
    "make_citta_studi",
    "make_5gen",
    "make_100n150e",
    "make_tiered_topology",
    "make_topology",
    "split_gpu_datacenters",
    "TOPOLOGY_BUILDERS",
    "analyze_topology",
    "TopologyReport",
    "tier_summaries",
    "edge_uplink_capacity",
    "bottleneck_links",
]
