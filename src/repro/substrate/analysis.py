"""Topology analysis utilities.

Capacity, connectivity, and bottleneck views of a substrate — what an
operator inspects before trusting a plan: how much aggregate capacity each
tier contributes, how much uplink bandwidth each edge site has, which links
are structural bottlenecks (high betweenness on min-cost paths), and the
substrate's path diversity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.substrate.network import LinkId, NodeId, SubstrateNetwork
from repro.substrate.tiers import Tier


@dataclass
class TierSummary:
    """Aggregate capacity and cost view of one tier."""

    tier: Tier
    num_nodes: int
    total_capacity: float
    mean_cost: float


@dataclass
class TopologyReport:
    """Full analysis output of :func:`analyze_topology`."""

    name: str
    tiers: dict[Tier, TierSummary] = field(default_factory=dict)
    diameter_hops: int = 0
    mean_edge_uplink_capacity: float = 0.0
    bottleneck_links: list[tuple[LinkId, float]] = field(default_factory=list)
    articulation_nodes: list[NodeId] = field(default_factory=list)

    def oversubscription(self) -> float:
        """Edge capacity / core capacity: how much fan-in the core absorbs."""
        edge = self.tiers.get(Tier.EDGE)
        core = self.tiers.get(Tier.CORE)
        if edge is None or core is None or core.total_capacity == 0:
            return 0.0
        return edge.total_capacity / core.total_capacity


def tier_summaries(substrate: SubstrateNetwork) -> dict[Tier, TierSummary]:
    """Per-tier node counts, capacities, and mean costs."""
    summaries: dict[Tier, TierSummary] = {}
    for tier in Tier:
        nodes = [
            attrs for attrs in substrate.nodes.values() if attrs.tier == tier
        ]
        if not nodes:
            continue
        summaries[tier] = TierSummary(
            tier=tier,
            num_nodes=len(nodes),
            total_capacity=sum(n.capacity for n in nodes),
            mean_cost=sum(n.cost for n in nodes) / len(nodes),
        )
    return summaries


def edge_uplink_capacity(substrate: SubstrateNetwork) -> dict[NodeId, float]:
    """Total link capacity leaving each edge datacenter.

    This bounds how much demand an ingress can push off-site — the binding
    constraint for non-collocated embeddings under Zipf-skewed popularity.
    """
    return {
        v: sum(substrate.link_capacity(link) for _, link in substrate.adjacency[v])
        for v in substrate.edge_nodes
    }


def bottleneck_links(
    substrate: SubstrateNetwork, top: int = 5
) -> list[tuple[LinkId, float]]:
    """Links with the highest betweenness per unit capacity.

    A high value marks a link that many min-hop paths cross relative to the
    bandwidth it offers — the first place congestion appears as utilization
    rises.
    """
    graph = substrate.to_networkx()
    betweenness = nx.edge_betweenness_centrality(graph)
    scored = []
    for (a, b), centrality in betweenness.items():
        link = (a, b) if (a, b) in substrate.links else (b, a)
        capacity = substrate.link_capacity(link)
        scored.append((link, centrality / capacity if capacity else 0.0))
    scored.sort(key=lambda pair: -pair[1])
    return scored[:top]


def articulation_nodes(substrate: SubstrateNetwork) -> list[NodeId]:
    """Nodes whose failure disconnects the substrate (no path diversity)."""
    graph = substrate.to_networkx()
    return sorted(nx.articulation_points(graph))


def analyze_topology(substrate: SubstrateNetwork, top: int = 5) -> TopologyReport:
    """Run the full analysis suite on one substrate."""
    graph = substrate.to_networkx()
    uplinks = edge_uplink_capacity(substrate)
    return TopologyReport(
        name=substrate.name,
        tiers=tier_summaries(substrate),
        diameter_hops=nx.diameter(graph),
        mean_edge_uplink_capacity=(
            sum(uplinks.values()) / len(uplinks) if uplinks else 0.0
        ),
        bottleneck_links=bottleneck_links(substrate, top),
        articulation_nodes=articulation_nodes(substrate),
    )
