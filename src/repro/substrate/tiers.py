"""Datacenter tiers and their Table II parameters.

The paper's evaluation uses three tiers — edge, transport, core — with a
ratio of 3 between link capacities and datacenter capacities of successive
tiers, and the mean per-capacity-unit node costs 50 / 10 / 1.
"""

from __future__ import annotations

import enum


class Tier(enum.IntEnum):
    """Datacenter tier, ordered edge-most first."""

    EDGE = 0
    TRANSPORT = 1
    CORE = 2


#: Node capacity per tier, in generic capacity units (CU) — Table II.
TIER_NODE_CAPACITY: dict[Tier, float] = {
    Tier.EDGE: 200_000.0,
    Tier.TRANSPORT: 600_000.0,
    Tier.CORE: 1_800_000.0,
}

#: Mean node cost per CU per tier — Table II. Actual node costs are drawn
#: uniformly in [50%, 150%] of the tier mean.
TIER_MEAN_NODE_COST: dict[Tier, float] = {
    Tier.EDGE: 50.0,
    Tier.TRANSPORT: 10.0,
    Tier.CORE: 1.0,
}

#: Link capacity per tier, in CU — Table II. A link's tier is the
#: edge-most tier among its endpoints.
TIER_LINK_CAPACITY: dict[Tier, float] = {
    Tier.EDGE: 100_000.0,
    Tier.TRANSPORT: 300_000.0,
    Tier.CORE: 900_000.0,
}

#: Link cost per CU is 1 for every tier — Table II.
TIER_LINK_COST: dict[Tier, float] = {
    Tier.EDGE: 1.0,
    Tier.TRANSPORT: 1.0,
    Tier.CORE: 1.0,
}


def link_tier(tier_a: Tier, tier_b: Tier) -> Tier:
    """Tier of a link between datacenters of tiers ``tier_a``/``tier_b``.

    A link inherits the edge-most (lowest) tier of its endpoints, so an
    edge-to-transport link has edge-tier capacity, preserving the ×3
    capacity ratio between successive tiers.
    """
    return Tier(min(tier_a, tier_b))
