"""Builders for the four evaluation topologies (Table II, Fig. 5).

The paper uses Iris (Internet Topology Zoo), Citta Studi (mobile edge
network), 5GEN (generated 5G deployment, Madrid) and 100N150E (connected
Erdős–Rényi graph). The first three source graphs are not redistributable,
so this module reconstructs them deterministically with the published
node/link counts and the three-tier edge/transport/core structure the
evaluation relies on (see DESIGN.md §2 for the substitution rationale).

All builders are deterministic: the same call always returns the same
substrate, including node costs (drawn uniformly in [50 %, 150 %] of the
tier mean from a fixed-seed generator).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.errors import TopologyError
from repro.registry import register_topology, topology_registry
from repro.substrate.network import (
    LinkAttrs,
    LinkId,
    NodeAttrs,
    NodeId,
    SubstrateNetwork,
    link_id,
)
from repro.substrate.tiers import (
    TIER_LINK_CAPACITY,
    TIER_LINK_COST,
    TIER_MEAN_NODE_COST,
    TIER_NODE_CAPACITY,
    Tier,
    link_tier,
)
from repro.utils.rng import make_rng

#: City names for Iris edge datacenters. 'Franklin' is referenced by the
#: paper's Fig. 12 per-node allocation study.
_IRIS_EDGE_NAMES = (
    "Franklin", "Madison", "Arlington", "Georgetown", "Springfield",
    "Clinton", "Salem", "Fairview", "Bristol", "Dover",
    "Hudson", "Clayton", "Dayton", "Lebanon", "Milton",
    "Newport", "Oxford", "Riverside", "Ashland", "Burlington",
    "Chester", "Florence", "Greenville", "Jackson", "Kingston",
    "Lexington", "Manchester", "Norwood", "Princeton", "Quincy",
    "Richmond", "Troy", "Union", "Vernon",
)


def _node_attrs(tier: Tier, rng: np.random.Generator, gpu: bool = False) -> NodeAttrs:
    """Draw one datacenter's attributes: tier capacity, U[0.5, 1.5]×mean cost."""
    cost = TIER_MEAN_NODE_COST[tier] * rng.uniform(0.5, 1.5)
    return NodeAttrs(tier=tier, capacity=TIER_NODE_CAPACITY[tier], cost=cost, gpu=gpu)


def _link_attrs(tier_a: Tier, tier_b: Tier) -> LinkAttrs:
    tier = link_tier(tier_a, tier_b)
    return LinkAttrs(
        tier=tier, capacity=TIER_LINK_CAPACITY[tier], cost=TIER_LINK_COST[tier]
    )


def make_tiered_topology(
    name: str,
    num_core: int,
    num_transport: int,
    num_edge: int,
    num_links: int,
    seed: int = 0,
    edge_names: tuple[str, ...] | None = None,
) -> SubstrateNetwork:
    """Build a hierarchical three-tier topology with exact element counts.

    Construction: a core ring, each transport node homed to one core node,
    each edge node homed to one transport node (round-robin, so load is
    spread), then extra redundancy links (transport↔transport,
    edge↔secondary transport, transport↔secondary core) until ``num_links``
    is reached.
    """
    base_links = (
        (num_core if num_core > 2 else max(num_core - 1, 0))
        + num_transport
        + num_edge
    )
    if num_links < base_links:
        raise TopologyError(
            f"{name}: need at least {base_links} links for connectivity, "
            f"got {num_links}"
        )
    rng = make_rng(seed)

    core = [f"core-{i}" for i in range(num_core)]
    transport = [f"transport-{i}" for i in range(num_transport)]
    if edge_names is not None:
        if len(edge_names) != num_edge:
            raise TopologyError(
                f"{name}: {num_edge} edge nodes but {len(edge_names)} names"
            )
        edge = list(edge_names)
    else:
        edge = [f"edge-{i}" for i in range(num_edge)]

    nodes: dict[NodeId, NodeAttrs] = {}
    for node in core:
        nodes[node] = _node_attrs(Tier.CORE, rng)
    for node in transport:
        nodes[node] = _node_attrs(Tier.TRANSPORT, rng)
    for node in edge:
        nodes[node] = _node_attrs(Tier.EDGE, rng)

    tier_of = {v: nodes[v].tier for v in nodes}
    links: dict[LinkId, LinkAttrs] = {}

    def add_link(a: NodeId, b: NodeId) -> bool:
        key = link_id(a, b)
        if a == b or key in links:
            return False
        links[key] = _link_attrs(tier_of[a], tier_of[b])
        return True

    # Core ring.
    for i in range(len(core)):
        if len(core) == 1:
            break
        if len(core) == 2 and i == 1:
            break
        add_link(core[i], core[(i + 1) % len(core)])
    # Home each transport node to one core node (round-robin).
    for i, node in enumerate(transport):
        add_link(node, core[i % len(core)])
    # Home each edge node to one transport node (round-robin).
    for i, node in enumerate(edge):
        add_link(node, transport[i % len(transport)])

    # Redundancy links until the published link count is reached. Candidate
    # pools are tried in order: transport mesh links, edge dual-homing,
    # transport dual-homing to core.
    candidates: list[tuple[NodeId, NodeId]] = []
    for i in range(len(transport)):
        candidates.append(
            (transport[i], transport[(i + 1) % len(transport)])
        )
    for i, node in enumerate(edge):
        candidates.append((node, transport[(i + 1) % len(transport)]))
    for i, node in enumerate(transport):
        candidates.append((node, core[(i + 1) % len(core)]))
    rng.shuffle(candidates)
    for a, b in candidates:
        if len(links) >= num_links:
            break
        add_link(a, b)
    if len(links) != num_links:
        raise TopologyError(
            f"{name}: exhausted candidate links at {len(links)}/{num_links}"
        )

    return SubstrateNetwork(name=name, nodes=nodes, links=links)


@register_topology("Iris", description="50 nodes / 64 links, Topology Zoo scale")
def make_iris() -> SubstrateNetwork:
    """Iris: 50 nodes, 64 links (Internet Topology Zoo scale).

    Edge datacenters carry city names; 'Franklin' exists for the Fig. 12
    per-node study.
    """
    return make_tiered_topology(
        "Iris",
        num_core=4,
        num_transport=12,
        num_edge=34,
        num_links=64,
        seed=11,
        edge_names=_IRIS_EDGE_NAMES,
    )


@register_topology(
    "CittaStudi", description="30 nodes / 35 links, mobile edge scale"
)
def make_citta_studi() -> SubstrateNetwork:
    """Citta Studi: 30 nodes, 35 links (mobile edge network scale)."""
    return make_tiered_topology(
        "CittaStudi", num_core=3, num_transport=7, num_edge=20,
        num_links=35, seed=23,
    )


@register_topology(
    "5GEN", description="78 nodes / 100 links, generated 5G deployment"
)
def make_5gen() -> SubstrateNetwork:
    """5GEN: 78 nodes, 100 links (generated 5G deployment scale)."""
    return make_tiered_topology(
        "5GEN", num_core=6, num_transport=18, num_edge=54,
        num_links=100, seed=37,
    )


@register_topology(
    "100N150E", description="connected Erdős–Rényi graph, 100 nodes / 150 links"
)
def make_100n150e(seed: int = 47) -> SubstrateNetwork:
    """100N150E: connected Erdős–Rényi graph, 100 nodes / 150 links.

    Tiers are assigned by degree rank (highest-degree nodes become core),
    mirroring how random-graph evaluations map hierarchy onto flat graphs.
    """
    rng = make_rng(seed)
    num_nodes, num_links = 100, 150
    for attempt in range(1000):
        pairs = _random_gnm(num_nodes, num_links, rng)
        if _connected(num_nodes, pairs):
            break
    else:  # pragma: no cover - probability of 1000 failures is negligible
        raise TopologyError("failed to sample a connected G(100, 150)")

    degree = [0] * num_nodes
    for a, b in pairs:
        degree[a] += 1
        degree[b] += 1
    order = sorted(range(num_nodes), key=lambda v: (-degree[v], v))
    tier_by_index: dict[int, Tier] = {}
    for rank, v in enumerate(order):
        if rank < 8:
            tier_by_index[v] = Tier.CORE
        elif rank < 32:
            tier_by_index[v] = Tier.TRANSPORT
        else:
            tier_by_index[v] = Tier.EDGE

    nodes: dict[NodeId, NodeAttrs] = {}
    for v in range(num_nodes):
        nodes[f"n{v}"] = _node_attrs(tier_by_index[v], rng)
    links: dict[LinkId, LinkAttrs] = {}
    for a, b in pairs:
        links[link_id(f"n{a}", f"n{b}")] = _link_attrs(
            tier_by_index[a], tier_by_index[b]
        )
    return SubstrateNetwork(name="100N150E", nodes=nodes, links=links)


def _random_gnm(
    num_nodes: int, num_links: int, rng: np.random.Generator
) -> set[tuple[int, int]]:
    """Sample ``num_links`` distinct undirected pairs over ``num_nodes``."""
    pairs: set[tuple[int, int]] = set()
    while len(pairs) < num_links:
        a, b = rng.integers(0, num_nodes, size=2)
        if a == b:
            continue
        pairs.add((min(a, b), max(a, b)))
    return pairs


def _connected(num_nodes: int, pairs: set[tuple[int, int]]) -> bool:
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    for a, b in pairs:
        adjacency[a].append(b)
        adjacency[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for w in adjacency[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == num_nodes


def split_gpu_datacenters(
    substrate: SubstrateNetwork,
    num_edge_gpu: int = 4,
    seed: int = 0,
    non_gpu_capacity_factor: float = 0.75,
) -> SubstrateNetwork:
    """Split core nodes and ``num_edge_gpu`` random edge nodes for Fig. 10.

    Each selected datacenter ``v`` is split into a non-GPU half (keeps the
    name ``v``) and a GPU half (``v-gpu``) connected to ``v`` by an
    intra-site link. Capacity is divided evenly; the non-GPU half is then
    reduced by 25 % ("non-GPU datacenters were assigned capacity smaller by
    25 %"). GPU halves only accept GPU VNFs (enforced by the efficiency
    model, Sec. II-A).
    """
    if num_edge_gpu > len(substrate.edge_nodes):
        raise TopologyError("more GPU edge splits than edge nodes")
    rng = make_rng(seed)
    edge_pick = sorted(
        rng.choice(len(substrate.edge_nodes), size=num_edge_gpu, replace=False)
    )
    selected = set(substrate.core_nodes) | {
        substrate.edge_nodes[i] for i in edge_pick
    }

    nodes = dict(substrate.nodes)
    links = dict(substrate.links)
    # Iterate in sorted order: set iteration depends on string-hash
    # randomization, which would make node insertion order — and hence
    # every downstream trace draw and result — vary across processes.
    for v in sorted(selected):
        attrs = nodes[v]
        half = attrs.capacity / 2.0
        nodes[v] = replace(
            attrs, capacity=half * non_gpu_capacity_factor, gpu=False
        )
        twin = f"{v}-gpu"
        nodes[twin] = replace(attrs, capacity=half, gpu=True)
        links[link_id(v, twin)] = LinkAttrs(
            tier=attrs.tier,
            capacity=TIER_LINK_CAPACITY[attrs.tier],
            cost=TIER_LINK_COST[attrs.tier],
        )
    return SubstrateNetwork(
        name=f"{substrate.name}-gpu", nodes=nodes, links=links
    )


#: Registry used by experiments and benchmarks.
#: Live read-only ``{name: builder}`` view of the topology registry.
#: Third-party topologies registered via ``@register_topology`` appear
#: here automatically.
TOPOLOGY_BUILDERS = topology_registry.as_mapping()


def make_topology(name: str) -> SubstrateNetwork:
    """Build a registered topology by name (``repro.registry`` backed)."""
    return topology_registry.create(name)
