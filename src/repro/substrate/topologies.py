"""Builders for the four evaluation topologies (Table II, Fig. 5).

The paper uses Iris (Internet Topology Zoo), Citta Studi (mobile edge
network), 5GEN (generated 5G deployment, Madrid) and 100N150E (connected
Erdős–Rényi graph). The first three source graphs are not redistributable,
so this module reconstructs them deterministically with the published
node/link counts and the three-tier edge/transport/core structure the
evaluation relies on (see DESIGN.md §2 for the substitution rationale).

All builders are deterministic: the same call always returns the same
substrate, including node costs (drawn uniformly in [50 %, 150 %] of the
tier mean from a fixed-seed generator).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.errors import TopologyError
from repro.registry import register_topology, topology_registry
from repro.substrate.network import (
    LinkAttrs,
    LinkId,
    NodeAttrs,
    NodeId,
    SubstrateNetwork,
    link_id,
)
from repro.substrate.tiers import (
    TIER_LINK_CAPACITY,
    TIER_LINK_COST,
    TIER_MEAN_NODE_COST,
    TIER_NODE_CAPACITY,
    Tier,
    link_tier,
)
from repro.utils.rng import make_rng

#: City names for Iris edge datacenters. 'Franklin' is referenced by the
#: paper's Fig. 12 per-node allocation study.
_IRIS_EDGE_NAMES = (
    "Franklin", "Madison", "Arlington", "Georgetown", "Springfield",
    "Clinton", "Salem", "Fairview", "Bristol", "Dover",
    "Hudson", "Clayton", "Dayton", "Lebanon", "Milton",
    "Newport", "Oxford", "Riverside", "Ashland", "Burlington",
    "Chester", "Florence", "Greenville", "Jackson", "Kingston",
    "Lexington", "Manchester", "Norwood", "Princeton", "Quincy",
    "Richmond", "Troy", "Union", "Vernon",
)


def _node_attrs(tier: Tier, rng: np.random.Generator, gpu: bool = False) -> NodeAttrs:
    """Draw one datacenter's attributes: tier capacity, U[0.5, 1.5]×mean cost."""
    cost = TIER_MEAN_NODE_COST[tier] * rng.uniform(0.5, 1.5)
    return NodeAttrs(tier=tier, capacity=TIER_NODE_CAPACITY[tier], cost=cost, gpu=gpu)


def _link_attrs(tier_a: Tier, tier_b: Tier) -> LinkAttrs:
    tier = link_tier(tier_a, tier_b)
    return LinkAttrs(
        tier=tier, capacity=TIER_LINK_CAPACITY[tier], cost=TIER_LINK_COST[tier]
    )


def make_tiered_topology(
    name: str,
    num_core: int,
    num_transport: int,
    num_edge: int,
    num_links: int,
    seed: int = 0,
    edge_names: tuple[str, ...] | None = None,
) -> SubstrateNetwork:
    """Build a hierarchical three-tier topology with exact element counts.

    Construction: a core ring, each transport node homed to one core node,
    each edge node homed to one transport node (round-robin, so load is
    spread), then extra redundancy links (transport↔transport,
    edge↔secondary transport, transport↔secondary core) until ``num_links``
    is reached.
    """
    for label, count in (
        ("num_core", num_core),
        ("num_transport", num_transport),
        ("num_edge", num_edge),
        ("num_links", num_links),
    ):
        if not isinstance(count, (int, np.integer)) or isinstance(count, bool):
            raise TopologyError(
                f"{name}: {label} must be an integer, got {count!r}"
            )
        if count < 1:
            raise TopologyError(
                f"{name}: {label} must be at least 1, got {count}"
            )
    base_links = (
        (num_core if num_core > 2 else max(num_core - 1, 0))
        + num_transport
        + num_edge
    )
    if num_links < base_links:
        raise TopologyError(
            f"{name}: need at least {base_links} links for connectivity, "
            f"got {num_links}"
        )
    rng = make_rng(seed)

    core = [f"core-{i}" for i in range(num_core)]
    transport = [f"transport-{i}" for i in range(num_transport)]
    if edge_names is not None:
        if len(edge_names) != num_edge:
            raise TopologyError(
                f"{name}: {num_edge} edge nodes but {len(edge_names)} names"
            )
        edge = list(edge_names)
    else:
        edge = [f"edge-{i}" for i in range(num_edge)]

    nodes: dict[NodeId, NodeAttrs] = {}
    for node in core:
        nodes[node] = _node_attrs(Tier.CORE, rng)
    for node in transport:
        nodes[node] = _node_attrs(Tier.TRANSPORT, rng)
    for node in edge:
        nodes[node] = _node_attrs(Tier.EDGE, rng)

    tier_of = {v: nodes[v].tier for v in nodes}
    links: dict[LinkId, LinkAttrs] = {}

    def add_link(a: NodeId, b: NodeId) -> bool:
        key = link_id(a, b)
        if a == b or key in links:
            return False
        links[key] = _link_attrs(tier_of[a], tier_of[b])
        return True

    # Core ring.
    for i in range(len(core)):
        if len(core) == 1:
            break
        if len(core) == 2 and i == 1:
            break
        add_link(core[i], core[(i + 1) % len(core)])
    # Home each transport node to one core node (round-robin).
    for i, node in enumerate(transport):
        add_link(node, core[i % len(core)])
    # Home each edge node to one transport node (round-robin).
    for i, node in enumerate(edge):
        add_link(node, transport[i % len(transport)])

    # Redundancy links until the published link count is reached. Candidate
    # pools are tried in order: transport mesh links, edge dual-homing,
    # transport dual-homing to core.
    candidates: list[tuple[NodeId, NodeId]] = []
    for i in range(len(transport)):
        candidates.append(
            (transport[i], transport[(i + 1) % len(transport)])
        )
    for i, node in enumerate(edge):
        candidates.append((node, transport[(i + 1) % len(transport)]))
    for i, node in enumerate(transport):
        candidates.append((node, core[(i + 1) % len(core)]))
    rng.shuffle(candidates)
    for a, b in candidates:
        if len(links) >= num_links:
            break
        add_link(a, b)
    if len(links) != num_links:
        raise TopologyError(
            f"{name}: exhausted candidate links at {len(links)}/{num_links}"
        )

    return SubstrateNetwork(name=name, nodes=nodes, links=links)


@register_topology("Iris", description="50 nodes / 64 links, Topology Zoo scale")
def make_iris() -> SubstrateNetwork:
    """Iris: 50 nodes, 64 links (Internet Topology Zoo scale).

    Edge datacenters carry city names; 'Franklin' exists for the Fig. 12
    per-node study.
    """
    return make_tiered_topology(
        "Iris",
        num_core=4,
        num_transport=12,
        num_edge=34,
        num_links=64,
        seed=11,
        edge_names=_IRIS_EDGE_NAMES,
    )


@register_topology(
    "CittaStudi", description="30 nodes / 35 links, mobile edge scale"
)
def make_citta_studi() -> SubstrateNetwork:
    """Citta Studi: 30 nodes, 35 links (mobile edge network scale)."""
    return make_tiered_topology(
        "CittaStudi", num_core=3, num_transport=7, num_edge=20,
        num_links=35, seed=23,
    )


@register_topology(
    "5GEN", description="78 nodes / 100 links, generated 5G deployment"
)
def make_5gen() -> SubstrateNetwork:
    """5GEN: 78 nodes, 100 links (generated 5G deployment scale)."""
    return make_tiered_topology(
        "5GEN", num_core=6, num_transport=18, num_edge=54,
        num_links=100, seed=37,
    )


@register_topology(
    "100N150E", description="connected Erdős–Rényi graph, 100 nodes / 150 links"
)
def make_100n150e(seed: int = 47) -> SubstrateNetwork:
    """100N150E: connected Erdős–Rényi graph, 100 nodes / 150 links.

    Tiers are assigned by degree rank (highest-degree nodes become core),
    mirroring how random-graph evaluations map hierarchy onto flat graphs.
    """
    rng = make_rng(seed)
    num_nodes, num_links = 100, 150
    for _attempt in range(1000):
        pairs = _random_gnm(num_nodes, num_links, rng)
        if _connected(num_nodes, pairs):
            break
    else:  # pragma: no cover - probability of 1000 failures is negligible
        raise TopologyError("failed to sample a connected G(100, 150)")

    degree = [0] * num_nodes
    for a, b in sorted(pairs):
        degree[a] += 1
        degree[b] += 1
    order = sorted(range(num_nodes), key=lambda v: (-degree[v], v))
    tier_by_index: dict[int, Tier] = {}
    for rank, v in enumerate(order):
        if rank < 8:
            tier_by_index[v] = Tier.CORE
        elif rank < 32:
            tier_by_index[v] = Tier.TRANSPORT
        else:
            tier_by_index[v] = Tier.EDGE

    nodes: dict[NodeId, NodeAttrs] = {}
    for v in range(num_nodes):
        nodes[f"n{v}"] = _node_attrs(tier_by_index[v], rng)
    links: dict[LinkId, LinkAttrs] = {}
    for a, b in sorted(pairs):
        links[link_id(f"n{a}", f"n{b}")] = _link_attrs(
            tier_by_index[a], tier_by_index[b]
        )
    return SubstrateNetwork(name="100N150E", nodes=nodes, links=links)


def _random_gnm(
    num_nodes: int, num_links: int, rng: np.random.Generator
) -> set[tuple[int, int]]:
    """Sample ``num_links`` distinct undirected pairs over ``num_nodes``."""
    pairs: set[tuple[int, int]] = set()
    while len(pairs) < num_links:
        a, b = rng.integers(0, num_nodes, size=2)
        if a == b:
            continue
        pairs.add((min(a, b), max(a, b)))
    return pairs


def _connected(num_nodes: int, pairs: set[tuple[int, int]]) -> bool:
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    for a, b in sorted(pairs):
        adjacency[a].append(b)
        adjacency[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for w in adjacency[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == num_nodes


# -- generated scale families -------------------------------------------------
#
# The catalog above reproduces Table II at published sizes. The families
# below are *parameterized* — `make_topology("waxman:800")` builds an
# 800-node instance — and exist to measure how the embedding pipeline
# scales (fig_scale, BENCH_scale). Every family is deterministic in
# (size, seed) and assigns tiers so the trace/plan machinery (which
# needs non-empty edge/transport/core sets) works unchanged.

#: Default node count when a sized family is built without a size.
DEFAULT_SCALE_NODES = 120


def _check_size(family: str, num_nodes: int, minimum: int) -> None:
    if not isinstance(num_nodes, (int, np.integer)) or isinstance(
        num_nodes, bool
    ):
        raise TopologyError(
            f"{family}: size must be an integer, got {num_nodes!r}"
        )
    if num_nodes < minimum:
        raise TopologyError(
            f"{family}: size must be at least {minimum}, got {num_nodes}"
        )


def _tiers_by_degree_rank(
    num_nodes: int, pairs: set[tuple[int, int]]
) -> dict[int, Tier]:
    """Map node indices to tiers by degree rank (hubs become core).

    The same flat-graph hierarchy assignment 100N150E uses, generalized:
    top ~6 % of nodes by degree are core, the next ~24 % transport, the
    rest edge (ties broken by index for determinism).
    """
    degree = [0] * num_nodes
    for a, b in sorted(pairs):
        degree[a] += 1
        degree[b] += 1
    order = sorted(range(num_nodes), key=lambda v: (-degree[v], v))
    num_core = max(1, round(0.06 * num_nodes))
    num_transport = max(1, round(0.24 * num_nodes))
    tiers: dict[int, Tier] = {}
    for rank, v in enumerate(order):
        if rank < num_core:
            tiers[v] = Tier.CORE
        elif rank < num_core + num_transport:
            tiers[v] = Tier.TRANSPORT
        else:
            tiers[v] = Tier.EDGE
    return tiers


def _substrate_from_pairs(
    name: str,
    num_nodes: int,
    pairs: set[tuple[int, int]],
    rng: np.random.Generator,
) -> SubstrateNetwork:
    tiers = _tiers_by_degree_rank(num_nodes, pairs)
    nodes: dict[NodeId, NodeAttrs] = {}
    for v in range(num_nodes):
        nodes[f"n{v}"] = _node_attrs(tiers[v], rng)
    links: dict[LinkId, LinkAttrs] = {}
    for a, b in sorted(pairs):
        links[link_id(f"n{a}", f"n{b}")] = _link_attrs(tiers[a], tiers[b])
    return SubstrateNetwork(name=name, nodes=nodes, links=links)


@register_topology(
    "tiered-x",
    description="scaled three-tier hierarchy; size via 'tiered-x:<nodes>'",
    sized=True,
)
def make_scaled_tiered(
    num_nodes: int = DEFAULT_SCALE_NODES, seed: int = 101
) -> SubstrateNetwork:
    """A three-tier hierarchy scaled to ``num_nodes`` datacenters.

    Tier counts follow the catalog's ~1:3:9 core:transport:edge ratio;
    the link budget adds a transport mesh ring and dual-homes half the
    edge nodes, so redundancy grows with the substrate.
    """
    _check_size("tiered-x", num_nodes, 26)
    num_core = max(2, num_nodes // 13)
    num_transport = max(3, 3 * num_core)
    num_edge = num_nodes - num_core - num_transport
    ring_links = num_core if num_core > 2 else num_core - 1
    num_links = (
        ring_links + num_transport + num_edge  # homing skeleton
        + num_transport  # transport mesh ring
        + num_edge // 2  # dual-home half the edge nodes
    )
    return make_tiered_topology(
        f"tiered-x-{num_nodes}",
        num_core=num_core,
        num_transport=num_transport,
        num_edge=num_edge,
        num_links=num_links,
        seed=seed,
    )


@register_topology(
    "waxman",
    description="Waxman random geometric graph; size via 'waxman:<nodes>'",
    sized=True,
)
def make_waxman(
    num_nodes: int = DEFAULT_SCALE_NODES,
    seed: int = 211,
    alpha: float = 0.25,
    beta: float = 0.6,
) -> SubstrateNetwork:
    """Waxman(α, β) geometric graph with a nearest-neighbor backbone.

    Nodes are placed uniformly in the unit square; each node first links
    to its nearest already-placed neighbor (guaranteeing connectivity),
    then extra edges are sampled with the Waxman probability
    ``β·exp(−d/(α·√2))`` until ~1.5 links per node. Tiers by degree rank.
    """
    _check_size("waxman", num_nodes, 20)
    rng = make_rng(seed)
    positions = rng.uniform(0.0, 1.0, size=(num_nodes, 2))
    pairs: set[tuple[int, int]] = set()
    # Nearest-neighbor backbone: connected by construction.
    for i in range(1, num_nodes):
        deltas = positions[:i] - positions[i]
        nearest = int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))
        pairs.add((nearest, i))
    target = int(1.5 * num_nodes)
    scale = alpha * float(np.sqrt(2.0))
    attempts = 0
    while len(pairs) < target and attempts < 200:
        attempts += 1
        chunk = max(256, 2 * (target - len(pairs)))
        a = rng.integers(0, num_nodes, size=chunk)
        b = rng.integers(0, num_nodes, size=chunk)
        dist = np.linalg.norm(positions[a] - positions[b], axis=1)
        accept = rng.uniform(size=chunk) < beta * np.exp(-dist / scale)
        for u, v, ok in zip(a, b, accept):
            if ok and u != v:
                pairs.add((min(int(u), int(v)), max(int(u), int(v))))
            if len(pairs) >= target:
                break
    return _substrate_from_pairs(f"waxman-{num_nodes}", num_nodes, pairs, rng)


@register_topology(
    "prefattach",
    description="preferential-attachment graph; size via 'prefattach:<nodes>'",
    sized=True,
)
def make_preferential(
    num_nodes: int = DEFAULT_SCALE_NODES, seed: int = 307, m: int = 2
) -> SubstrateNetwork:
    """Barabási–Albert preferential attachment with ``m`` links per node.

    Grown from an ``m+1``-clique; every new node attaches to ``m``
    distinct targets sampled proportionally to current degree. The
    resulting heavy-tailed degree distribution maps naturally onto the
    core/transport/edge split (hubs become core).
    """
    _check_size("prefattach", num_nodes, 20)
    if m < 1:
        raise TopologyError(f"prefattach: m must be at least 1, got {m}")
    rng = make_rng(seed)
    pairs: set[tuple[int, int]] = set()
    repeated: list[int] = []  # one entry per degree endpoint
    for a in range(m + 1):
        for b in range(a + 1, m + 1):
            pairs.add((a, b))
            repeated.extend((a, b))
    for v in range(m + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated[int(rng.integers(0, len(repeated)))])
        for t in sorted(targets):
            pairs.add((t, v))
            repeated.extend((t, v))
    return _substrate_from_pairs(
        f"prefattach-{num_nodes}", num_nodes, pairs, rng
    )


@register_topology(
    "caida-x",
    description="scaled-CAIDA expander graph; size via 'caida-x:<nodes>'",
    sized=True,
)
def make_caida_expander(
    num_nodes: int = DEFAULT_SCALE_NODES, seed: int = 401
) -> SubstrateNetwork:
    """An expander in the style of scaled CAIDA AS graphs.

    A ring backbone (connectivity) plus a random perfect matching
    (expansion) plus Pareto-weighted hub attachments (the heavy-tailed
    AS-degree profile CAIDA snapshots show). ~1.75 links per node.
    """
    _check_size("caida-x", num_nodes, 20)
    rng = make_rng(seed)
    pairs: set[tuple[int, int]] = set()
    for v in range(num_nodes):
        w = (v + 1) % num_nodes
        pairs.add((min(v, w), max(v, w)))
    matching = rng.permutation(num_nodes)
    for i in range(0, num_nodes - 1, 2):
        a, b = int(matching[i]), int(matching[i + 1])
        pairs.add((min(a, b), max(a, b)))
    # Heavy-tailed hub attachments: nodes draw Pareto weights, random
    # nodes wire to hubs sampled proportionally to weight.
    weights = rng.pareto(1.5, size=num_nodes) + 1.0
    probabilities = weights / weights.sum()
    spokes = rng.integers(0, num_nodes, size=num_nodes // 4)
    hubs = rng.choice(num_nodes, size=num_nodes // 4, p=probabilities)
    for a, b in zip(spokes, hubs):
        if int(a) != int(b):
            pairs.add((min(int(a), int(b)), max(int(a), int(b))))
    return _substrate_from_pairs(f"caida-x-{num_nodes}", num_nodes, pairs, rng)


def split_gpu_datacenters(
    substrate: SubstrateNetwork,
    num_edge_gpu: int = 4,
    seed: int = 0,
    non_gpu_capacity_factor: float = 0.75,
) -> SubstrateNetwork:
    """Split core nodes and ``num_edge_gpu`` random edge nodes for Fig. 10.

    Each selected datacenter ``v`` is split into a non-GPU half (keeps the
    name ``v``) and a GPU half (``v-gpu``) connected to ``v`` by an
    intra-site link. Capacity is divided evenly; the non-GPU half is then
    reduced by 25 % ("non-GPU datacenters were assigned capacity smaller by
    25 %"). GPU halves only accept GPU VNFs (enforced by the efficiency
    model, Sec. II-A).
    """
    if num_edge_gpu > len(substrate.edge_nodes):
        raise TopologyError("more GPU edge splits than edge nodes")
    rng = make_rng(seed)
    edge_pick = sorted(
        rng.choice(len(substrate.edge_nodes), size=num_edge_gpu, replace=False)
    )
    selected = set(substrate.core_nodes) | {
        substrate.edge_nodes[i] for i in edge_pick
    }

    nodes = dict(substrate.nodes)
    links = dict(substrate.links)
    # Iterate in sorted order: set iteration depends on string-hash
    # randomization, which would make node insertion order — and hence
    # every downstream trace draw and result — vary across processes.
    for v in sorted(selected):
        attrs = nodes[v]
        half = attrs.capacity / 2.0
        nodes[v] = replace(
            attrs, capacity=half * non_gpu_capacity_factor, gpu=False
        )
        twin = f"{v}-gpu"
        nodes[twin] = replace(attrs, capacity=half, gpu=True)
        links[link_id(v, twin)] = LinkAttrs(
            tier=attrs.tier,
            capacity=TIER_LINK_CAPACITY[attrs.tier],
            cost=TIER_LINK_COST[attrs.tier],
        )
    return SubstrateNetwork(
        name=f"{substrate.name}-gpu", nodes=nodes, links=links
    )


#: Registry used by experiments and benchmarks.
#: Live read-only ``{name: builder}`` view of the topology registry.
#: Third-party topologies registered via ``@register_topology`` appear
#: here automatically.
TOPOLOGY_BUILDERS = topology_registry.as_mapping()


def make_topology(name: str) -> SubstrateNetwork:
    """Build a registered topology by name (``repro.registry`` backed).

    Sized families (registered with ``sized=True`` metadata) accept a
    ``"family:<nodes>"`` spelling — ``make_topology("waxman:800")``
    builds an 800-node Waxman instance. Catalog topologies reject the
    suffix: their element counts are published, not parameters.
    """
    base, sep, size = name.partition(":")
    if not sep:
        return topology_registry.create(name)
    entry = topology_registry.get(base)
    if not entry.metadata.get("sized"):
        raise TopologyError(
            f"topology {base!r} has fixed published element counts and "
            f"does not take a size parameter (got {name!r})"
        )
    try:
        num_nodes = int(size)
    except ValueError:
        raise TopologyError(
            f"bad topology size {size!r} in {name!r}; "
            f"expected '{base}:<num_nodes>'"
        ) from None
    return entry.factory(num_nodes)
