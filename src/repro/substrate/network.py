"""The :class:`SubstrateNetwork` model.

A substrate is an undirected graph of datacenters. Node identifiers are
strings (e.g., ``"edge-3"`` or ``"Franklin"``); links are identified by the
sorted node pair. The class pre-computes the adjacency structure used by the
path helpers and exposes capacity/cost lookups keyed by element, matching
``cap(s)`` / ``cost(s)`` of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.substrate.tiers import Tier

NodeId = str
LinkId = tuple[str, str]


@dataclass(frozen=True)
class SubstrateIndex:
    """Integer-indexed view of one substrate, shared by the fast paths.

    Nodes and links are numbered in the substrate's insertion order (the
    order every dict-based scan in the slow paths iterates in), so
    array positions and dict iteration visit elements identically — a
    requirement for bit-identical tie-breaking between the vectorized and
    the scalar code.

    ``adj`` holds node ``i``'s incident ``(neighbor_idx, link_idx)``
    pairs, preserving the per-node neighbor order of
    :attr:`SubstrateNetwork.adjacency`; plain-Python tuples because the
    scalar-heavy Dijkstra loop is faster on native ints/floats than on
    numpy scalar indexing.
    """

    node_ids: tuple[NodeId, ...]
    link_ids: tuple[LinkId, ...]
    node_index: dict[NodeId, int]
    link_index: dict[LinkId, int]
    node_capacity: np.ndarray
    node_cost: np.ndarray
    link_capacity: np.ndarray
    link_cost: np.ndarray
    adj: tuple[tuple[tuple[int, int], ...], ...]
    link_cost_list: tuple[float, ...]
    node_cost_list: tuple[float, ...]
    #: Static LinkId → cost map for code that routes by link key.
    link_cost_map: dict[LinkId, float]

    @classmethod
    def build(cls, substrate: "SubstrateNetwork") -> "SubstrateIndex":
        node_ids = tuple(substrate.nodes)
        link_ids = tuple(substrate.links)
        node_index = {v: i for i, v in enumerate(node_ids)}
        link_index = {l: i for i, l in enumerate(link_ids)}
        adj = tuple(
            tuple(
                (node_index[neighbor], link_index[link])
                for neighbor, link in substrate.adjacency[node]
            )
            for node in node_ids
        )
        return cls(
            node_ids=node_ids,
            link_ids=link_ids,
            node_index=node_index,
            link_index=link_index,
            node_capacity=np.array(
                [substrate.nodes[v].capacity for v in node_ids]
            ),
            node_cost=np.array([substrate.nodes[v].cost for v in node_ids]),
            link_capacity=np.array(
                [substrate.links[l].capacity for l in link_ids]
            ),
            link_cost=np.array([substrate.links[l].cost for l in link_ids]),
            adj=adj,
            link_cost_list=tuple(
                substrate.links[l].cost for l in link_ids
            ),
            node_cost_list=tuple(
                substrate.nodes[v].cost for v in node_ids
            ),
            link_cost_map={
                l: substrate.links[l].cost for l in link_ids
            },
        )

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_links(self) -> int:
        return len(self.link_ids)


def substrate_index(substrate: "SubstrateNetwork") -> SubstrateIndex:
    """The (lazily built, cached) :class:`SubstrateIndex` of a substrate."""
    index = substrate.__dict__.get("_index")
    if index is None:
        index = SubstrateIndex.build(substrate)
        substrate.__dict__["_index"] = index
    return index


@dataclass(frozen=True)
class NodeAttrs:
    """Static attributes of one datacenter."""

    tier: Tier
    capacity: float
    cost: float
    gpu: bool = False


@dataclass(frozen=True)
class LinkAttrs:
    """Static attributes of one inter-datacenter link."""

    tier: Tier
    capacity: float
    cost: float


def link_id(a: NodeId, b: NodeId) -> LinkId:
    """Canonical (sorted) identifier of the undirected link between a, b."""
    return (a, b) if a <= b else (b, a)


@dataclass
class SubstrateNetwork:
    """An immutable physical network with tiered capacities and costs.

    Mutating capacity during simulation is done on *residual* copies held by
    the algorithms, never on this object.
    """

    name: str
    nodes: dict[NodeId, NodeAttrs]
    links: dict[LinkId, LinkAttrs]
    adjacency: dict[NodeId, list[tuple[NodeId, LinkId]]] = field(init=False)

    def __post_init__(self) -> None:
        adjacency: dict[NodeId, list[tuple[NodeId, LinkId]]] = {
            node: [] for node in self.nodes
        }
        for (a, b) in self.links:
            if a not in self.nodes or b not in self.nodes:
                raise TopologyError(f"link ({a}, {b}) references unknown node")
            adjacency[a].append((b, (a, b)))
            adjacency[b].append((a, (a, b)))
        self.adjacency = adjacency
        if not self._is_connected():
            raise TopologyError(f"substrate {self.name!r} is not connected")

    def _is_connected(self) -> bool:
        if not self.nodes:
            return True
        seen: set[NodeId] = set()
        stack = [next(iter(self.nodes))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(n for n, _ in self.adjacency[node] if n not in seen)
        return len(seen) == len(self.nodes)

    # -- structure queries ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def nodes_in_tier(self, tier: Tier) -> list[NodeId]:
        """Node ids of the given tier, in insertion order."""
        return [v for v, attrs in self.nodes.items() if attrs.tier == tier]

    @property
    def edge_nodes(self) -> list[NodeId]:
        return self.nodes_in_tier(Tier.EDGE)

    @property
    def transport_nodes(self) -> list[NodeId]:
        return self.nodes_in_tier(Tier.TRANSPORT)

    @property
    def core_nodes(self) -> list[NodeId]:
        return self.nodes_in_tier(Tier.CORE)

    def gpu_nodes(self) -> list[NodeId]:
        return [v for v, attrs in self.nodes.items() if attrs.gpu]

    def total_edge_capacity(self) -> float:
        """Sum of edge-tier node capacities (the 100 %-utilization anchor)."""
        return sum(
            attrs.capacity
            for attrs in self.nodes.values()
            if attrs.tier == Tier.EDGE
        )

    # -- cap / cost lookups ---------------------------------------------------

    def node_capacity(self, node: NodeId) -> float:
        return self.nodes[node].capacity

    def node_cost(self, node: NodeId) -> float:
        return self.nodes[node].cost

    def link_capacity(self, link: LinkId) -> float:
        return self.links[link].capacity

    def link_cost(self, link: LinkId) -> float:
        return self.links[link].cost

    def max_node_cost(self) -> float:
        return max(attrs.cost for attrs in self.nodes.values())

    def max_link_cost(self) -> float:
        return max(attrs.cost for attrs in self.links.values())

    # -- derived views ---------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Export to a networkx graph (for analysis and plotting)."""
        graph = nx.Graph(name=self.name)
        for node, attrs in self.nodes.items():
            graph.add_node(
                node,
                tier=attrs.tier.name.lower(),
                capacity=attrs.capacity,
                cost=attrs.cost,
                gpu=attrs.gpu,
            )
        for (a, b), attrs in self.links.items():
            graph.add_edge(
                a,
                b,
                tier=attrs.tier.name.lower(),
                capacity=attrs.capacity,
                cost=attrs.cost,
            )
        return graph

    def with_node_attrs(
        self, overrides: dict[NodeId, NodeAttrs]
    ) -> "SubstrateNetwork":
        """A copy with some node attributes replaced."""
        nodes = dict(self.nodes)
        for node, attrs in overrides.items():
            if node not in nodes:
                raise TopologyError(f"unknown node {node!r}")
            nodes[node] = attrs
        return SubstrateNetwork(name=self.name, nodes=nodes, links=dict(self.links))

    def scaled_capacities(self, factor: float) -> "SubstrateNetwork":
        """A copy with all node and link capacities multiplied by ``factor``."""
        if factor <= 0:
            raise TopologyError("capacity scale factor must be positive")
        nodes = {
            v: replace(attrs, capacity=attrs.capacity * factor)
            for v, attrs in self.nodes.items()
        }
        links = {
            l: replace(attrs, capacity=attrs.capacity * factor)
            for l, attrs in self.links.items()
        }
        return SubstrateNetwork(name=self.name, nodes=nodes, links=links)

    def summary(self) -> dict:
        """Table II-style row describing this topology."""
        return {
            "name": self.name,
            "nodes": self.num_nodes,
            "links": self.num_links,
            "edge": len(self.edge_nodes),
            "transport": len(self.transport_nodes),
            "core": len(self.core_nodes),
            "edge_capacity": self.total_edge_capacity(),
        }
