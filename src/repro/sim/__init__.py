"""Discrete-time simulation engine, sessions, metrics, and the runner."""

from repro.sim.engine import SimulationResult, SlotSimulator, simulate
from repro.sim.metrics import (
    NodeTimeline,
    balance_index,
    cost_breakdown,
    demand_series,
    rejection_rate,
)
from repro.sim.runner import (
    ConfidenceInterval,
    ParallelRunner,
    confidence_interval,
    get_default_runner,
    repeat_runs,
    set_default_runner,
)
from repro.sim.session import SessionSnapshot, SimulationSession, SlotReport

__all__ = [
    "SlotSimulator",
    "SimulationResult",
    "SimulationSession",
    "SessionSnapshot",
    "SlotReport",
    "simulate",
    "rejection_rate",
    "cost_breakdown",
    "balance_index",
    "demand_series",
    "NodeTimeline",
    "ConfidenceInterval",
    "ParallelRunner",
    "confidence_interval",
    "get_default_runner",
    "set_default_runner",
    "repeat_runs",
]
