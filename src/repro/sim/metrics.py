"""Evaluation metrics: rejection rate, cost (Eqs. 3–4), balance index
(Eq. 20), demand time series, and the Fig. 12 per-node timeline.

All request-level metrics take a measurement window ``(start, stop)`` over
arrival slots — the paper reports requests that started between slots 100
and 500 of the 600-slot online phase — and count preempted requests as
rejections (they incur the rejection cost; Sec. III-C).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.apps.application import Application
from repro.errors import SimulationError
from repro.plan.pattern import Plan
from repro.plan.rejection import rejection_factor
from repro.sim.engine import SimulationResult
from repro.substrate.network import NodeId, SubstrateNetwork
from repro.workload.request import Request


def _window(
    result: SimulationResult, window: tuple[int, int] | None
) -> tuple[int, int]:
    if window is None:
        return (0, result.num_slots)
    start, stop = window
    if not 0 <= start < stop <= result.num_slots:
        raise SimulationError(f"invalid measurement window {window}")
    return (start, stop)


def _windowed_requests(
    result: SimulationResult, window: tuple[int, int] | None
):
    start, stop = _window(result, window)
    for decision in result.decisions:
        if start <= decision.request.arrival < stop:
            yield decision


def rejection_rate(
    result: SimulationResult, window: tuple[int, int] | None = None
) -> float:
    """Fraction of requests (arriving in the window) not served.

    Rejected-at-arrival and preempted-after-acceptance both count: neither
    request completed its activity period on the substrate.
    """
    total = 0
    not_served = 0
    for decision in _windowed_requests(result, window):
        total += 1
        if not decision.accepted or decision.request.id in result.preempted_ids:
            not_served += 1
    return not_served / total if total else 0.0


@dataclass(frozen=True)
class CostBreakdown:
    """Total cost split into resource (Eq. 3) and rejection (Eq. 4) parts."""

    resource: float
    rejection: float

    @property
    def total(self) -> float:
        return self.resource + self.rejection


def cost_breakdown(
    result: SimulationResult,
    substrate: SubstrateNetwork,
    apps: list[Application],
    window: tuple[int, int] | None = None,
) -> CostBreakdown:
    """cost_S(x) + Ψ(x) for the run.

    Resource cost sums per-slot loads over the window's slots; rejection
    cost charges Ψ(r) = ψ_{a(r)}·d(r)·T(r) for every rejected or preempted
    request arriving in the window (the paper's conservative ψ — the price
    of the most expensive embedding — comes from
    :func:`repro.plan.rejection.rejection_factor`).
    """
    start, stop = _window(result, window)
    resource = float(result.resource_cost[start:stop].sum())
    psi = {i: rejection_factor(app, substrate) for i, app in enumerate(apps)}
    rejection = 0.0
    for decision in _windowed_requests(result, window):
        request = decision.request
        if not decision.accepted or request.id in result.preempted_ids:
            rejection += (
                psi[request.app_index] * request.demand * request.duration
            )
    return CostBreakdown(resource=resource, rejection=rejection)


def balance_index(
    result: SimulationResult,
    num_apps: int,
    window: tuple[int, int] | None = None,
) -> float:
    """The paper's rejection balance index (Eq. 20).

    A weighted Jain's index over ingress nodes: per node v the vector
    (x_{v,1}, …, x_{v,|A|}) counts rejected requests of each application;
    nodes are weighted by their request count n(v). A node with no
    rejections is perfectly balanced (index 1) by convention — Jain's
    formula is 0/0 there.
    """
    requests_at: dict[NodeId, int] = {}
    rejected: dict[NodeId, np.ndarray] = {}
    for decision in _windowed_requests(result, window):
        request = decision.request
        requests_at[request.ingress] = requests_at.get(request.ingress, 0) + 1
        if not decision.accepted or request.id in result.preempted_ids:
            if request.ingress not in rejected:
                rejected[request.ingress] = np.zeros(num_apps)
            rejected[request.ingress][request.app_index] += 1
    total_requests = sum(requests_at.values())
    if total_requests == 0:
        return 1.0
    weighted = 0.0
    for node, count in requests_at.items():
        x = rejected.get(node)
        if x is None or x.sum() == 0:
            jain = 1.0
        else:
            jain = float(x.sum() ** 2 / (num_apps * (x**2).sum()))
        weighted += count * jain
    return weighted / total_requests


def disruption_rate(
    result: SimulationResult, window: tuple[int, int] | None = None
) -> float:
    """Fraction of the window's requests accepted, then dropped by a
    dynamic event's disruption policy (:mod:`repro.scenarios.events`).

    0.0 for event-free runs. Disrupted requests also count as rejections
    in :func:`rejection_rate` (they never completed); this metric isolates
    the share lost *after* acceptance to failures/drains.

    Caveat: only residual-tracking algorithms attribute drops to events.
    SLOTOFF sheds stranded requests through its next per-slot re-solve,
    which reports them as plain preemptions — its ``disrupted_rate`` stays
    0 and its event losses appear in ``rejection_rate``/``availability``
    instead, so don't compare this column across the two algorithm shapes.
    """
    total = 0
    disrupted = 0
    for decision in _windowed_requests(result, window):
        total += 1
        if decision.accepted and decision.request.id in result.disrupted_ids:
            disrupted += 1
    return disrupted / total if total else 0.0


def availability(
    result: SimulationResult, window: tuple[int, int] | None = None
) -> float:
    """Delivered / promised request-slots over the window's accepted requests.

    An accepted request promises service from arrival to departure (capped
    at the horizon); a preemption or event disruption truncates delivery
    at the slot it happened. 1.0 when every accepted request ran to
    completion — in particular for all event-free, preemption-free runs.
    """
    cut_at = {r.id: t for r, t in result.preemptions}
    promised = 0.0
    delivered = 0.0
    for decision in _windowed_requests(result, window):
        if not decision.accepted:
            continue
        request = decision.request
        stop = min(request.departure, result.num_slots)
        promise = stop - request.arrival
        promised += promise
        cut = cut_at.get(request.id)
        if cut is not None:
            delivered += max(0, min(stop, cut) - request.arrival)
        else:
            delivered += promise
    return delivered / promised if promised else 1.0


def mean_recovery_time(result: SimulationResult) -> float:
    """Mean slots until a disrupted request's service class is served again.

    For each request dropped by a dynamic event at slot ``s``, recovery
    is the gap to the first slot ``t >= s`` in which a request of the
    same (application, ingress) class is *accepted* — that class of users
    is demonstrably being served again. A class that never re-accepts is
    charged the remaining horizon. The mean is over disrupted requests;
    0.0 when no disruption happened.

    Any-arrival-anywhere definitions saturate at 0 at realistic arrival
    rates (some request is always accepted somewhere, even mid-blackout);
    anchoring recovery to the disrupted class makes the metric separate a
    rerouted link flap (same-slot recovery) from an ingress-severing
    blackout (recovery only when the substrate heals).
    """
    if not result.disruptions:
        return 0.0
    accepted_by_class: dict[tuple[int, NodeId], list[int]] = {}
    for decision in result.decisions:
        if decision.accepted:
            accepted_by_class.setdefault(
                decision.request.class_key(), []
            ).append(decision.request.arrival)
    for slots in accepted_by_class.values():
        slots.sort()
    gaps = []
    for request, slot in result.disruptions:
        accepted = accepted_by_class.get(request.class_key(), ())
        position = bisect.bisect_left(accepted, slot)
        if position < len(accepted):
            gaps.append(accepted[position] - slot)
        else:
            gaps.append(result.num_slots - slot)
    return sum(gaps) / len(gaps)


def demand_series(
    result: SimulationResult, window: tuple[int, int] | None = None
) -> dict[str, np.ndarray]:
    """Requested vs allocated demand per slot (the Fig. 8 zoom data)."""
    start, stop = _window(result, window)
    return {
        "slots": np.arange(start, stop),
        "requested": result.requested_demand[start:stop].copy(),
        "allocated": result.allocated_demand[start:stop].copy(),
    }


@dataclass
class RequestTimelineEntry:
    """One request's fate at a node, for the Fig. 12 style timeline."""

    request: Request
    status: str  # "guaranteed" | "borrowed" | "preempted" | "rejected"


@dataclass
class NodeTimeline:
    """Per-application activity at one ingress node (Fig. 12).

    ``guaranteed_demand`` is the plan's per-class guarantee at this node
    (the horizontal dashed line of Fig. 12); ``entries`` classify each
    request; ``active_demand`` gives per-slot totals per application.
    """

    node: NodeId
    num_slots: int
    guaranteed_demand: dict[int, float] = field(default_factory=dict)
    entries: dict[int, list[RequestTimelineEntry]] = field(default_factory=dict)
    active_demand: dict[int, np.ndarray] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        result: SimulationResult,
        plan: Plan,
        node: NodeId,
        num_apps: int,
    ) -> "NodeTimeline":
        timeline = cls(node=node, num_slots=result.num_slots)
        for app_index in range(num_apps):
            class_plan = plan.class_plan((app_index, node))
            timeline.guaranteed_demand[app_index] = (
                class_plan.guaranteed_demand() if class_plan else 0.0
            )
            timeline.entries[app_index] = []
            timeline.active_demand[app_index] = np.zeros(result.num_slots)
        # A preempted request stops consuming capacity at the slot the
        # preemption happened — counting it through its nominal departure
        # would overstate active demand (its resources were released when
        # the preempting planned request arrived).
        preempted_at = {r.id: t for r, t in result.preemptions}
        for decision in result.decisions:
            request = decision.request
            if request.ingress != node:
                continue
            if not decision.accepted:
                status = "rejected"
            elif request.id in result.preempted_ids:
                status = "preempted"
            elif decision.planned:
                status = "guaranteed"
            else:
                status = "borrowed"
            timeline.entries[request.app_index].append(
                RequestTimelineEntry(request=request, status=status)
            )
            if decision.accepted:
                start = request.arrival
                stop = min(request.departure, result.num_slots)
                stop = min(stop, preempted_at.get(request.id, stop))
                timeline.active_demand[request.app_index][start:stop] += (
                    request.demand
                )
        return timeline

    def counts(self, app_index: int) -> dict[str, int]:
        """Status counts for one application at this node."""
        counts: dict[str, int] = {}
        for entry in self.entries.get(app_index, []):
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts
