"""Streaming simulation sessions — the incremental heart of the engine.

The batch :func:`repro.sim.engine.simulate` entry point demands the full
request trace upfront and blocks until the horizon ends. Everything
below it, however, is already incremental: departures, events and
arrivals are applied slot by slot, and every algorithm keeps explicit
residual state. :class:`SimulationSession` exposes that incrementality
as a first-class lifecycle:

* ``submit(request)`` admits an ad-hoc arrival at any future slot —
  the session is an open system, not a replayer;
* ``step()`` / ``run_until(t)`` advance one slot at a time, yielding a
  :class:`SlotReport` per slot (decisions, departures, disruptions,
  demand and cost);
* ``begin_slot()`` / ``process(request)`` / ``close_slot()`` split one
  slot further, so a service layer (:mod:`repro.serve`) can hand
  same-slot arrivals to the algorithm *while the slot is open* and
  return each decision synchronously;
* ``snapshot()`` / :meth:`SimulationSession.restore` checkpoint and
  resume mid-run state — algorithm residuals, pending arrivals, the
  event cursor and all accumulated metrics;
* ``result()`` assembles the exact
  :class:`~repro.sim.engine.SimulationResult` the batch engine returns.

Equivalence contract: driving a session ``step()`` by ``step()`` over a
pre-submitted trace — or restoring a mid-run snapshot and continuing —
is **bit-identical** to ``simulate()`` over the same trace (the batch
wrapper literally runs a session). The differential oracle in
``tests/test_event_oracle.py`` pins this for every algorithm × event
profile.

Per-slot order matches Fig. 2 / OLIVE Algorithm 2 exactly: departures
are released first, then the slot's capacity events are applied, then
arrivals are processed in ``(arrival, id)`` order. Two algorithm shapes
are supported — per-request algorithms (OLIVE, QUICKG, FULLG) expose
``process(request) → Decision`` and may take mid-slot arrivals; batch
algorithms (SLOTOFF) expose ``run_slot(t, arrivals)``, which consumes
the whole slot at ``close_slot()`` time, so they can be stepped and
checkpointed but not offered mid-slot arrivals.
"""

from __future__ import annotations

import bisect
import contextlib
import copy
import pickle
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from repro.core.olive import Decision
from repro.errors import SimulationError
from repro.workload.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.events import EventCursor, EventSchedule
    from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class SlotReport:
    """Everything that happened in one simulated slot.

    ``step()``/``close_slot()`` return one per slot; a service layer
    streams them into rolling metrics. ``preempted``/``disrupted`` list
    the requests dropped in this slot (disrupted is the event-driven
    subset of preempted, mirroring
    :class:`~repro.sim.engine.SimulationResult`).
    """

    slot: int
    decisions: tuple[Decision, ...]
    departures: tuple[Request, ...]
    preempted: tuple[Request, ...]
    disrupted: tuple[Request, ...]
    #: Capacity events applied at the start of this slot.
    num_events: int
    requested_demand: float
    allocated_demand: float
    resource_cost: float
    #: Wall-clock seconds spent inside the algorithm for this slot.
    runtime_seconds: float

    @property
    def num_accepted(self) -> int:
        return sum(1 for d in self.decisions if d.accepted)

    @property
    def num_rejected(self) -> int:
        return len(self.decisions) - self.num_accepted


@dataclass(frozen=True)
class SessionSnapshot:
    """An opaque checkpoint of a session at a slot boundary.

    Holds a deep copy of the whole session (algorithm residuals, pending
    arrivals, event cursor, accumulated metrics), so it is immune to
    later mutation of the live session; :meth:`SimulationSession.restore`
    deep-copies again, so one snapshot can seed any number of resumed
    runs. ``to_bytes()``/``from_bytes()`` round-trip through pickle for
    on-disk checkpoints.
    """

    _session: "SimulationSession"

    @property
    def clock(self) -> int:
        """The next slot the restored session will execute."""
        return self._session.clock

    @property
    def algorithm_name(self) -> str:
        return self._session.algorithm.name

    def to_bytes(self) -> bytes:
        """Serialize the checkpoint (pickle) for on-disk persistence."""
        return pickle.dumps(self._session, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "SessionSnapshot":
        """Rebuild a snapshot previously serialized with :meth:`to_bytes`."""
        session = pickle.loads(payload)
        if not isinstance(session, SimulationSession):
            raise SimulationError(
                "payload does not contain a SimulationSession checkpoint"
            )
        return cls(session)


class SimulationSession:
    """One algorithm driven slot-by-slot over an online request stream.

    ``requests`` seeds the scheduled arrivals (may be empty for a purely
    live session fed through :meth:`submit`/:meth:`process`); ``events``
    is an optional :class:`~repro.scenarios.events.EventSchedule` whose
    workload events transform the seed stream upfront and whose capacity
    events are consumed slot-by-slot through a resumable
    :class:`~repro.scenarios.events.EventCursor`.
    """

    def __init__(
        self,
        algorithm: Any,
        requests: list[Request] | tuple[Request, ...] = (),
        num_slots: int = 0,
        events: "EventSchedule | None" = None,
    ) -> None:
        if num_slots <= 0:
            raise SimulationError(
                f"session needs a positive horizon (got {num_slots} slots)"
            )
        self.algorithm = algorithm
        requests = requests if isinstance(requests, list) else list(requests)
        if events is not None and not events.is_empty:
            # Fail fast on events referencing unknown substrate elements —
            # a bad schedule should not die mid-run with a raw KeyError.
            substrate = getattr(algorithm, "substrate", None)
            if substrate is not None:
                events.validate(substrate)
            # Workload events rewrite the stream deterministically before
            # the run; every compared algorithm sees the identical
            # perturbed trace (the paper's same-trace methodology). The
            # input is not mutated, and the schedule memoizes the
            # transform per input list (identity-keyed — which is why the
            # caller's list goes in as-is), so simulating several
            # algorithms over one stream pays for it once.
            requests = events.transform_requests(requests)
            if events.has_capacity_events and not hasattr(
                algorithm, "apply_events"
            ):
                raise SimulationError(
                    f"algorithm {algorithm.name!r} does not support "
                    "dynamic capacity events (no apply_events method)"
                )
            if events.max_event_slot >= num_slots:
                # Mirror the out-of-horizon request check below: an event
                # (or injected arrival) past the last slot would silently
                # never fire.
                raise SimulationError(
                    f"event schedule needs slot {events.max_event_slot}, "
                    f"beyond the {num_slots}-slot horizon"
                )
            self.events: "EventSchedule | None" = events
        else:
            self.events = None
        self.requests = sorted(requests)
        self.num_slots = num_slots
        for request in self.requests:
            if request.arrival >= num_slots:
                raise SimulationError(
                    f"request {request.id} arrives at {request.arrival}, "
                    f"beyond the {num_slots}-slot horizon"
                )

        self._arrivals_by_slot: dict[int, list[Request]] = {}
        self._departures_by_slot: dict[int, list[Request]] = {}
        for request in self.requests:
            self._arrivals_by_slot.setdefault(request.arrival, []).append(
                request
            )
            if request.departure < num_slots:
                self._departures_by_slot.setdefault(
                    request.departure, []
                ).append(request)
        self._pending_arrivals = len(self.requests)

        self._clock = 0
        self._slot_open = False
        self._is_batch = hasattr(algorithm, "run_slot")
        self._event_cursor: "EventCursor | None" = (
            self.events.cursor() if self.events is not None else None
        )

        # Accumulated run state (what result() assembles).
        self._decisions: list[Decision] = []
        self._preemptions: list[tuple[Request, int]] = []
        self._disruptions: list[tuple[Request, int]] = []
        # Workload events were already consumed transforming the seed
        # stream above; capacity events add to the tally as slots open.
        self._num_workload_events = (
            self.events.num_workload_events if self.events is not None else 0
        )
        self._requested = np.zeros(num_slots)
        self._allocated = np.zeros(num_slots)
        self._resource_cost = np.zeros(num_slots)
        self._runtime = 0.0

        # Per-open-slot scratch (only meaningful while _slot_open).
        self._slot_departures: tuple[Request, ...] = ()
        self._slot_decisions_from = 0
        self._slot_preemptions_from = 0
        self._slot_disruptions_from = 0
        self._slot_events = 0
        self._slot_runtime = 0.0

    # -- introspection -------------------------------------------------------

    @property
    def clock(self) -> int:
        """The slot currently open, or the next slot to execute."""
        return self._clock

    @property
    def slot_open(self) -> bool:
        """Whether a slot is currently open (mid-``begin``/``close``)."""
        return self._slot_open

    @property
    def is_done(self) -> bool:
        """Whether every slot of the horizon has been executed."""
        return self._clock >= self.num_slots and not self._slot_open

    @property
    def supports_streaming(self) -> bool:
        """Whether the algorithm can take mid-slot arrivals (per-request
        shape); batch algorithms (SLOTOFF) consume whole slots only."""
        return not self._is_batch

    @property
    def pending_arrivals(self) -> int:
        """Scheduled arrivals not yet handed to the algorithm — the
        admission queue a service layer bounds (backpressure)."""
        return self._pending_arrivals

    # -- admitting arrivals --------------------------------------------------

    def submit(self, request: Request) -> None:
        """Schedule an ad-hoc arrival for a future slot.

        The request joins the pending arrivals exactly as if it had been
        part of the seed trace: it is processed in ``(arrival, id)``
        order within its slot, its departure releases capacity like any
        other, and an attached schedule's ingress migrations re-home it
        just like they rewrote the seed stream. The target slot must not
        have begun yet — arrivals for the currently open slot go through
        :meth:`process` instead.
        """
        if self.events is not None:
            request = self.events.apply_migrations(request)
        if request.arrival >= self.num_slots:
            raise SimulationError(
                f"request {request.id} arrives at {request.arrival}, "
                f"beyond the {self.num_slots}-slot horizon"
            )
        if request.arrival < self._clock or (
            self._slot_open and request.arrival == self._clock
        ):
            raise SimulationError(
                f"request {request.id} arrives at {request.arrival}, but "
                f"slot {self._clock} has already "
                + ("begun" if self._slot_open else "passed")
                + "; submit() admits future slots only"
            )
        bisect.insort(
            self._arrivals_by_slot.setdefault(request.arrival, []), request
        )
        if request.departure < self.num_slots:
            bisect.insort(
                self._departures_by_slot.setdefault(request.departure, []),
                request,
            )
        self._pending_arrivals += 1

    # -- the slot lifecycle --------------------------------------------------

    def begin_slot(self) -> None:
        """Open the next slot: departures, capacity events, scheduled
        arrivals — everything that happens at slot start, in the batch
        engine's exact order. Mid-slot arrivals may then be handed to
        :meth:`process` until :meth:`close_slot` seals the slot.
        """
        if self._slot_open:
            raise SimulationError(f"slot {self._clock} is already open")
        if self._clock >= self.num_slots:
            raise SimulationError(
                f"session already ran its {self.num_slots}-slot horizon"
            )
        t = self._clock
        arrivals = self._arrivals_by_slot.get(t, ())
        self._pending_arrivals -= len(arrivals)
        self._requested[t] = sum(r.demand for r in arrivals)
        self._slot_departures = tuple(self._departures_by_slot.get(t, ()))
        self._slot_decisions_from = len(self._decisions)
        self._slot_preemptions_from = len(self._preemptions)
        self._slot_disruptions_from = len(self._disruptions)
        self._slot_events = 0
        self._slot_open = True

        algorithm = self.algorithm
        release = algorithm.release
        start = time.perf_counter()  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
        for request in self._slot_departures:
            release(request)
        if self._event_cursor is not None:
            slot_events = self._event_cursor.advance(t)
            if slot_events:
                self._slot_events = len(slot_events)
                dropped = algorithm.apply_events(
                    t, slot_events, self._event_cursor.schedule.policy
                )
                for request in dropped:
                    self._disruptions.append((request, t))
                    self._preemptions.append((request, t))
        on_slot = getattr(algorithm, "on_slot", None)
        if on_slot is not None:
            on_slot(t)
        if not self._is_batch and arrivals:
            # Algorithms exposing the bulk shape (OLIVE and variants)
            # take the whole run at once — the greedy fast path then
            # amortizes its work over the slot via the batch kernel.
            # Decisions and preemption bookkeeping are identical to the
            # per-request loop (process_many is sequential-equivalent).
            process_many = getattr(algorithm, "process_many", None)
            if process_many is not None:
                slot_decisions = process_many(list(arrivals))
                self._decisions.extend(slot_decisions)
                preemptions = self._preemptions
                for decision in slot_decisions:
                    if decision.preempted:
                        preemptions.extend(
                            (r, t) for r in decision.preempted
                        )
            else:
                process = algorithm.process
                append_decision = self._decisions.append
                preemptions = self._preemptions
                for request in arrivals:
                    decision = process(request)
                    append_decision(decision)
                    if decision.preempted:
                        preemptions.extend(
                            (r, t) for r in decision.preempted
                        )
        self._slot_runtime = time.perf_counter() - start  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens

    def process(self, request: Request) -> Decision:
        """Hand one mid-slot arrival to the algorithm, synchronously.

        The slot must be open and the request must arrive in it; batch
        algorithms cannot take mid-slot arrivals (their whole slot is
        solved at once) — :meth:`submit` the request instead. An attached
        schedule's ingress migrations re-home the request exactly like a
        trace arrival in the same window. This is the primitive
        :class:`repro.serve.EmbedderService` micro-batches same-slot
        offers through.
        """
        if self.events is not None:
            request = self.events.apply_migrations(request)
        if not self._slot_open:
            raise SimulationError(
                f"no slot is open (clock at {self._clock}); call "
                "begin_slot() first"
            )
        if self._is_batch:
            raise SimulationError(
                f"algorithm {self.algorithm.name!r} solves whole slots at "
                "once (batch shape) and cannot take mid-slot arrivals; "
                "submit() the request for a future slot instead"
            )
        t = self._clock
        if request.arrival != t:
            raise SimulationError(
                f"request {request.id} arrives at {request.arrival}, but "
                f"the open slot is {t}"
            )
        self._requested[t] += request.demand
        if request.departure < self.num_slots:
            bisect.insort(
                self._departures_by_slot.setdefault(request.departure, []),
                request,
            )
        start = time.perf_counter()  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
        decision = self.algorithm.process(request)
        self._slot_runtime += time.perf_counter() - start  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
        self._decisions.append(decision)
        if decision.preempted:
            self._preemptions.extend((r, t) for r in decision.preempted)
        return decision

    def process_many(
        self,
        requests: list[Request],
        *,
        decide: Callable[[Request], str | None] | None = None,
    ) -> list["Decision | None"]:
        """Hand a same-slot run of arrivals to the algorithm in one call.

        Sequential-equivalent to calling :meth:`process` per request in
        order — identical decisions, identical residual trajectory —
        but the per-offer plumbing (migration application, departure
        registration, timing) is paid once per run, and algorithms
        exposing a ``batched`` window (OLIVE and variants) amortize
        their greedy work over the run via the vectorized batch kernel.

        ``decide`` is an optional admission hook called with each
        *original* request immediately before it would commit (so a
        stateful policy observes exactly the interleaving sequential
        offers would produce); a non-None reason sheds the request —
        the algorithm never sees it and the returned list carries
        ``None`` at its position. This is the primitive
        :meth:`repro.serve.EmbedderService.offer_many` drives.
        """
        if not self._slot_open:
            raise SimulationError(
                f"no slot is open (clock at {self._clock}); call "
                "begin_slot() first"
            )
        if self._is_batch:
            raise SimulationError(
                f"algorithm {self.algorithm.name!r} solves whole slots at "
                "once (batch shape) and cannot take mid-slot arrivals; "
                "submit() the request for a future slot instead"
            )
        if not requests:
            return []
        migrated = (
            [self.events.apply_migrations(r) for r in requests]
            if self.events is not None
            else requests
        )
        algorithm = self.algorithm
        if decide is None:
            bulk = getattr(algorithm, "process_many", None)
            if bulk is not None:
                return self._process_run_bulk(migrated, bulk)
        batched = getattr(algorithm, "batched", None)
        window: Any = (
            batched(migrated) if batched is not None
            else contextlib.nullcontext()
        )
        t = self._clock
        num_slots = self.num_slots
        departures = self._departures_by_slot
        decisions = self._decisions
        preemptions = self._preemptions
        process = algorithm.process
        outcomes: list[Decision | None] = []
        # One accumulator round-trip instead of a numpy scalar add per
        # request; float64 adds in the same order, so the stored value is
        # bit-identical to the sequential path's.
        total = float(self._requested[t])
        start = time.perf_counter()  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
        with window as plan:
            for original, request in zip(requests, migrated):
                if decide is not None:
                    reason = decide(original)
                    if reason is not None:
                        if plan is not None:
                            plan.mark_done(request)
                        outcomes.append(None)
                        continue
                if request.arrival != t:
                    raise SimulationError(
                        f"request {request.id} arrives at "
                        f"{request.arrival}, but the open slot is {t}"
                    )
                total += request.demand
                if request.departure < num_slots:
                    bisect.insort(
                        departures.setdefault(request.departure, []),
                        request,
                    )
                decision = process(request)
                decisions.append(decision)
                if decision.preempted:
                    preemptions.extend((r, t) for r in decision.preempted)
                if plan is not None:
                    plan.mark_done(request)
                outcomes.append(decision)
        self._slot_runtime += time.perf_counter() - start  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
        self._requested[t] = total
        return outcomes

    def _process_run_bulk(
        self,
        migrated: list[Request],
        bulk: Callable[[list[Request]], list[Decision]],
    ) -> list["Decision | None"]:
        """No-shed run: session bookkeeping up front, then one bulk call.

        With no admission hook there is nothing to interleave, so the
        whole run goes through the algorithm's own ``process_many`` —
        the exact call :meth:`begin_slot` makes for scheduled arrivals —
        instead of a per-request session loop. Bookkeeping is identical:
        the demand accumulator adds in arrival order (bit-identical
        float sum) and departure registration happens before processing,
        which nothing in the open slot observes.
        """
        t = self._clock
        num_slots = self.num_slots
        departures = self._departures_by_slot
        total = float(self._requested[t])
        for request in migrated:
            if request.arrival != t:
                raise SimulationError(
                    f"request {request.id} arrives at "
                    f"{request.arrival}, but the open slot is {t}"
                )
            total += request.demand
            if request.departure < num_slots:
                bisect.insort(
                    departures.setdefault(request.departure, []),
                    request,
                )
        self._requested[t] = total
        start = time.perf_counter()  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
        slot_decisions = bulk(migrated)
        self._slot_runtime += time.perf_counter() - start  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
        self._decisions.extend(slot_decisions)
        preemptions = self._preemptions
        for decision in slot_decisions:
            if decision.preempted:
                preemptions.extend((r, t) for r in decision.preempted)
        outcomes: list[Decision | None] = list(slot_decisions)
        return outcomes

    def close_slot(self) -> SlotReport:
        """Seal the open slot: run a batch algorithm's slot solve, record
        the per-slot metrics, advance the clock, and report the slot."""
        if not self._slot_open:
            raise SimulationError(
                f"no slot is open (clock at {self._clock}); nothing to close"
            )
        t = self._clock
        if self._is_batch:
            arrivals = self._arrivals_by_slot.get(t, ())
            start = time.perf_counter()  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
            slot_result = self.algorithm.run_slot(t, list(arrivals))
            self._slot_runtime += time.perf_counter() - start  # repro-lint: allow[RPR003] feeds SlotReport.runtime -> slots_per_second/requests_per_second, key-only in goldens
            self._decisions.extend(slot_result.decisions)
            self._preemptions.extend((r, t) for r in slot_result.dropped)
        self._allocated[t] = self.algorithm.active_demand()
        self._resource_cost[t] = self.algorithm.active_cost_per_slot()
        self._runtime += self._slot_runtime
        report = SlotReport(
            slot=t,
            decisions=tuple(self._decisions[self._slot_decisions_from:]),
            departures=self._slot_departures,
            preempted=tuple(
                r for r, _ in self._preemptions[self._slot_preemptions_from:]
            ),
            disrupted=tuple(
                r for r, _ in self._disruptions[self._slot_disruptions_from:]
            ),
            num_events=self._slot_events,
            requested_demand=float(self._requested[t]),
            allocated_demand=float(self._allocated[t]),
            resource_cost=float(self._resource_cost[t]),
            runtime_seconds=self._slot_runtime,
        )
        self._slot_open = False
        self._slot_departures = ()
        self._slot_runtime = 0.0
        self._clock = t + 1
        return report

    def step(self) -> SlotReport:
        """Execute the next slot end-to-end and report it."""
        self.begin_slot()
        return self.close_slot()

    def run_until(self, slot: int) -> list[SlotReport]:
        """Execute slots until the clock reaches ``slot`` (exclusive).

        Returns one :class:`SlotReport` per executed slot; a no-op (empty
        list) when the clock is already there.
        """
        if self._slot_open:
            raise SimulationError(
                f"slot {self._clock} is open; close_slot() before advancing"
            )
        if slot > self.num_slots:
            raise SimulationError(
                f"run_until({slot}) exceeds the {self.num_slots}-slot horizon"
            )
        if slot < self._clock:
            raise SimulationError(
                f"run_until({slot}) lies in the past (clock at {self._clock})"
            )
        return [self.step() for _ in range(slot - self._clock)]

    def run(self) -> "SimulationResult":
        """Execute every remaining slot and assemble the final result."""
        self.run_until(self.num_slots)
        return self.result()

    def __iter__(self) -> Iterator[SlotReport]:
        """Yield one :class:`SlotReport` per remaining slot."""
        while not self.is_done:
            yield self.step()

    # -- results -------------------------------------------------------------

    def result(self) -> "SimulationResult":
        """Assemble the accumulated state into a
        :class:`~repro.sim.engine.SimulationResult`.

        After a full run this is bit-identical to what the batch engine
        returns for the same stream. Mid-run it is a valid partial
        result: per-slot arrays beyond the clock are still zero, and
        ``num_slots`` remains the full horizon.
        """
        if self._slot_open:
            raise SimulationError(
                f"slot {self._clock} is open; close_slot() before result()"
            )
        from repro.sim.engine import SimulationResult

        num_events = self._num_workload_events
        if self._event_cursor is not None:
            num_events += self._event_cursor.consumed
        return SimulationResult(
            algorithm_name=self.algorithm.name,
            num_slots=self.num_slots,
            decisions=list(self._decisions),
            preemptions=list(self._preemptions),
            requested_demand=self._requested.copy(),
            allocated_demand=self._allocated.copy(),
            resource_cost=self._resource_cost.copy(),
            runtime_seconds=self._runtime,
            disruptions=list(self._disruptions),
            num_events=num_events,
        )

    # -- checkpoint / resume -------------------------------------------------

    def snapshot(self) -> SessionSnapshot:
        """Checkpoint the full mid-run state at a slot boundary.

        Everything the run depends on is captured by value — algorithm
        residuals (and the greedy path cache), pending arrivals, the
        event cursor, accumulated decisions and metric arrays — so
        restoring and continuing is bit-identical to never having
        stopped. Snapshots are only available between slots (open slots
        hold half-applied state).
        """
        if self._slot_open:
            raise SimulationError(
                f"slot {self._clock} is open; close_slot() before snapshot()"
            )
        return SessionSnapshot(copy.deepcopy(self))

    @classmethod
    def restore(cls, snapshot: SessionSnapshot) -> "SimulationSession":
        """A live session resumed from a checkpoint.

        The snapshot itself stays pristine — restore deep-copies, so the
        same checkpoint can seed several resumed runs (e.g. replaying a
        tail under different what-if submissions).
        """
        session = copy.deepcopy(snapshot._session)
        if not isinstance(session, cls):
            raise SimulationError(
                f"snapshot holds a {type(session).__name__}, "
                f"not a {cls.__name__}"
            )
        return session

    def __repr__(self) -> str:
        state = "open" if self._slot_open else "idle"
        return (
            f"SimulationSession({self.algorithm.name!r}, "
            f"slot {self._clock}/{self.num_slots} {state}, "
            f"{self._pending_arrivals} pending)"
        )
