"""The slot-based simulator driving online algorithms (Fig. 2 semantics).

Each slot: departures are released first (OLIVE Algorithm 2 line 5), then
arrivals are processed one by one in arrival order. Two algorithm shapes
are supported:

* per-request algorithms (OLIVE, QUICKG, FULLG) expose
  ``process(request) → Decision``;
* batch algorithms (SLOTOFF) expose ``run_slot(t, arrivals) → SlotResult``.

Both expose ``release(request)``, ``active_demand()`` and
``active_cost_per_slot()``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.olive import Decision
from repro.errors import SimulationError
from repro.workload.request import Request


@dataclass
class SimulationResult:
    """Everything an experiment needs from one simulation run."""

    algorithm_name: str
    num_slots: int
    decisions: list[Decision]
    #: Requests preempted after acceptance, with the slot it happened.
    preemptions: list[tuple[Request, int]]
    #: Per-slot total demand of requests arriving in that slot.
    requested_demand: np.ndarray
    #: Per-slot demand of currently embedded (active) requests.
    allocated_demand: np.ndarray
    #: Per-slot resource cost Σ_s load(s)·cost(s).
    resource_cost: np.ndarray
    #: Wall-clock seconds spent inside the algorithm (runtime metric).
    runtime_seconds: float

    #: request id → Decision, for per-request lookups.
    decision_by_id: dict[int, Decision] = field(default_factory=dict)
    #: ids of requests that were preempted after acceptance.
    preempted_ids: set[int] = field(default_factory=set)
    #: Number of requests processed (== len(decisions)).
    num_requests: int = 0

    def __post_init__(self) -> None:
        if not self.decision_by_id:
            self.decision_by_id = {d.request.id: d for d in self.decisions}
        if not self.preempted_ids:
            self.preempted_ids = {r.id for r, _ in self.preemptions}
        if not self.num_requests:
            self.num_requests = len(self.decisions)

    @property
    def slots_per_second(self) -> float:
        """Hot-path throughput in simulated slots per algorithm second."""
        return self.num_slots / max(self.runtime_seconds, 1e-12)

    @property
    def requests_per_second(self) -> float:
        """Hot-path throughput in requests per algorithm second."""
        return self.num_requests / max(self.runtime_seconds, 1e-12)

    def served(self, request: Request) -> bool:
        """Accepted and never preempted."""
        decision = self.decision_by_id.get(request.id)
        return (
            decision is not None
            and decision.accepted
            and request.id not in self.preempted_ids
        )


class SlotSimulator:
    """Drives one algorithm over one online request stream."""

    def __init__(
        self,
        algorithm,
        requests: list[Request],
        num_slots: int,
    ) -> None:
        self.algorithm = algorithm
        self.requests = sorted(requests)
        self.num_slots = num_slots
        for request in self.requests:
            if request.arrival >= num_slots:
                raise SimulationError(
                    f"request {request.id} arrives at {request.arrival}, "
                    f"beyond the {num_slots}-slot horizon"
                )

    def run(self) -> SimulationResult:
        arrivals_by_slot: dict[int, list[Request]] = {}
        departures_by_slot: dict[int, list[Request]] = {}
        for request in self.requests:
            arrivals_by_slot.setdefault(request.arrival, []).append(request)
            if request.departure < self.num_slots:
                departures_by_slot.setdefault(request.departure, []).append(
                    request
                )

        decisions: list[Decision] = []
        preemptions: list[tuple[Request, int]] = []
        requested = np.zeros(self.num_slots)
        allocated = np.zeros(self.num_slots)
        resource_cost = np.zeros(self.num_slots)
        runtime = 0.0
        is_batch = hasattr(self.algorithm, "run_slot")
        release = self.algorithm.release
        process = None if is_batch else self.algorithm.process
        on_slot = getattr(self.algorithm, "on_slot", None)
        append_decision = decisions.append
        no_departures: list[Request] = []
        no_arrivals: list[Request] = []

        for t in range(self.num_slots):
            arrivals = arrivals_by_slot.get(t, no_arrivals)
            requested[t] = sum(r.demand for r in arrivals)

            start = time.perf_counter()
            for request in departures_by_slot.get(t, no_departures):
                release(request)
            if on_slot is not None:
                on_slot(t)
            if is_batch:
                slot_result = self.algorithm.run_slot(t, arrivals)
                decisions.extend(slot_result.decisions)
                preemptions.extend((r, t) for r in slot_result.dropped)
            else:
                for request in arrivals:
                    decision = process(request)
                    append_decision(decision)
                    if decision.preempted:
                        preemptions.extend(
                            (r, t) for r in decision.preempted
                        )
            runtime += time.perf_counter() - start

            allocated[t] = self.algorithm.active_demand()
            resource_cost[t] = self.algorithm.active_cost_per_slot()

        return SimulationResult(
            algorithm_name=self.algorithm.name,
            num_slots=self.num_slots,
            decisions=decisions,
            preemptions=preemptions,
            requested_demand=requested,
            allocated_demand=allocated,
            resource_cost=resource_cost,
            runtime_seconds=runtime,
        )


def simulate(algorithm, requests: list[Request], num_slots: int) -> SimulationResult:
    """Convenience wrapper: build a :class:`SlotSimulator` and run it."""
    return SlotSimulator(algorithm, requests, num_slots).run()
