"""The slot-based simulator driving online algorithms (Fig. 2 semantics).

Each slot: departures are released first (OLIVE Algorithm 2 line 5), then
dynamic events are applied (if an :class:`~repro.scenarios.events.
EventSchedule` is attached), then arrivals are processed one by one in
arrival order. Two algorithm shapes are supported:

* per-request algorithms (OLIVE, QUICKG, FULLG) expose
  ``process(request) → Decision``;
* batch algorithms (SLOTOFF) expose ``run_slot(t, arrivals) → SlotResult``.

Both expose ``release(request)``, ``active_demand()`` and
``active_cost_per_slot()``. Algorithms that support capacity events
additionally expose ``apply_events(t, events, policy) → list[Request]``
(the requests dropped by the disruption policy); workload events (flash
crowds, ingress migrations) need no algorithm support — they transform
the request stream before the run starts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.olive import Decision
from repro.errors import SimulationError
from repro.workload.request import Request


@dataclass
class SimulationResult:
    """Everything an experiment needs from one simulation run."""

    algorithm_name: str
    num_slots: int
    decisions: list[Decision]
    #: Requests preempted after acceptance, with the slot it happened.
    preemptions: list[tuple[Request, int]]
    #: Per-slot total demand of requests arriving in that slot.
    requested_demand: np.ndarray
    #: Per-slot demand of currently embedded (active) requests.
    allocated_demand: np.ndarray
    #: Per-slot resource cost Σ_s load(s)·cost(s).
    resource_cost: np.ndarray
    #: Wall-clock seconds spent inside the algorithm (runtime metric).
    runtime_seconds: float

    #: request id → Decision, for per-request lookups.
    decision_by_id: dict[int, Decision] = field(default_factory=dict)
    #: ids of requests that were preempted after acceptance.
    preempted_ids: set[int] = field(default_factory=set)
    #: Number of requests processed (== len(decisions)).
    num_requests: int = 0
    #: Accepted requests dropped by a dynamic event's disruption policy,
    #: with the slot it happened. A subset of :attr:`preemptions` — a
    #: disrupted request also counts as preempted (it never completed).
    disruptions: list[tuple[Request, int]] = field(default_factory=list)
    #: ids of requests dropped by dynamic events.
    disrupted_ids: set[int] = field(default_factory=set)
    #: Number of dynamic events the schedule contributed to this run:
    #: capacity events applied slot-by-slot plus workload events
    #: (flash crowds, migrations) consumed when the request stream was
    #: transformed before the run.
    num_events: int = 0

    def __post_init__(self) -> None:
        if not self.decision_by_id:
            self.decision_by_id = {d.request.id: d for d in self.decisions}
        if not self.preempted_ids:
            self.preempted_ids = {r.id for r, _ in self.preemptions}
        if not self.num_requests:
            self.num_requests = len(self.decisions)
        if not self.disrupted_ids:
            self.disrupted_ids = {r.id for r, _ in self.disruptions}

    @property
    def slots_per_second(self) -> float:
        """Hot-path throughput in simulated slots per algorithm second."""
        return self.num_slots / max(self.runtime_seconds, 1e-12)

    @property
    def requests_per_second(self) -> float:
        """Hot-path throughput in requests per algorithm second."""
        return self.num_requests / max(self.runtime_seconds, 1e-12)

    def served(self, request: Request) -> bool:
        """Accepted and never preempted."""
        decision = self.decision_by_id.get(request.id)
        return (
            decision is not None
            and decision.accepted
            and request.id not in self.preempted_ids
        )


class SlotSimulator:
    """Drives one algorithm over one online request stream."""

    def __init__(
        self,
        algorithm,
        requests: list[Request],
        num_slots: int,
        events=None,
    ) -> None:
        self.algorithm = algorithm
        if events is not None and not events.is_empty:
            # Fail fast on events referencing unknown substrate elements —
            # a bad schedule should not die mid-run with a raw KeyError.
            substrate = getattr(algorithm, "substrate", None)
            if substrate is not None:
                events.validate(substrate)
            # Workload events rewrite the stream deterministically before
            # the run; every compared algorithm sees the identical
            # perturbed trace (the paper's same-trace methodology). The
            # input is not mutated, and the schedule memoizes the
            # transform per input list, so simulating several algorithms
            # over one stream pays for it once.
            requests = events.transform_requests(requests)
            if events.has_capacity_events and not hasattr(
                algorithm, "apply_events"
            ):
                raise SimulationError(
                    f"algorithm {algorithm.name!r} does not support "
                    "dynamic capacity events (no apply_events method)"
                )
            if events.max_event_slot >= num_slots:
                # Mirror the out-of-horizon request check below: an event
                # (or injected arrival) past the last slot would silently
                # never fire.
                raise SimulationError(
                    f"event schedule needs slot {events.max_event_slot}, "
                    f"beyond the {num_slots}-slot horizon"
                )
            self.events = events
        else:
            self.events = None
        self.requests = sorted(requests)
        self.num_slots = num_slots
        for request in self.requests:
            if request.arrival >= num_slots:
                raise SimulationError(
                    f"request {request.id} arrives at {request.arrival}, "
                    f"beyond the {num_slots}-slot horizon"
                )

    def run(self) -> SimulationResult:
        arrivals_by_slot: dict[int, list[Request]] = {}
        departures_by_slot: dict[int, list[Request]] = {}
        for request in self.requests:
            arrivals_by_slot.setdefault(request.arrival, []).append(request)
            if request.departure < self.num_slots:
                departures_by_slot.setdefault(request.departure, []).append(
                    request
                )

        decisions: list[Decision] = []
        preemptions: list[tuple[Request, int]] = []
        disruptions: list[tuple[Request, int]] = []
        # Workload events were already consumed transforming the request
        # stream in __init__; capacity events add to the tally as the loop
        # applies them.
        num_events = (
            self.events.num_workload_events if self.events is not None else 0
        )
        requested = np.zeros(self.num_slots)
        allocated = np.zeros(self.num_slots)
        resource_cost = np.zeros(self.num_slots)
        runtime = 0.0
        is_batch = hasattr(self.algorithm, "run_slot")
        release = self.algorithm.release
        process = None if is_batch else self.algorithm.process
        on_slot = getattr(self.algorithm, "on_slot", None)
        append_decision = decisions.append
        no_departures: list[Request] = []
        no_arrivals: list[Request] = []

        for t in range(self.num_slots):
            arrivals = arrivals_by_slot.get(t, no_arrivals)
            requested[t] = sum(r.demand for r in arrivals)

            start = time.perf_counter()
            for request in departures_by_slot.get(t, no_departures):
                release(request)
            if self.events is not None:
                slot_events = self.events.capacity_events_at(t)
                if slot_events:
                    num_events += len(slot_events)
                    dropped = self.algorithm.apply_events(
                        t, slot_events, self.events.policy
                    )
                    for request in dropped:
                        disruptions.append((request, t))
                        preemptions.append((request, t))
            if on_slot is not None:
                on_slot(t)
            if is_batch:
                slot_result = self.algorithm.run_slot(t, arrivals)
                decisions.extend(slot_result.decisions)
                preemptions.extend((r, t) for r in slot_result.dropped)
            else:
                for request in arrivals:
                    decision = process(request)
                    append_decision(decision)
                    if decision.preempted:
                        preemptions.extend(
                            (r, t) for r in decision.preempted
                        )
            runtime += time.perf_counter() - start

            allocated[t] = self.algorithm.active_demand()
            resource_cost[t] = self.algorithm.active_cost_per_slot()

        return SimulationResult(
            algorithm_name=self.algorithm.name,
            num_slots=self.num_slots,
            decisions=decisions,
            preemptions=preemptions,
            requested_demand=requested,
            allocated_demand=allocated,
            resource_cost=resource_cost,
            runtime_seconds=runtime,
            disruptions=disruptions,
            num_events=num_events,
        )


def simulate(
    algorithm,
    requests: list[Request],
    num_slots: int,
    events=None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SlotSimulator` and run it.

    ``events`` is an optional
    :class:`~repro.scenarios.events.EventSchedule` the simulation
    consumes slot-by-slot.
    """
    return SlotSimulator(algorithm, requests, num_slots, events=events).run()
