"""The batch simulation entry points and the result they assemble.

Since the streaming-session redesign, the slot loop itself lives in
:mod:`repro.sim.session` — :class:`SlotSimulator` and :func:`simulate`
are thin wrappers that build a :class:`~repro.sim.session.
SimulationSession` over the full request trace and run it to the
horizon. The semantics (Fig. 2) are unchanged: each slot releases
departures first (OLIVE Algorithm 2 line 5), then applies dynamic
events (if an :class:`~repro.scenarios.events.EventSchedule` is
attached), then processes arrivals in arrival order. Two algorithm
shapes are supported:

* per-request algorithms (OLIVE, QUICKG, FULLG) expose
  ``process(request) → Decision``;
* batch algorithms (SLOTOFF) expose ``run_slot(t, arrivals) → SlotResult``.

Both expose ``release(request)``, ``active_demand()`` and
``active_cost_per_slot()``. Algorithms that support capacity events
additionally expose ``apply_events(t, events, policy) → list[Request]``
(the requests dropped by the disruption policy); workload events (flash
crowds, ingress migrations) need no algorithm support — they transform
the request stream before the run starts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.olive import Decision
from repro.workload.request import Request


@dataclass
class SimulationResult:
    """Everything an experiment needs from one simulation run."""

    algorithm_name: str
    num_slots: int
    decisions: list[Decision]
    #: Requests preempted after acceptance, with the slot it happened.
    preemptions: list[tuple[Request, int]]
    #: Per-slot total demand of requests arriving in that slot.
    requested_demand: np.ndarray
    #: Per-slot demand of currently embedded (active) requests.
    allocated_demand: np.ndarray
    #: Per-slot resource cost Σ_s load(s)·cost(s).
    resource_cost: np.ndarray
    #: Wall-clock seconds spent inside the algorithm (runtime metric).
    runtime_seconds: float

    # Derived fields: ``None`` means "compute from the primary fields" —
    # an explicitly passed value (including an empty dict/set or 0) is
    # kept as given, so callers can assert unusual shapes in tests.
    #: request id → Decision, for per-request lookups.
    decision_by_id: dict[int, Decision] | None = None
    #: ids of requests that were preempted after acceptance.
    preempted_ids: set[int] | None = None
    #: Number of requests processed (== len(decisions)).
    num_requests: int | None = None
    #: Accepted requests dropped by a dynamic event's disruption policy,
    #: with the slot it happened. A subset of :attr:`preemptions` — a
    #: disrupted request also counts as preempted (it never completed).
    disruptions: list[tuple[Request, int]] | None = None
    #: ids of requests dropped by dynamic events.
    disrupted_ids: set[int] | None = None
    #: Number of dynamic events the schedule contributed to this run:
    #: capacity events applied slot-by-slot plus workload events
    #: (flash crowds, migrations) consumed when the request stream was
    #: transformed before the run.
    num_events: int = 0

    def __post_init__(self) -> None:
        if self.decision_by_id is None:
            self.decision_by_id = {d.request.id: d for d in self.decisions}
        if self.preempted_ids is None:
            self.preempted_ids = {r.id for r, _ in self.preemptions}
        if self.num_requests is None:
            self.num_requests = len(self.decisions)
        if self.disruptions is None:
            self.disruptions = []
        if self.disrupted_ids is None:
            self.disrupted_ids = {r.id for r, _ in self.disruptions}

    @property
    def slots_per_second(self) -> float:
        """Hot-path throughput in simulated slots per algorithm second.

        0.0 on a run whose recorded runtime is zero (nothing meaningful
        to report) rather than an astronomically large artifact.
        """
        if self.runtime_seconds <= 0.0:
            return 0.0
        return self.num_slots / self.runtime_seconds

    @property
    def requests_per_second(self) -> float:
        """Hot-path throughput in requests per algorithm second.

        0.0 on a run whose recorded runtime is zero, like
        :attr:`slots_per_second`.
        """
        if self.runtime_seconds <= 0.0:
            return 0.0
        return self.num_requests / self.runtime_seconds

    def served(self, request: Request) -> bool:
        """Accepted and never preempted."""
        decision = self.decision_by_id.get(request.id)
        return (
            decision is not None
            and decision.accepted
            and request.id not in self.preempted_ids
        )


class SlotSimulator:
    """Drives one algorithm over one online request stream (batch shape).

    A thin wrapper over :class:`~repro.sim.session.SimulationSession`:
    the constructor performs the same validation (and workload-event
    stream transform) as always, and :meth:`run` executes every slot of
    the horizon in one call. Use a session directly for streaming,
    ad-hoc submissions, or checkpoint/resume.
    """

    def __init__(
        self,
        algorithm,
        requests: list[Request],
        num_slots: int,
        events=None,
    ) -> None:
        from repro.sim.session import SimulationSession

        self.session = SimulationSession(
            algorithm, requests, num_slots, events=events
        )
        self.algorithm = algorithm
        #: The sorted (and workload-event-transformed) request stream.
        self.requests = self.session.requests
        self.num_slots = num_slots
        self.events = self.session.events

    def run(self) -> SimulationResult:
        return self.session.run()


def simulate(
    algorithm,
    requests: list[Request],
    num_slots: int,
    events=None,
) -> SimulationResult:
    """Convenience wrapper: run a full-horizon batch simulation.

    ``events`` is an optional
    :class:`~repro.scenarios.events.EventSchedule` the simulation
    consumes slot-by-slot.
    """
    return SlotSimulator(algorithm, requests, num_slots, events=events).run()
