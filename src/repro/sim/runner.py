"""Multi-repetition experiment runner with confidence intervals.

The paper executes every configuration 30 times and reports averages with
confidence intervals; :func:`repeat_runs` is the generic loop and
:func:`confidence_interval` the Student-t interval used for the error bars.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import SimulationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """Sample mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.low <= other.high and other.low <= self.high


def confidence_interval(
    values, confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval of the sample mean."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise SimulationError("cannot summarize an empty sample")
    mean = float(array.mean())
    if array.size == 1:
        return ConfidenceInterval(
            mean=mean, half_width=0.0, confidence=confidence, count=1
        )
    sem = float(array.std(ddof=1) / np.sqrt(array.size))
    t_value = float(stats.t.ppf(0.5 + confidence / 2.0, df=array.size - 1))
    return ConfidenceInterval(
        mean=mean,
        half_width=t_value * sem,
        confidence=confidence,
        count=int(array.size),
    )


def repeat_runs(
    run: Callable[[int], dict[str, float]],
    repetitions: int,
    base_seed: int = 0,
) -> dict[str, ConfidenceInterval]:
    """Execute ``run(seed)`` for consecutive seeds and summarize each metric.

    ``run`` returns a flat metric dict; all repetitions must return the
    same keys.
    """
    if repetitions < 1:
        raise SimulationError("need at least one repetition")
    samples: dict[str, list[float]] = {}
    for repetition in range(repetitions):
        metrics = run(base_seed + repetition)
        if samples and set(metrics) != set(samples):
            raise SimulationError(
                "repetitions returned inconsistent metric keys"
            )
        for key, value in metrics.items():
            samples.setdefault(key, []).append(float(value))
    return {key: confidence_interval(values) for key, values in samples.items()}
