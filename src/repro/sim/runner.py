"""Multi-repetition experiment runner with confidence intervals.

The paper executes every configuration 30 times and reports averages with
confidence intervals; :class:`ParallelRunner` is the generic repetition
engine (serial at ``jobs=1``, a process pool otherwise) and
:func:`confidence_interval` the Student-t interval used for the error bars.

Repetitions are embarrassingly parallel: repetition ``i`` is fully
determined by ``base_seed + i``, so the runner produces bit-identical
metric samples — and therefore bit-identical
:class:`ConfidenceInterval` results — regardless of the job count. The
one exception is metrics that *measure* wall-clock time (the drivers'
``:runtime`` keys): those are genuine timings, never deterministic, and
parallel workers sharing cores will distort them.
:func:`repeat_runs` is kept as the serial-equivalent convenience wrapper.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import SimulationError

#: Type of one repetition: ``run(seed) -> {metric: value}``.
RunFn = Callable[[int], dict[str, float]]


@dataclass(frozen=True)
class ConfidenceInterval:
    """Sample mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.low <= other.high and other.low <= self.high


def confidence_interval(
    values: Iterable[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval of the sample mean."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise SimulationError("cannot summarize an empty sample")
    mean = float(array.mean())
    if array.size == 1:
        return ConfidenceInterval(
            mean=mean, half_width=0.0, confidence=confidence, count=1
        )
    sem = float(array.std(ddof=1) / np.sqrt(array.size))
    t_value = float(stats.t.ppf(0.5 + confidence / 2.0, df=array.size - 1))
    return ConfidenceInterval(
        mean=mean,
        half_width=t_value * sem,
        confidence=confidence,
        count=int(array.size),
    )


def _aggregate(
    metric_dicts: Sequence[dict[str, float]],
) -> dict[str, ConfidenceInterval]:
    """Summarize per-repetition metric dicts, in repetition order.

    All repetitions must return the same metric keys; a mismatch names the
    offending repetition and the exact key difference.
    """
    samples: dict[str, list[float]] = {}
    expected: set[str] | None = None
    for repetition, metrics in enumerate(metric_dicts):
        got = set(metrics)
        if expected is None:
            expected = got
        elif got != expected:
            missing = sorted(expected - got)
            unexpected = sorted(got - expected)
            parts = []
            if missing:
                parts.append(f"missing {missing}")
            if unexpected:
                parts.append(f"unexpected {unexpected}")
            raise SimulationError(
                f"repetition {repetition} returned inconsistent metric "
                f"keys: {', '.join(parts)} (relative to repetition 0)"
            )
        for key, value in metrics.items():
            samples.setdefault(key, []).append(float(value))
    return {key: confidence_interval(values) for key, values in samples.items()}


@dataclass(frozen=True)
class ParallelRunner:
    """Fans seeded repetitions out over a process pool.

    ``jobs=1`` is a deterministic serial fallback (no pool, no pickling
    requirement); ``jobs>1`` maps seeds over a
    :class:`~concurrent.futures.ProcessPoolExecutor`, which requires the
    run callable to be picklable (a module-level function or a dataclass
    with ``__call__``). Results are aggregated in repetition order either
    way, so the summaries are identical for every job count.
    """

    jobs: int = 1

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise SimulationError("jobs must be >= 1")

    @classmethod
    def from_jobs(cls, jobs: int | None) -> "ParallelRunner":
        """``jobs=None``/``0`` means "one job per CPU"."""
        if not jobs:
            jobs = os.cpu_count() or 1
        return cls(jobs=jobs)

    def repeat(
        self,
        run: RunFn,
        repetitions: int,
        base_seed: int = 0,
    ) -> dict[str, ConfidenceInterval]:
        """Execute ``run(seed)`` for consecutive seeds and summarize.

        ``run`` returns a flat metric dict; all repetitions must return
        the same keys.
        """
        if repetitions < 1:
            raise SimulationError("need at least one repetition")
        seeds = [base_seed + repetition for repetition in range(repetitions)]
        workers = min(self.jobs, repetitions)
        if workers == 1:
            metric_dicts = [run(seed) for seed in seeds]
        else:
            try:
                metric_dicts = list(_shared_pool(workers).map(run, seeds))
            except BrokenProcessPool:
                # A dead worker poisons the whole executor; evict it so
                # the next repeat() gets a fresh pool. Shut the broken
                # executor down too — surviving workers would otherwise
                # linger as orphaned processes.
                pool = _pools.pop(workers, None)  # repro-lint: allow[RPS102] parent-only by construction: _shared_pool (the sole pool creator) raises in workers, so this handler can only run in the parent that owns _pools
                if pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                raise
        return _aggregate(metric_dicts)


#: Long-lived executors keyed by worker count — sweeps call ``repeat()``
#: once per point, and re-spawning workers (which re-import numpy/scipy)
#: for every point would dominate small runs. Reaped at interpreter exit.
#:
#: RPS102 contract: this table (and ``_default_runner`` below) is
#: **parent-process-only** state. Every pool worker imports this module
#: and owns a private copy; a worker mutating its copy would silently
#: diverge from the parent. ``_require_parent_process`` makes that
#: contract loud at runtime, and each deliberate write below carries an
#: ``allow[RPS102]`` suppression citing it.
_pools: dict[int, ProcessPoolExecutor] = {}


def _require_parent_process(what: str) -> None:
    """Fail loudly when pool/runner module state is touched in a worker.

    ``_pools`` and ``_default_runner`` exist once per process; only the
    parent's copies mean anything. Nesting pools inside workers would
    also fork from an inconsistent executor state — refuse outright.
    """
    if multiprocessing.parent_process() is not None:
        raise SimulationError(
            f"{what} is parent-process-only: pool workers hold private "
            "copies of repro.sim.runner's module state (_pools, "
            "_default_runner), and mutating them inside a worker "
            "silently diverges across processes"
        )


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    _require_parent_process("creating a shared process pool")
    pool = _pools.get(workers)
    if pool is None:
        pool = _pools[workers] = ProcessPoolExecutor(max_workers=workers)  # repro-lint: allow[RPS102] guarded by _require_parent_process above — only the parent ever populates the executor table
    return pool


def shutdown_pools(wait: bool = True) -> int:
    """Shut down every shared executor; returns how many were closed.

    Tests (and long-lived embedders) use this to reap worker processes
    deterministically instead of relying on interpreter-exit cleanup.
    """
    closed = 0
    while _pools:
        _, pool = _pools.popitem()  # repro-lint: allow[RPS102] reaps the parent's executor table; a worker's copy is always empty (workers cannot create pools — _shared_pool raises there)
        pool.shutdown(wait=wait, cancel_futures=True)
        closed += 1
    return closed


#: Process-wide runner used when a driver is not handed one explicitly;
#: the CLI's ``--jobs`` flag swaps it out.
_default_runner = ParallelRunner(jobs=1)


def get_default_runner() -> ParallelRunner:
    """The runner used by drivers when none is passed explicitly."""
    return _default_runner


def set_default_runner(runner: ParallelRunner) -> ParallelRunner:
    """Replace the process-wide default runner; returns the previous one.

    Parent-process-only (see ``_require_parent_process``): a worker
    swapping its private copy would change nothing in the parent and
    desynchronize job counts across the pool.
    """
    _require_parent_process("set_default_runner")
    global _default_runner
    previous = _default_runner
    _default_runner = runner  # repro-lint: allow[RPS102] guarded by _require_parent_process above — the CLI swaps the parent's default runner before any pool exists
    return previous


def repeat_runs(
    run: RunFn,
    repetitions: int,
    base_seed: int = 0,
) -> dict[str, ConfidenceInterval]:
    """Serial-equivalent wrapper around :meth:`ParallelRunner.repeat`."""
    return ParallelRunner(jobs=1).repeat(run, repetitions, base_seed)
