"""Per-application static quantities for the embedding fast path.

Every arriving request of application ``a`` re-derives the same static
data: which VNFs form each placement-compatibility group, the summed size
of the virtual links adjacent to θ (what a collocated embedding routes),
and the η placement coefficient of every VNF on every substrate node. An
:class:`AppProfile` computes all of it exactly once per (application,
substrate, efficiency model) and exposes vectorized per-request helpers
whose floating-point accumulation order matches the scalar reference
(:mod:`repro.core.greedy_reference`) bit for bit — the decision-
equivalence guarantee rests on that.

:class:`AppProfileCache` holds one profile per application object and is
owned by an algorithm instance (OLIVE/QUICKG build it next to their
:class:`~repro.core.residual.ResidualState`; FULLG uses the same profiles
for its placement-feasibility rows). :class:`MemoizedEfficiency` is the
lightweight sibling for code that consumes η through the
:class:`~repro.apps.efficiency.EfficiencyModel` interface itself (SLOTOFF
rebuilds a PLAN-VNE LP per slot; its per-slot η lookups repeat the same
(VNF, node-attrs) pairs every time).
"""

from __future__ import annotations

import numpy as np

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.apps.efficiency import EfficiencyModel
from repro.core.embedding import ElementLoads, compute_loads
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork

#: Host-group labels used by the generalized two-group greedy.
GroupPair = tuple[str, str]


class AppProfile:
    """Static per-application quantities on one substrate.

    Attributes
    ----------
    vnf_ids:
        Non-root VNF ids in application order (the single-host group).
    root_link_size_sum:
        Σ β over virtual links adjacent to θ; ``demand × this`` is the
        route load of a collocated embedding.
    eta:
        Per-VNF numpy row over nodes (substrate-index order); ``nan``
        marks a forbidden placement.
    groups:
        Placement-compatibility groups, ``{"generic": [...], "gpu": [...]}``
        (ids in application order, mirroring the reference partition).
    sorted_groups:
        The same groups with ids sorted — the order the two-host variant
        accumulates group loads in.
    cross_pairs / pairs_present:
        Per-virtual-link (host-group pair, β size) in application link
        order, and the set of group pairs that actually occur; drives the
        two-host crossing loads.
    """

    def __init__(
        self,
        app: Application,
        substrate: SubstrateNetwork,
        efficiency: EfficiencyModel,
    ) -> None:
        from repro.substrate.network import substrate_index

        self.app = app
        index = substrate_index(substrate)
        self.num_nodes = index.num_nodes
        non_root = app.non_root_vnfs()
        self.vnf_ids = [vnf.id for vnf in non_root]
        self.root_link_size_sum = sum(
            link.size for link in app.children_links(ROOT_ID)
        )
        node_attrs = [substrate.nodes[v] for v in index.node_ids]
        self.eta: dict[int, np.ndarray] = {}
        self.sizes: dict[int, float] = {}
        #: Per-VNF ``(β, [η per node])`` in application order, η as plain
        #: floats (``nan`` = forbidden) — the node half of the collocated
        #: loads fast path.
        self.node_terms: list[tuple[float, list[float]]] = []
        for vnf in non_root:
            row = np.empty(index.num_nodes)
            for i, attrs in enumerate(node_attrs):
                value = efficiency.node_eta(vnf, attrs)
                row[i] = np.nan if value is None else value
            self.eta[vnf.id] = row
            self.sizes[vnf.id] = vnf.size
            self.node_terms.append((vnf.size, row.tolist()))
        #: Per-root-adjacent-virtual-link ``(β, [η per link])`` in
        #: application link order — the link half of the collocated loads
        #: fast path (non-root virtual links ride the host backplane).
        self.root_link_terms: list[tuple[float, list[float]]] = []
        link_attrs = [substrate.links[l] for l in index.link_ids]
        for vlink in app.links:
            if vlink.tail != ROOT_ID:
                continue
            etas = [
                efficiency.link_eta(vlink, attrs) for attrs in link_attrs
            ]
            self.root_link_terms.append((vlink.size, etas))

        groups: dict[str, list[int]] = {}
        for vnf in non_root:
            key = "gpu" if vnf.kind is VNFKind.GPU else "generic"
            groups.setdefault(key, []).append(vnf.id)
        self.groups = groups
        self.sorted_groups = {
            key: sorted(ids) for key, ids in groups.items()
        }

        # Accumulation recipes per named group: "all" follows application
        # order (the single-host scan); "generic"/"gpu" follow sorted-id
        # order (the two-host variant). When every VNF of a group has a
        # node-independent η, the per-node load degenerates to one scalar.
        self._group_terms: dict[str, list[tuple[float, np.ndarray]]] = {}
        self._group_consts: dict[str, list[tuple[float, float]] | None] = {}
        for key, ids in [("all", self.vnf_ids), *self.sorted_groups.items()]:
            terms = [(self.sizes[i], self.eta[i]) for i in ids]
            self._group_terms[key] = terms
            consts: list[tuple[float, float]] | None = []
            for size, row in terms:
                if row.size and (row == row[0]).all():
                    consts.append((size, float(row[0])))
                else:
                    consts = None
                    break
            self._group_consts[key] = consts

        gpu_ids = set(groups.get("gpu", ()))

        def host_group(vnf_id: int) -> str:
            if vnf_id == ROOT_ID:
                return "root"
            return "gpu" if vnf_id in gpu_ids else "generic"

        self.cross_pairs: list[tuple[GroupPair, float]] = []
        self.pairs_present: set[GroupPair] = set()
        for vlink in app.links:
            pair = tuple(
                sorted((host_group(vlink.tail), host_group(vlink.head)))
            )
            if pair[0] == pair[1]:
                continue
            self.pairs_present.add(pair)
            self.cross_pairs.append((pair, vlink.size))

    def group_load(self, group: str, demand: float):
        """Combined load of a named VNF group per node.

        Accumulates ``demand · β_i · η`` in the group's id order — per
        node this is exactly the reference ``_group_node_load`` loop, so
        every element is bit-identical to the scalar computation. Returns
        one float when η is node-independent for the whole group (every
        node then carries the identical value), else a per-node array
        with ``nan`` marking forbidden placements.
        """
        consts = self._group_consts[group]
        if consts is not None:
            total = 0.0
            for size, eta in consts:
                total += demand * size * eta
            return total
        row = np.zeros(self.num_nodes)
        for size, eta in self._group_terms[group]:
            row = row + (demand * size) * eta
        return row

    def pair_loads(self, demand: float) -> dict[GroupPair, float]:
        """Crossing load per host-group pair (reference accumulation order)."""
        loads: dict[GroupPair, float] = {}
        for pair, size in self.cross_pairs:
            loads[pair] = loads.get(pair, 0.0) + demand * size
        return loads


class LoadsRecipe:
    """Precompiled :func:`~repro.core.embedding.compute_loads` for one
    fixed embedding shape.

    Plan patterns are embedded verbatim for every planned or borrowed
    request of their class, so the (element, β, η) triples the load
    computation visits are identical each time — only the demand factor
    changes. The recipe walks the same elements in the same order with
    the same arithmetic, so :meth:`loads` is bit-identical to calling
    ``compute_loads`` on the pattern's embedding.
    """

    def __init__(self, app, embedding, substrate, efficiency) -> None:
        # Delegating the dry run to compute_loads keeps the forbidden-
        # placement error behavior identical; the walk below only records
        # the per-element triples it would visit.
        compute_loads(app, 1.0, embedding, substrate, efficiency)
        self.node_terms: list[tuple[object, float, float]] = []
        for vnf in app.vnfs:
            if vnf.id == ROOT_ID:
                continue
            node = embedding.node_map[vnf.id]
            eta = efficiency.node_eta(vnf, substrate.nodes[node])
            self.node_terms.append((node, vnf.size, eta))
        self.link_terms: list[tuple[object, float, float]] = []
        for vlink in app.links:
            path = embedding.link_paths.get(vlink.key, ())
            for link in path:
                eta = efficiency.link_eta(vlink, substrate.links[link])
                self.link_terms.append((link, vlink.size, eta))

    def loads(self, demand: float) -> ElementLoads:
        """Materialize Eq. 1 at ``demand`` (≡ ``compute_loads`` output)."""
        loads = ElementLoads()
        nodes = loads.nodes
        for node, size, eta in self.node_terms:
            load = demand * size * eta
            if load > 0:
                nodes[node] = nodes.get(node, 0.0) + load
        links = loads.links
        for link, size, eta in self.link_terms:
            load = demand * size * eta
            if load > 0:
                links[link] = links.get(link, 0.0) + load
        return loads


class AppProfileCache:
    """One :class:`AppProfile` per application object, built lazily."""

    def __init__(
        self, substrate: SubstrateNetwork, efficiency: EfficiencyModel
    ) -> None:
        self.substrate = substrate
        self.efficiency = efficiency
        self._profiles: dict[int, AppProfile] = {}

    def get(self, app: Application) -> AppProfile:
        profile = self._profiles.get(id(app))
        if profile is None or profile.app is not app:
            profile = AppProfile(app, self.substrate, self.efficiency)
            self._profiles[id(app)] = profile
        return profile


class MemoizedEfficiency(EfficiencyModel):
    """Memoizing wrapper around another :class:`EfficiencyModel`.

    VNFs, virtual links and substrate attribute records are all frozen
    (hashable) dataclasses, so η lookups are cacheable by the pair. The
    wrapper returns exactly the inner model's values — it only removes
    repeated method-call work from per-slot rebuild loops (SLOTOFF's
    PLAN-VNE feasibility checks ask for the same pairs every slot).
    """

    def __init__(self, inner: EfficiencyModel) -> None:
        self.inner = inner
        self._node: dict[tuple[VNF, NodeAttrs], float | None] = {}
        self._link: dict[tuple[VirtualLink, LinkAttrs], float] = {}

    def node_eta(self, vnf: VNF, node: NodeAttrs) -> float | None:
        key = (vnf, node)
        try:
            return self._node[key]
        except KeyError:
            value = self.inner.node_eta(vnf, node)
            self._node[key] = value
            return value

    def link_eta(self, vlink: VirtualLink, link: LinkAttrs) -> float:
        key = (vlink, link)
        try:
            return self._link[key]
        except KeyError:
            value = self.inner.link_eta(vlink, link)
            self._link[key] = value
            return value
