"""GREEDYEMBED: collocated least-cost embedding (Algorithm 2, lines 31–34).

This module is the *incremental* implementation of the paper's
GREEDYEMBED. The scalar reference (one full Dijkstra plus an O(nodes)
host scan per arriving request) lives unchanged in
:mod:`repro.core.greedy_reference`; this fast path produces bit-identical
embeddings from three ingredients:

* **Memoized shortest-path trees** (:class:`PathCache`). The
  capacity-constrained Dijkstra from an ingress depends on the residual
  state only through the per-link feasibility predicate
  ``residual ≥ route_load`` — link weights are static costs scaled by the
  route load. A cached tree therefore stays valid for every request whose
  route load falls in the entry's *feasibility band* ``(lo, hi]``, where
  ``hi`` is the smallest residual among feasible links and ``lo`` the
  largest among infeasible ones. Per-request distances are *replayed*
  along the cached tree with the request's own route load, reproducing
  the reference accumulation exactly.
* **Dirty-set invalidation.** :class:`~repro.core.residual.ResidualState`
  logs every link whose residual changes (``allocate``/``release``/view
  writes). The cache sweeps that log lazily, tightening each entry's band
  only for the touched links — a tree is *not* discarded when a link on
  it changes residual but stays on the same side of the entry's
  feasibility split; when the conservative band no longer covers a
  request, the band is re-anchored exactly (two masked reductions — an
  exact band covering the load certifies the feasibility vector) before
  any Dijkstra is re-run.
* **Profile-driven host scoring** over
  :class:`~repro.core.profile.AppProfile` load data: a native-float scan
  in substrate order when η is node-independent, numpy expressions for
  per-node η — either way the arithmetic and first-strict-minimum
  tie-breaking match the reference scalar scan bit for bit.

For applications whose placement rules make full collocation impossible —
the GPU scenario, where GPU and non-GPU VNFs exclude each other — the
generalized two-group variant collocates each placement-compatible group
on its own host and routes between the (at most three) hosts. The paper's
QUICKG keeps the strict single-host restriction (it skips the GPU study
for exactly this reason); pass ``allow_split_groups=False`` to reproduce
that.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel
from repro.core.batch_kernel import BACKEND_NAME, BatchPlan
from repro.core.embedding import ElementLoads, Embedding, compute_loads
from repro.core.profile import AppProfile, AppProfileCache
from repro.core.residual import ResidualState
from repro.substrate.network import SubstrateIndex, SubstrateNetwork
from repro.utils.paths import indexed_capacity_dijkstra
from repro.workload.request import Request

#: Cached shortest-path trees kept per source node; bands rarely overlap
#: for more than a couple of load regimes, so a small bound suffices.
MAX_TREES_PER_SOURCE = 8


class _TreeEntry:
    """One memoized shortest-path tree rooted at ``source``.

    ``feasible`` is the per-link feasibility vector the tree was computed
    under; ``(lo, hi]`` is the route-load band for which the *current*
    residuals reproduce that vector. ``order``/``parents``/``pcosts``
    describe the tree in settle order for exact distance replay;
    ``parent_node``/``parent_link`` support path reconstruction.
    """

    __slots__ = (
        "source", "feasible", "lo", "hi", "cursor",
        "order", "parents", "pcosts", "parent_node", "parent_link",
        "scan_nodes", "depth",
    )

    def __init__(self, source, feasible, order, parent_node, parent_link,
                 pcost_of_link):
        self.source = source
        self.feasible = feasible
        self.lo = -math.inf
        self.hi = math.inf
        #: Position in the residual's dirty log up to which ``lo``/``hi``
        #: reflect link-residual changes.
        self.cursor = 0
        self.order = order
        self.parent_node = parent_node
        self.parent_link = parent_link
        # Tree edges in settle order (source excluded), as plain floats.
        self.parents = [parent_node[v] for v in order[1:]]
        self.pcosts = [pcost_of_link[parent_link[v]] for v in order[1:]]
        #: Reached nodes in ascending index order — the candidate-host
        #: scan must visit nodes in substrate insertion order so ties
        #: break exactly like the reference scan.
        self.scan_nodes = sorted(order)
        # Per-node tree depth (-1 = unreached) for the batch kernel's
        # partial-sum replay; settle order guarantees parents first.
        depth = [-1] * len(parent_node)
        depth[source] = 0
        for v in order[1:]:
            depth[v] = depth[parent_node[v]] + 1
        self.depth = np.array(depth, dtype=np.intp)

    def reset_band(self, link_residual: np.ndarray, cursor: int) -> None:
        """Recompute the exact feasibility band from current residuals.

        With exact bounds, ``lo < load <= hi`` is *equivalent* to "the
        feasibility vector at ``load`` equals this entry's vector": every
        cached-feasible link still has residual ≥ load iff ``load ≤ hi``,
        every cached-infeasible link still falls short iff ``load > lo``.
        """
        self.lo = float(
            np.max(link_residual, initial=-math.inf, where=~self.feasible)
        )
        self.hi = float(
            np.min(link_residual, initial=math.inf, where=self.feasible)
        )
        self.cursor = cursor

    def absorb_dirty(self, link_residual: list[float], changed: list[int],
                     cursor: int) -> None:
        """Tighten the band for the ``changed`` link positions (the dirty
        log since :attr:`cursor`; conservative — a too-narrow band only
        forces a revalidation, never a wrong reuse)."""
        feasible = self.feasible
        lo = self.lo
        hi = self.hi
        for position in changed:
            value = link_residual[position]
            if feasible[position]:
                if value < hi:
                    hi = float(value)
            elif value > lo:
                lo = float(value)
        self.lo = lo
        self.hi = hi
        self.cursor = cursor

    def distances(self, num_nodes: int, load: float) -> list[float]:
        """Replay per-node distances at ``load`` along the cached tree.

        Identical accumulation to the reference Dijkstra's relaxations
        (``dist[parent] + load × cost``, parents settled first), hence
        bit-identical distances.
        """
        dist = [math.inf] * num_nodes
        dist[self.order[0]] = 0.0
        for v, p, c in zip(self.order[1:], self.parents, self.pcosts):
            dist[v] = dist[p] + load * c
        return dist

    def path_to(self, target: int, link_ids) -> tuple[tuple, list[int]]:
        """The tree path source→target: (LinkId tuple, link positions)."""
        links = []
        positions = []
        node = target
        parent_node = self.parent_node
        parent_link = self.parent_link
        while node != self.source:
            position = parent_link[node]
            positions.append(position)
            links.append(link_ids[position])
            node = parent_node[node]
        links.reverse()
        positions.reverse()
        return tuple(links), positions


class PathCache:
    """Band-memoized capacity-constrained Dijkstra trees.

    One instance per algorithm, attached to that algorithm's
    :class:`~repro.core.residual.ResidualState`. Lookup order: absorb
    the residual's dirty-log suffix into each candidate's band
    (O(changed links)), then an O(1) band check per cached tree, then an
    exact band re-anchor (two masked reductions), and only then a fresh
    Dijkstra.
    """

    #: Dirty-log backlog beyond which absorbing per-link deltas would cost
    #: more than one vectorized revalidation.
    MAX_DELTA = 32

    def __init__(self, index: SubstrateIndex, residual: ResidualState) -> None:
        self.index = index
        self.residual = residual
        self.entries: dict[int, list[_TreeEntry]] = {}
        self.hits = 0
        self.misses = 0
        # Band sharing (one tree serving every load in its feasibility
        # band) is provably decision-exact only when link costs are
        # uniform — true for all built-in topologies. Heterogeneous-cost
        # substrates (possible via the topology registry) get a fresh
        # Dijkstra per lookup instead: slower, but the bit-identical
        # contract always holds.
        costs = index.link_cost_list
        self.band_sharing = len(set(costs)) <= 1

    def lookup(self, source: int, load: float) -> _TreeEntry:
        """The shortest-path tree for ``(source, load)`` under current
        residuals — cached when a memoized tree's band covers it.

        Trees are shared across route loads inside one feasibility band.
        That is provably exact when link traversal costs are uniform (the
        built-in topologies: every tier costs 1.0/CU, so relaxation
        comparisons are scale-invariant); for heterogeneous link costs an
        *exact* mathematical cost tie between alternative paths could in
        principle round differently at different loads — the
        decision-equivalence suite pins the supported configurations.
        """
        bucket = self.entries.get(source)
        if bucket is None:
            bucket = self.entries[source] = []
        residual = self.residual
        log = residual.link_dirty_log
        base = residual.link_dirty_base
        rev = base + len(log)
        link_residual = residual.link_residual
        if self.band_sharing:
            for i, entry in enumerate(bucket):
                # Entries predating a log compaction (cursor < base)
                # cannot delta-sweep; they fall to the exact re-anchor.
                if (
                    entry.cursor >= base
                    and rev - entry.cursor <= self.MAX_DELTA
                ):
                    if entry.cursor != rev:
                        entry.absorb_dirty(
                            link_residual, log[entry.cursor - base:], rev
                        )
                    if entry.lo < load <= entry.hi:
                        self.hits += 1
                        if i:
                            bucket.append(bucket.pop(i))
                        return entry
            # Conservative bands may have over-tightened (or an entry sat
            # unused past the delta budget): re-anchor each on the exact
            # current residuals — an exact band covering ``load``
            # certifies the entry's feasibility vector, no elementwise
            # compare needed.
            link_array = self.residual.link_array()
            for i, entry in enumerate(bucket):
                entry.reset_band(link_array, rev)
                if entry.lo < load <= entry.hi:
                    bucket.append(bucket.pop(i))
                    self.hits += 1
                    return entry
        else:
            link_array = self.residual.link_array()
        self.misses += 1
        feasible = link_array >= load
        index = self.index
        order, parent_node, parent_link, _ = indexed_capacity_dijkstra(
            index.adj, index.link_cost_list, source, load, feasible.tolist()
        )
        entry = _TreeEntry(
            source, feasible, order, parent_node, parent_link,
            index.link_cost_list,
        )
        entry.reset_band(link_array, rev)
        bucket.append(entry)
        if len(bucket) > MAX_TREES_PER_SOURCE:
            bucket.pop(0)
        return entry

    def revalidate(self, entry: _TreeEntry, load: float) -> bool:
        """Whether ``entry`` is still exact for ``load`` right now.

        The batch kernel's commit-time staleness check: the same
        dirty-log absorption / exact band re-anchor a lookup would run,
        restricted to this one entry (no bucket scan, no LRU motion, no
        fresh Dijkstra). ``True`` certifies that the entry's feasibility
        vector equals the current one at ``load`` — deterministic
        Dijkstra then guarantees a scalar lookup would return the
        bit-identical tree. ``False`` sends the caller down the scalar
        path. Only meaningful on band-sharing substrates (the kernel's
        precondition).
        """
        residual = self.residual
        log = residual.link_dirty_log
        base = residual.link_dirty_base
        rev = base + len(log)
        if entry.cursor >= base and rev - entry.cursor <= self.MAX_DELTA:
            if entry.cursor != rev:
                entry.absorb_dirty(
                    residual.link_residual, log[entry.cursor - base:], rev
                )
            if entry.lo < load <= entry.hi:
                return True
        # The conservative band may have over-tightened (or the entry sat
        # past the delta budget); re-anchor exactly before deciding.
        entry.reset_band(residual.link_array(), rev)
        return entry.lo < load <= entry.hi


class _DirectTree:
    """A throwaway shortest-path tree from one direct Dijkstra run.

    The bypass path's stand-in for :class:`_TreeEntry`: same
    ``scan_nodes`` order and the same path reconstruction, but no band
    state and no replay machinery — distances come straight from the
    Dijkstra that built it.
    """

    __slots__ = ("source", "parent_node", "parent_link", "scan_nodes")

    def __init__(self, source, order, parent_node, parent_link):
        self.source = source
        self.parent_node = parent_node
        self.parent_link = parent_link
        self.scan_nodes = sorted(order)

    def path_to(self, target: int, link_ids) -> tuple[tuple, list[int]]:
        """The tree path source→target: (LinkId tuple, link positions)."""
        links = []
        positions = []
        node = target
        parent_node = self.parent_node
        parent_link = self.parent_link
        while node != self.source:
            position = parent_link[node]
            positions.append(position)
            links.append(link_ids[position])
            node = parent_node[node]
        links.reverse()
        positions.reverse()
        return tuple(links), positions


class _BypassController:
    """Deterministic banded-vs-direct arbitration for scalar routes.

    The band cache pays off when trees are reused before residual churn
    invalidates their bands; below that scale its maintenance (dirty-log
    absorption, re-anchors, LRU bookkeeping) costs more than the fresh
    Dijkstra it avoids — the measured 0.89× regression at small λ. The
    controller is **counter-based and deterministic** (no wall clock, no
    randomness — RPR003-clean): identical request streams drive
    identical mode sequences, and since the banded and direct routes
    produce the identical shortest-path tree, the mode never influences
    decisions — only speed.

    States (``cache_mode="adaptive"``): *banded* counts band hits over a
    :attr:`PROBE`-lookup window and drops to *direct* when the hit rate
    falls below :attr:`MIN_HIT_RATE`; *direct* holds for :attr:`HOLD`
    lookups, then re-probes (so a workload that grows past the payoff
    scale gets the cache back). The initial state is calibrated from
    topology size × expected arrival rate when the caller provides the
    rate: a payoff scale (expected offers per slot × nodes) below
    :attr:`PAYOFF_FLOOR` starts direct. ``cache_mode="banded"`` /
    ``"direct"`` pin the state (the differential tests drive both).
    """

    PROBE = 64
    HOLD = 512
    MIN_HIT_RATE = 0.5
    PAYOFF_FLOOR = 256.0

    __slots__ = (
        "pinned", "banded", "payoff_scale",
        "window_lookups", "window_hits", "hold_remaining", "switches",
    )

    def __init__(self, cache_mode: str, payoff_scale: float | None) -> None:
        if cache_mode not in ("adaptive", "banded", "direct"):
            raise ValueError(
                "cache_mode must be adaptive|banded|direct "
                f"(got {cache_mode!r})"
            )
        self.pinned = cache_mode != "adaptive"
        self.payoff_scale = payoff_scale
        start_direct = cache_mode == "direct" or (
            cache_mode == "adaptive"
            and payoff_scale is not None
            and payoff_scale < self.PAYOFF_FLOOR
        )
        self.banded = not start_direct
        self.window_lookups = 0
        self.window_hits = 0
        self.hold_remaining = self.HOLD if start_direct else 0
        self.switches = 0

    def use_bands(self) -> bool:
        """Route the next scalar lookup through the band cache?"""
        if self.banded:
            return True
        if not self.pinned:
            self.hold_remaining -= 1
            if self.hold_remaining <= 0:
                self.banded = True
                self.window_lookups = 0
                self.window_hits = 0
                self.switches += 1
        return False

    def observe(self, hit: bool) -> None:
        """Feed one banded lookup's outcome into the probe window."""
        if self.pinned or not self.banded:
            return
        self.window_lookups += 1
        if hit:
            self.window_hits += 1
        if self.window_lookups >= self.PROBE:
            if self.window_hits < self.MIN_HIT_RATE * self.window_lookups:
                self.banded = False
                self.hold_remaining = self.HOLD
                self.switches += 1
            self.window_lookups = 0
            self.window_hits = 0

    @property
    def mode(self) -> str:
        return "banded" if self.banded else "direct"


class GreedyContext:
    """Per-algorithm state of the incremental GREEDYEMBED fast path.

    Bundles the substrate index, the owning algorithm's residual state,
    the per-application profiles and the memoized path trees. OLIVE and
    its variants construct one next to their
    :class:`~repro.core.residual.ResidualState` and route every greedy
    fallback through :meth:`embed`.

    ``cache_mode`` picks how scalar embeds route shortest-path queries:
    ``"adaptive"`` (default) lets :class:`_BypassController` choose
    between the band cache and a direct Dijkstra, ``"banded"`` /
    ``"direct"`` pin one route. ``expected_offers_per_slot`` seeds the
    controller's payoff calibration. Neither affects decisions — both
    routes build the identical deterministic tree.

    :meth:`begin_batch` / :meth:`end_batch` open a speculative window
    over one same-slot run of requests; :meth:`embed` calls inside the
    window consult the :class:`~repro.core.batch_kernel.BatchPlan`
    first and fall back to the scalar path for anything it does not
    cover.
    """

    def __init__(
        self,
        substrate: SubstrateNetwork,
        efficiency: EfficiencyModel,
        residual: ResidualState,
        cache_mode: str = "adaptive",
        expected_offers_per_slot: float | None = None,
    ) -> None:
        self.substrate = substrate
        self.efficiency = efficiency
        self.residual = residual
        self.index = residual.index
        self.profiles = AppProfileCache(substrate, efficiency)
        self.paths = PathCache(self.index, residual)
        payoff_scale = (
            expected_offers_per_slot * self.index.num_nodes
            if expected_offers_per_slot is not None
            else None
        )
        self.bypass = _BypassController(cache_mode, payoff_scale)
        self._batch: BatchPlan | None = None
        self._window_open = False
        self._window_embeds = 0
        self._window_size = 0
        #: Greedy-embed share of the previous batch window — the signal
        #: that decides whether the next window speculates at all.
        #: Optimistic start: the first window probes the kernel.
        self.batch_density = 1.0
        self.direct_routes = 0
        self.batch_rows = 0
        self.batch_fallbacks = 0
        self.batch_chunks = 0

    #: Minimum greedy-embed share of a window for speculation to pay.
    #: Plan-heavy OLIVE windows (most requests settled by planned
    #: allocations) fall below this and skip the kernel — speculating
    #: rows nobody consumes is the one way the kernel could lose to the
    #: scalar path. Density is measured per window from actual embed
    #: calls, so a plan that exhausts mid-run re-enables batching.
    MIN_BATCH_DENSITY = 0.25

    # -- batch window --------------------------------------------------------

    def begin_batch(self, pairs) -> "BatchPlan | None":
        """Open a speculative batch window over ``(request, app)`` pairs.

        The window covers one same-slot run; commits still happen one
        request at a time through :meth:`embed`, in call order, against
        live residuals — see :mod:`repro.core.batch_kernel`. Returns the
        :class:`~repro.core.batch_kernel.BatchPlan` (so the caller can
        :meth:`~repro.core.batch_kernel.BatchPlan.mark_done` settled
        requests), or ``None`` when the previous window's greedy density
        was too low for speculation to pay — the window still measures
        density so batching can re-engage.
        """
        if self._window_open:
            raise ValueError("a batch window is already open")
        self._window_open = True
        self._window_embeds = 0
        self._window_size = len(pairs)
        if (
            self.paths.band_sharing
            and self.batch_density >= self.MIN_BATCH_DENSITY
        ):
            self._batch = BatchPlan(self, pairs)
        return self._batch

    def end_batch(self) -> None:
        """Close the batch window and fold its counters into the stats."""
        if not self._window_open:
            return
        self._window_open = False
        if self._window_size:
            self.batch_density = self._window_embeds / self._window_size
        batch = self._batch
        if batch is None:
            return
        self._batch = None
        self.batch_rows += batch.rows_used
        self.batch_fallbacks += batch.fallbacks
        self.batch_chunks += batch.chunks

    # -- routing -------------------------------------------------------------

    def _route(self, source: int, load: float):
        """``(tree, distances)`` for one scalar shortest-path query.

        Banded route: cached tree + exact replay. Direct route: one
        fresh capacity-constrained Dijkstra whose returned distances ARE
        the values the replay reproduces (same relaxations, same
        arithmetic), with zero band maintenance. Both routes run the
        identical deterministic tree construction under the identical
        feasibility vector, so every downstream decision is bit-equal
        whichever is taken.
        """
        paths = self.paths
        if paths.band_sharing and self.bypass.use_bands():
            before = paths.hits
            tree = paths.lookup(source, load)
            self.bypass.observe(paths.hits != before)
            return tree, tree.distances(self.index.num_nodes, load)
        self.direct_routes += 1
        index = self.index
        feasible = self.residual.link_array() >= load
        order, parent_node, parent_link, dist = indexed_capacity_dijkstra(
            index.adj, index.link_cost_list, source, load, feasible.tolist()
        )
        return _DirectTree(source, order, parent_node, parent_link), dist

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Operational counters for bench rows and diagnostics."""
        bypass = self.bypass
        return {
            "cache_mode": bypass.mode,
            "cache_pinned": bypass.pinned,
            "payoff_scale": bypass.payoff_scale,
            "payoff_floor": bypass.PAYOFF_FLOOR,
            "mode_switches": bypass.switches,
            "cache_hits": self.paths.hits,
            "cache_misses": self.paths.misses,
            "direct_routes": self.direct_routes,
            "batch_backend": BACKEND_NAME,
            "batch_rows": self.batch_rows,
            "batch_fallbacks": self.batch_fallbacks,
            "batch_chunks": self.batch_chunks,
            "batch_density": self.batch_density,
        }

    def embed(
        self,
        request: Request,
        app: Application,
        allow_split_groups: bool = True,
    ):
        """Least-cost feasible (near-)collocated embedding with its loads.

        Returns ``(embedding, loads)`` — the loads are the exact
        :func:`~repro.core.embedding.compute_loads` output the residual
        check already materialized, so callers on the hot path skip a
        second pass — or ``None`` when no feasible embedding exists.
        """
        if self._window_open:
            self._window_embeds += 1
        profile = self.profiles.get(app)
        if len(profile.groups) == 1:
            batch = self._batch
            if batch is not None:
                picked = batch.select_host(request, profile)
                if picked is not None:
                    tree, host_idx = picked
                    if host_idx < 0:
                        return None
                    return _finish_single_host(
                        self, request, app, profile, tree, host_idx
                    )
            return _single_host_embed(self, request, app, profile)
        if not allow_split_groups or len(profile.groups) != 2:
            return None
        return _two_host_embed(self, request, app, profile)


def greedy_embed(
    request: Request,
    app: Application,
    substrate: SubstrateNetwork,
    efficiency: EfficiencyModel,
    residual: ResidualState,
    allow_split_groups: bool = True,
    context: GreedyContext | None = None,
) -> Embedding | None:
    """Find the least-cost feasible (near-)collocated embedding, or None.

    Standalone calls build a transient :class:`GreedyContext`; callers on
    the hot path (OLIVE) keep one alive across requests so the profile
    and path caches amortize.
    """
    if context is None:
        context = GreedyContext(substrate, efficiency, residual)
    result = context.embed(request, app, allow_split_groups)
    return None if result is None else result[0]


def _single_host_embed(
    ctx: GreedyContext,
    request: Request,
    app: Application,
    profile: AppProfile,
):
    """The paper's GREEDYEMBED: all VNFs on one node, min resource cost."""
    index = ctx.index
    residual = ctx.residual
    route_load = request.demand * profile.root_link_size_sum
    source = index.node_index[request.ingress]
    tree, dist = ctx._route(source, route_load)

    node_load = profile.group_load("all", request.demand)
    if isinstance(node_load, float):
        # Scalar η case: the host scan stays in native floats. Visiting
        # reached nodes in index order reproduces the reference scan's
        # first-strict-minimum tie-breaking exactly.
        node_residual = residual.node_residual
        node_costs = index.node_cost_list
        best_cost = math.inf
        host_idx = -1
        for v in tree.scan_nodes:
            if node_load > node_residual[v]:
                continue
            cost = node_load * node_costs[v] + dist[v]
            if cost < best_cost:
                best_cost = cost
                host_idx = v
        if host_idx < 0:
            return None
    else:
        dist_array = np.array(dist)
        with np.errstate(invalid="ignore"):
            candidates = (
                (node_load <= residual.node_array())
                & np.isfinite(dist_array)
            )
        if not candidates.any():
            return None
        cost = node_load * index.node_cost + dist_array
        cost[~candidates] = math.inf
        host_idx = int(np.argmin(cost))
    return _finish_single_host(ctx, request, app, profile, tree, host_idx)


def _finish_single_host(
    ctx: GreedyContext,
    request: Request,
    app: Application,
    profile: AppProfile,
    tree,
    host_idx: int,
):
    """Materialize the chosen single-host embedding (path, loads, fits).

    Shared tail of the scalar scan and the batch kernel's vectorized
    host pick: reconstruct the tree path, build the exact collocated
    loads, and apply the reference's single fits check on the chosen
    host (infeasible → reject, never try the next-best host).
    """
    index = ctx.index
    residual = ctx.residual
    host = index.node_ids[host_idx]
    path, positions = tree.path_to(host_idx, index.link_ids)
    loads = _collocated_loads(
        profile, request.demand, host_idx, host, positions, index.link_ids
    )
    if not residual.fits(loads):
        return None  # node+path loads can interact at the host
    node_map = {ROOT_ID: request.ingress}
    node_map.update({vnf_id: host for vnf_id in profile.vnf_ids})
    link_paths = {}
    for vlink in app.links:
        if vlink.tail == ROOT_ID:
            link_paths[vlink.key] = path
        else:
            link_paths[vlink.key] = ()
    return Embedding(node_map=node_map, link_paths=link_paths), loads


def _collocated_loads(
    profile: AppProfile,
    demand: float,
    host_idx: int,
    host,
    positions: list[int],
    link_ids,
) -> ElementLoads:
    """Eq. 1 loads of a single-host embedding, without the generic walk.

    Element order, accumulation order and arithmetic replicate
    :func:`~repro.core.embedding.compute_loads` on the equivalent
    embedding exactly: VNFs land on the host in application order, and
    only θ-adjacent virtual links (in application link order) traverse
    the ingress→host path.
    """
    loads = ElementLoads()
    nodes = loads.nodes
    for size, etas in profile.node_terms:
        load = demand * size * etas[host_idx]
        if load > 0:
            nodes[host] = nodes.get(host, 0.0) + load
    links = loads.links
    for size, etas in profile.root_link_terms:
        for position in positions:
            load = demand * size * etas[position]
            if load > 0:
                link = link_ids[position]
                links[link] = links.get(link, 0.0) + load
    return loads


def _feasible_hosts(load_row, node_array) -> list[tuple[int, float]]:
    """Host candidates ``(node_idx, load)`` in node order."""
    with np.errstate(invalid="ignore"):
        mask = load_row <= node_array
    if isinstance(load_row, float):
        return [(int(i), load_row) for i in np.nonzero(mask)[0]]
    return [(int(i), float(load_row[i])) for i in np.nonzero(mask)[0]]


def _two_host_embed(
    ctx: GreedyContext,
    request: Request,
    app: Application,
    profile: AppProfile,
):
    """Generalized greedy for two placement groups (GPU scenario).

    Collocates the generic group on host ``v`` and the GPU group on host
    ``w``, then routes each virtual link between the hosts of its
    endpoints. Candidate (v, w) pairs are evaluated exhaustively — the GPU
    node set is small — and the cheapest pair passing the exact residual
    check wins.
    """
    index = ctx.index
    residual = ctx.residual
    demand = request.demand
    generic_ids = set(profile.groups.get("generic", ()))
    gpu_ids = set(profile.groups.get("gpu", ()))

    def host_group(vnf_id: int) -> str:
        if vnf_id == ROOT_ID:
            return "root"
        return "gpu" if vnf_id in gpu_ids else "generic"

    # Combined crossing load per host-group pair drives routing feasibility.
    pair_load = profile.pair_loads(demand)
    pairs_present = profile.pairs_present
    root_generic = pair_load.get(("generic", "root"), 0.0)
    root_gpu = pair_load.get(("gpu", "root"), 0.0)
    cross = pair_load.get(("generic", "gpu"), 0.0)
    need_root_generic = ("generic", "root") in pairs_present
    need_root_gpu = ("gpu", "root") in pairs_present
    need_cross = ("generic", "gpu") in pairs_present

    source = index.node_index[request.ingress]
    tree_v, dist_v = ctx._route(source, root_generic)
    tree_w, dist_w = ctx._route(source, root_gpu)

    node_array = residual.node_array()
    generic_hosts = _feasible_hosts(
        profile.group_load("generic", demand), node_array
    )
    gpu_hosts = _feasible_hosts(
        profile.group_load("gpu", demand), node_array
    )
    if not generic_hosts or not gpu_hosts:
        return None

    # One tree per GPU host candidate covers all v→w pair paths.
    gpu_routes = {w: ctx._route(w, cross) for w, _ in gpu_hosts}
    gpu_trees = {w: route[0] for w, route in gpu_routes.items()}
    gpu_dists = {w: route[1] for w, route in gpu_routes.items()}

    node_cost = index.node_cost
    inf = math.inf
    best: tuple[float, Embedding, object] | None = None
    for (v, v_load), (w, w_load) in itertools.product(generic_hosts, gpu_hosts):
        cost = v_load * node_cost[v] + w_load * node_cost[w]
        if need_root_generic:
            if dist_v[v] == inf:
                continue
            cost += dist_v[v]
        if need_root_gpu:
            if dist_w[w] == inf:
                continue
            cost += dist_w[w]
        dist_cross = gpu_dists[w]
        if need_cross:
            if dist_cross[v] == inf:
                continue
            cost += dist_cross[v]
        if best is not None and cost >= best[0]:
            continue

        v_id = index.node_ids[v]
        w_id = index.node_ids[w]
        hosts = {"root": request.ingress, "generic": v_id, "gpu": w_id}
        node_map = {ROOT_ID: request.ingress}
        node_map.update({i: v_id for i in sorted(generic_ids)})
        node_map.update({i: w_id for i in sorted(gpu_ids)})
        link_paths = {}
        feasible = True
        for vlink in app.links:
            group_a = host_group(vlink.tail)
            group_b = host_group(vlink.head)
            if hosts[group_a] == hosts[group_b]:
                link_paths[vlink.key] = ()
                continue
            pair = tuple(sorted((group_a, group_b)))
            if pair == ("generic", "root"):
                if dist_v[v] == inf:
                    feasible = False
                    break
                links, _ = tree_v.path_to(v, index.link_ids)
            elif pair == ("gpu", "root"):
                if dist_w[w] == inf:
                    feasible = False
                    break
                links, _ = tree_w.path_to(w, index.link_ids)
            else:
                if dist_cross[v] == inf:
                    feasible = False
                    break
                links, _ = gpu_trees[w].path_to(v, index.link_ids)
            link_paths[vlink.key] = links
        if not feasible:
            continue
        embedding = Embedding(node_map=node_map, link_paths=link_paths)
        loads = compute_loads(
            app, demand, embedding, ctx.substrate, ctx.efficiency
        )
        if residual.fits(loads):
            best = (cost, embedding, loads)
    return (best[1], best[2]) if best else None
