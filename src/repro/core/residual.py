"""Residual capacity tracking (Eqs. 16–19).

:class:`ResidualState` tracks Res(S, t, x): what remains of every substrate
element's capacity given the currently active allocations. Checks use a
small epsilon so float round-trips (allocate/release cycles) never produce
spurious infeasibility.

:class:`PlanResidual` tracks Res(y, t, x): how much of each plan pattern's
guaranteed capacity is still unclaimed by active *planned* allocations.
Only planned allocations draw from it (Algorithm 2, ALLOCATE line 22);
borrowed allocations consume substrate capacity without touching the plan,
which is precisely why they are preemptible later.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.embedding import ElementLoads
from repro.errors import SimulationError
from repro.plan.pattern import Plan
from repro.stats.aggregate import ClassKey
from repro.substrate.network import (
    NodeId,
    SubstrateNetwork,
    substrate_index,
)

#: Tolerance for capacity comparisons, scaled to capacity magnitudes.
EPSILON = 1e-6


class _ArrayMapping(MutableMapping):
    """Dict-compatible view over one position-indexed residual sequence.

    Reads and writes go straight to the backing storage, so code that
    predates the indexed backend (``residual.links[l] >= load``,
    ``residual.nodes[v] = 15.0`` in tests) keeps working unchanged.
    Writes count as residual changes: they bump the owner's revision so
    the greedy path cache revalidates (see :class:`ResidualState`).
    """

    __slots__ = ("_index", "_array", "_keys", "_owner", "_kind")

    def __init__(self, index, array, keys, owner, kind):
        self._index = index
        self._array = array
        self._keys = keys
        self._owner = owner
        self._kind = kind

    def __getitem__(self, key) -> float:
        return self._array[self._index[key]]

    def __setitem__(self, key, value) -> None:
        position = self._index[key]
        self._array[position] = value
        self._owner._element_changed(self._kind, position)

    def __delitem__(self, key) -> None:
        raise SimulationError("residual elements cannot be removed")

    def __iter__(self):
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key) -> bool:
        return key in self._index

    def __eq__(self, other) -> bool:
        if isinstance(other, (dict, MutableMapping)):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return f"{type(self).__name__}({dict(self)!r})"


class ResidualState:
    """Res(S, t, x): residual node and link capacities of the substrate.

    Residuals live in two plain-Python lists indexed by
    :class:`~repro.substrate.network.SubstrateIndex` positions (scalar
    bookkeeping — allocate/release/fits on a handful of elements — is
    faster on native floats than on numpy scalars); the vectorized greedy
    fast path reads them through :meth:`node_array` / :meth:`link_array`,
    lazily refreshed numpy snapshots. The ``nodes``/``links`` attributes
    remain dict-compatible views for pre-array code and tests.

    Every mutation of a link residual appends the touched position to
    :attr:`link_dirty_log` (whose length is :attr:`link_rev`), which is
    how the incremental greedy path cache (:mod:`repro.core.greedy`)
    knows when a memoized shortest-path tree may be stale — and exactly
    which links to re-examine.
    """

    def __init__(self, substrate: SubstrateNetwork) -> None:
        self.substrate = substrate
        self.index = substrate_index(substrate)
        self.node_residual: list[float] = self.index.node_capacity.tolist()
        self.link_residual: list[float] = self.index.link_capacity.tolist()
        #: Current *effective* capacities. They start at the substrate's
        #: nominal values and diverge only under dynamic events (failures,
        #: drains, degradations — :mod:`repro.scenarios.events`), which
        #: mutate them through :meth:`set_node_capacity` /
        #: :meth:`set_link_capacity`. The capacity invariant is always
        #: ``residual == effective capacity − Σ active loads`` — so a
        #: capacity cut below current usage drives the residual negative,
        #: which is how stranded allocations are detected.
        self.node_capacity: list[float] = self.index.node_capacity.tolist()
        self.link_capacity: list[float] = self.index.link_capacity.tolist()
        #: Log of link positions whose residual changed, in change order;
        #: ``link_dirty_base + len(link_dirty_log)`` is the revision
        #: counter. Consumers (the greedy path cache) remember the
        #: absolute revision they have swept to, so several caches can
        #: share one residual. The log's oldest half is dropped once it
        #: exceeds a bound (long runs would otherwise grow it without
        #: limit); a consumer whose cursor predates ``link_dirty_base``
        #: must fall back to a full revalidation instead of a delta sweep.
        self.link_dirty_log: list[int] = []
        self.link_dirty_base = 0
        #: Counts events that *raised* some link residual (departure /
        #: preemption releases, capacity restorations). Within a window
        #: where this is unchanged, link residuals are monotonically
        #: non-increasing — the batch kernel's commit-time fast path
        #: relies on that monotonicity (see :mod:`repro.core.batch_kernel`).
        self.link_rise_rev = 0
        #: Revision counter of node-residual changes (array-cache key).
        self.node_rev = 0
        self._node_array: "np.ndarray | None" = None
        self._node_array_rev = -1
        self._link_array: "np.ndarray | None" = None
        self._link_array_rev = -1
        self.nodes = _ArrayMapping(
            self.index.node_index, self.node_residual,
            self.index.node_ids, self, "node",
        )
        self.links = _ArrayMapping(
            self.index.link_index, self.link_residual,
            self.index.link_ids, self, "link",
        )

    #: Log length that triggers dropping the oldest half.
    MAX_DIRTY_LOG = 65536

    @property
    def link_rev(self) -> int:
        """Monotone revision counter of link-residual changes."""
        return self.link_dirty_base + len(self.link_dirty_log)

    def _compact_dirty_log(self) -> None:
        drop = len(self.link_dirty_log) // 2
        self.link_dirty_log = self.link_dirty_log[drop:]
        self.link_dirty_base += drop

    def _element_changed(self, kind: str, position: int) -> None:
        if kind == "link":
            self.link_dirty_log.append(position)
            if len(self.link_dirty_log) > self.MAX_DIRTY_LOG:
                self._compact_dirty_log()
        else:
            self.node_rev += 1

    def node_array(self) -> "np.ndarray":
        """Current node residuals as a numpy snapshot (do not mutate)."""
        if self._node_array_rev != self.node_rev:
            self._node_array = np.array(self.node_residual)
            self._node_array_rev = self.node_rev
        return self._node_array

    def link_array(self) -> "np.ndarray":
        """Current link residuals as a numpy snapshot (do not mutate)."""
        rev = self.link_rev
        if self._link_array_rev != rev:
            self._link_array = np.array(self.link_residual)
            self._link_array_rev = rev
        return self._link_array

    def fits(self, loads: ElementLoads) -> bool:
        """Eq. 18: can these loads be added without violating capacity?"""
        node_index = self.index.node_index
        node_residual = self.node_residual
        for node, load in loads.nodes.items():
            if load > node_residual[node_index[node]] + EPSILON:
                return False
        link_index = self.index.link_index
        link_residual = self.link_residual
        for link, load in loads.links.items():
            if load > link_residual[link_index[link]] + EPSILON:
                return False
        return True

    def shortfall(self, loads: ElementLoads) -> ElementLoads:
        """How much capacity is missing per element for these loads."""
        missing = ElementLoads()
        node_index = self.index.node_index
        for node, load in loads.nodes.items():
            gap = load - self.node_residual[node_index[node]]
            if gap > EPSILON:
                missing.nodes[node] = gap
        link_index = self.index.link_index
        for link, load in loads.links.items():
            gap = load - self.link_residual[link_index[link]]
            if gap > EPSILON:
                missing.links[link] = gap
        return missing

    def allocate(self, loads: ElementLoads) -> None:
        """Consume capacity; negative residuals (beyond ε) are a bug."""
        node_index = self.index.node_index
        node_residual = self.node_residual
        for node, load in loads.nodes.items():
            position = node_index[node]
            value = node_residual[position] - load
            node_residual[position] = value
            # The threshold is negative, so value >= 0 can never trip it;
            # branching on the sign first keeps the common path cheap.
            if value < 0.0 and value < -EPSILON * (load if load > 1.0 else 1.0):
                raise SimulationError(f"node {node!r} residual went negative")
        if loads.nodes:
            self.node_rev += 1
        link_index = self.index.link_index
        link_residual = self.link_residual
        dirty = self.link_dirty_log
        for link, load in loads.links.items():
            position = link_index[link]
            value = link_residual[position] - load
            link_residual[position] = value
            if value < 0.0 and value < -EPSILON * (load if load > 1.0 else 1.0):
                raise SimulationError(f"link {link!r} residual went negative")
            dirty.append(position)
        if len(dirty) > self.MAX_DIRTY_LOG:
            self._compact_dirty_log()

    def release(self, loads: ElementLoads) -> None:
        """Return capacity on request departure or preemption."""
        node_index = self.index.node_index
        node_residual = self.node_residual
        for node, load in loads.nodes.items():
            node_residual[node_index[node]] += load
        if loads.nodes:
            self.node_rev += 1
        link_index = self.index.link_index
        link_residual = self.link_residual
        dirty = self.link_dirty_log
        for link, load in loads.links.items():
            position = link_index[link]
            link_residual[position] += load
            dirty.append(position)
        if loads.links:
            self.link_rise_rev += 1
        if len(dirty) > self.MAX_DIRTY_LOG:
            self._compact_dirty_log()

    # -- dynamic capacity mutation (events subsystem) ------------------------

    def set_node_capacity(self, node: NodeId, capacity: float) -> bool:
        """Set a node's effective capacity, shifting its residual by the
        delta (:mod:`repro.scenarios.events`). The residual may go
        negative: active allocations exceeding the new capacity are
        *stranded* and must be resolved by a disruption policy. Returns
        whether the capacity actually changed.
        """
        position = self.index.node_index[node]
        delta = capacity - self.node_capacity[position]
        if delta == 0.0:
            return False
        self.node_capacity[position] = capacity
        self.node_residual[position] += delta
        self.node_rev += 1
        return True

    def set_link_capacity(self, link, capacity: float) -> bool:
        """Set a link's effective capacity (see :meth:`set_node_capacity`).

        The change is appended to :attr:`link_dirty_log`, so the greedy
        path cache revalidates affected shortest-path trees exactly as it
        does for allocate/release mutations.
        """
        position = self.index.link_index[link]
        delta = capacity - self.link_capacity[position]
        if delta == 0.0:
            return False
        self.link_capacity[position] = capacity
        self.link_residual[position] += delta
        if delta > 0.0:
            self.link_rise_rev += 1
        self.link_dirty_log.append(position)
        if len(self.link_dirty_log) > self.MAX_DIRTY_LOG:
            self._compact_dirty_log()
        return True

    def nominal_node_capacity(self, node: NodeId) -> float:
        """The substrate's static capacity of ``node`` (pre-events)."""
        return float(self.index.node_capacity[self.index.node_index[node]])

    def nominal_link_capacity(self, link) -> float:
        """The substrate's static capacity of ``link`` (pre-events)."""
        return float(self.index.link_capacity[self.index.link_index[link]])

    def overloaded_elements(self) -> tuple[list[NodeId], list]:
        """Elements whose residual is negative (beyond ε), in index order.

        A negative residual can only arise from an effective-capacity cut
        below the currently allocated load; the returned elements are the
        ones whose users a disruption policy must preempt or reroute.
        """
        nodes = [
            self.index.node_ids[i]
            for i, value in enumerate(self.node_residual)
            if value < -EPSILON
        ]
        links = [
            self.index.link_ids[i]
            for i, value in enumerate(self.link_residual)
            if value < -EPSILON
        ]
        return nodes, links

    def node_utilization(self, node: NodeId) -> float:
        position = self.index.node_index[node]
        capacity = self.node_capacity[position]
        if capacity <= 0:
            return 0.0
        return 1.0 - self.node_residual[position] / capacity


@dataclass
class PlanResidual:
    """Res(y, t, x): unclaimed guaranteed capacity per plan pattern.

    Keys are ``(class_key, pattern_index)``; values are demand units. Full
    fits (Eq. 19) require a single pattern able to absorb the whole request
    — embeddings are unsplittable, so the request must follow one concrete
    mapping.
    """

    plan: Plan
    residual: dict[tuple[ClassKey, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, class_plan in self.plan.classes.items():
            demand = class_plan.aggregate.demand
            for index, pattern in enumerate(class_plan.patterns):
                self.residual[(key, index)] = pattern.planned_capacity(demand)

    def find_full_fit(self, class_key: ClassKey, demand: float) -> int | None:
        """Index of a pattern whose residual covers ``demand``, if any.

        Patterns are scanned best-residual-first so load spreads across the
        planned mappings instead of exhausting them in plan order.
        """
        class_plan = self.plan.class_plan(class_key)
        if class_plan is None:
            return None
        best_index, best_value = None, demand - EPSILON
        for index in range(len(class_plan.patterns)):
            value = self.residual[(class_key, index)]
            if value > best_value:
                best_index, best_value = index, value
        return best_index

    def find_partial_fit(self, class_key: ClassKey) -> int | None:
        """Index of the pattern with the largest positive residual, if any.

        This is Algorithm 2's partial fit (line 27): some fraction α > 0 of
        the request still fits the plan, so the planned mapping remains the
        guide even though the full demand overflows it.
        """
        class_plan = self.plan.class_plan(class_key)
        if class_plan is None:
            return None
        best_index, best_value = None, EPSILON
        for index in range(len(class_plan.patterns)):
            value = self.residual[(class_key, index)]
            if value > best_value:
                best_index, best_value = index, value
        return best_index

    def draw(self, class_key: ClassKey, index: int, demand: float) -> None:
        """Claim pattern capacity for a planned allocation."""
        key = (class_key, index)
        self.residual[key] -= demand
        if self.residual[key] < -EPSILON * max(1.0, demand):
            raise SimulationError(
                f"plan residual for {key} went negative"
            )

    def release(self, class_key: ClassKey, index: int, demand: float) -> None:
        """Return pattern capacity when a planned allocation departs."""
        self.residual[(class_key, index)] += demand

    def guaranteed_remaining(self, class_key: ClassKey) -> float:
        """Total unclaimed planned capacity of one class."""
        class_plan = self.plan.class_plan(class_key)
        if class_plan is None:
            return 0.0
        return sum(
            self.residual[(class_key, index)]
            for index in range(len(class_plan.patterns))
        )
