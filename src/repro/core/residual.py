"""Residual capacity tracking (Eqs. 16–19).

:class:`ResidualState` tracks Res(S, t, x): what remains of every substrate
element's capacity given the currently active allocations. Checks use a
small epsilon so float round-trips (allocate/release cycles) never produce
spurious infeasibility.

:class:`PlanResidual` tracks Res(y, t, x): how much of each plan pattern's
guaranteed capacity is still unclaimed by active *planned* allocations.
Only planned allocations draw from it (Algorithm 2, ALLOCATE line 22);
borrowed allocations consume substrate capacity without touching the plan,
which is precisely why they are preemptible later.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.embedding import ElementLoads
from repro.errors import SimulationError
from repro.plan.pattern import Plan
from repro.stats.aggregate import ClassKey
from repro.substrate.network import LinkId, NodeId, SubstrateNetwork

#: Tolerance for capacity comparisons, scaled to capacity magnitudes.
EPSILON = 1e-6


class ResidualState:
    """Res(S, t, x): residual node and link capacities of the substrate."""

    def __init__(self, substrate: SubstrateNetwork) -> None:
        self.substrate = substrate
        self.nodes: dict[NodeId, float] = {
            v: attrs.capacity for v, attrs in substrate.nodes.items()
        }
        self.links: dict[LinkId, float] = {
            l: attrs.capacity for l, attrs in substrate.links.items()
        }

    def fits(self, loads: ElementLoads) -> bool:
        """Eq. 18: can these loads be added without violating capacity?"""
        for node, load in loads.nodes.items():
            if load > self.nodes[node] + EPSILON:
                return False
        for link, load in loads.links.items():
            if load > self.links[link] + EPSILON:
                return False
        return True

    def shortfall(self, loads: ElementLoads) -> ElementLoads:
        """How much capacity is missing per element for these loads."""
        missing = ElementLoads()
        for node, load in loads.nodes.items():
            gap = load - self.nodes[node]
            if gap > EPSILON:
                missing.nodes[node] = gap
        for link, load in loads.links.items():
            gap = load - self.links[link]
            if gap > EPSILON:
                missing.links[link] = gap
        return missing

    def allocate(self, loads: ElementLoads) -> None:
        """Consume capacity; negative residuals (beyond ε) are a bug."""
        for node, load in loads.nodes.items():
            self.nodes[node] -= load
            if self.nodes[node] < -EPSILON * max(1.0, load):
                raise SimulationError(f"node {node!r} residual went negative")
        for link, load in loads.links.items():
            self.links[link] -= load
            if self.links[link] < -EPSILON * max(1.0, load):
                raise SimulationError(f"link {link!r} residual went negative")

    def release(self, loads: ElementLoads) -> None:
        """Return capacity on request departure or preemption."""
        for node, load in loads.nodes.items():
            self.nodes[node] += load
        for link, load in loads.links.items():
            self.links[link] += load

    def node_utilization(self, node: NodeId) -> float:
        capacity = self.substrate.node_capacity(node)
        return 1.0 - self.nodes[node] / capacity if capacity > 0 else 0.0


@dataclass
class PlanResidual:
    """Res(y, t, x): unclaimed guaranteed capacity per plan pattern.

    Keys are ``(class_key, pattern_index)``; values are demand units. Full
    fits (Eq. 19) require a single pattern able to absorb the whole request
    — embeddings are unsplittable, so the request must follow one concrete
    mapping.
    """

    plan: Plan
    residual: dict[tuple[ClassKey, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, class_plan in self.plan.classes.items():
            demand = class_plan.aggregate.demand
            for index, pattern in enumerate(class_plan.patterns):
                self.residual[(key, index)] = pattern.planned_capacity(demand)

    def find_full_fit(self, class_key: ClassKey, demand: float) -> int | None:
        """Index of a pattern whose residual covers ``demand``, if any.

        Patterns are scanned best-residual-first so load spreads across the
        planned mappings instead of exhausting them in plan order.
        """
        class_plan = self.plan.class_plan(class_key)
        if class_plan is None:
            return None
        best_index, best_value = None, demand - EPSILON
        for index in range(len(class_plan.patterns)):
            value = self.residual[(class_key, index)]
            if value > best_value:
                best_index, best_value = index, value
        return best_index

    def find_partial_fit(self, class_key: ClassKey) -> int | None:
        """Index of the pattern with the largest positive residual, if any.

        This is Algorithm 2's partial fit (line 27): some fraction α > 0 of
        the request still fits the plan, so the planned mapping remains the
        guide even though the full demand overflows it.
        """
        class_plan = self.plan.class_plan(class_key)
        if class_plan is None:
            return None
        best_index, best_value = None, EPSILON
        for index in range(len(class_plan.patterns)):
            value = self.residual[(class_key, index)]
            if value > best_value:
                best_index, best_value = index, value
        return best_index

    def draw(self, class_key: ClassKey, index: int, demand: float) -> None:
        """Claim pattern capacity for a planned allocation."""
        key = (class_key, index)
        self.residual[key] -= demand
        if self.residual[key] < -EPSILON * max(1.0, demand):
            raise SimulationError(
                f"plan residual for {key} went negative"
            )

    def release(self, class_key: ClassKey, index: int, demand: float) -> None:
        """Return pattern capacity when a planned allocation departs."""
        self.residual[(class_key, index)] += demand

    def guaranteed_remaining(self, class_key: ClassKey) -> float:
        """Total unclaimed planned capacity of one class."""
        class_plan = self.plan.class_plan(class_key)
        if class_plan is None:
            return 0.0
        return sum(
            self.residual[(class_key, index)]
            for index in range(len(class_plan.patterns))
        )
