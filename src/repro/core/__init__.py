"""OLIVE: plan-guided online virtual network embedding (Sec. III-C).

This package holds the online machinery shared by OLIVE and the baselines:

* :mod:`repro.core.embedding` — concrete unsplittable embeddings x(r) and
  their induced loads (Eq. 1);
* :mod:`repro.core.residual` — residual substrate capacity Res(S, t, x)
  (Eq. 16) and the residual plan Res(y, t, x) (Eq. 17);
* :mod:`repro.core.greedy` — the collocated least-cost GREEDYEMBED
  (incremental fast path: memoized path trees + vectorized scoring);
* :mod:`repro.core.greedy_reference` — the frozen scalar GREEDYEMBED the
  decision-equivalence tests compare against;
* :mod:`repro.core.profile` — per-application static quantities
  (:class:`AppProfile`) and precompiled load recipes feeding the fast
  path;
* :mod:`repro.core.olive` — Algorithm 2: planned embedding, borrowed
  partial-fit embedding, preemption, and greedy fallback.
"""

from repro.core.embedding import ElementLoads, Embedding, compute_loads
from repro.core.greedy import GreedyContext, PathCache, greedy_embed
from repro.core.olive import Decision, OliveAlgorithm
from repro.core.profile import (
    AppProfile,
    AppProfileCache,
    LoadsRecipe,
    MemoizedEfficiency,
)
from repro.core.residual import PlanResidual, ResidualState

__all__ = [
    "Embedding",
    "ElementLoads",
    "compute_loads",
    "ResidualState",
    "PlanResidual",
    "greedy_embed",
    "GreedyContext",
    "PathCache",
    "AppProfile",
    "AppProfileCache",
    "LoadsRecipe",
    "MemoizedEfficiency",
    "OliveAlgorithm",
    "Decision",
]
