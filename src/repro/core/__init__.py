"""OLIVE: plan-guided online virtual network embedding (Sec. III-C).

This package holds the online machinery shared by OLIVE and the baselines:

* :mod:`repro.core.embedding` — concrete unsplittable embeddings x(r) and
  their induced loads (Eq. 1);
* :mod:`repro.core.residual` — residual substrate capacity Res(S, t, x)
  (Eq. 16) and the residual plan Res(y, t, x) (Eq. 17);
* :mod:`repro.core.greedy` — the collocated least-cost GREEDYEMBED;
* :mod:`repro.core.olive` — Algorithm 2: planned embedding, borrowed
  partial-fit embedding, preemption, and greedy fallback.
"""

from repro.core.embedding import Embedding, ElementLoads, compute_loads
from repro.core.residual import PlanResidual, ResidualState
from repro.core.greedy import greedy_embed
from repro.core.olive import Decision, OliveAlgorithm

__all__ = [
    "Embedding",
    "ElementLoads",
    "compute_loads",
    "ResidualState",
    "PlanResidual",
    "greedy_embed",
    "OliveAlgorithm",
    "Decision",
]
