"""Concrete embeddings x(r) and their induced loads (Eqs. 1–3).

An :class:`Embedding` is an unsplittable mapping of one request's virtual
network: VNF → substrate node, virtual link → substrate path. Its
:class:`ElementLoads` materialize Eq. 1 — ``load = d(r) · β_q · η^q_s`` —
summed per substrate element, which is what both the feasibility checks
(Eq. 18) and the cost accounting (Eq. 3) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.application import ROOT_ID, Application
from repro.apps.efficiency import EfficiencyModel
from repro.errors import SimulationError
from repro.plan.pattern import EmbeddingPattern
from repro.substrate.network import LinkId, NodeId, SubstrateNetwork

VLinkKey = tuple[int, int]


@dataclass(frozen=True)
class Embedding:
    """Unsplittable mapping of one virtual network onto the substrate."""

    node_map: dict[int, NodeId]
    link_paths: dict[VLinkKey, tuple[LinkId, ...]]

    @classmethod
    def from_pattern(cls, pattern: EmbeddingPattern) -> "Embedding":
        """Adopt a plan pattern's mapping as a concrete embedding."""
        return cls(
            node_map=dict(pattern.node_map),
            link_paths=dict(pattern.link_paths),
        )

    def is_collocated(self) -> bool:
        """True when all non-root VNFs share one substrate node."""
        hosts = {v for i, v in self.node_map.items() if i != ROOT_ID}
        return len(hosts) <= 1


@dataclass
class ElementLoads:
    """Per-element resource consumption of one embedding (Eq. 1)."""

    nodes: dict[NodeId, float] = field(default_factory=dict)
    links: dict[LinkId, float] = field(default_factory=dict)

    def cost_per_slot(self, substrate: SubstrateNetwork) -> float:
        """Σ_s load(s)·cost(s) for one active slot (the inner sum of Eq. 3)."""
        total = 0.0
        for node, load in self.nodes.items():
            total += load * substrate.node_cost(node)
        for link, load in self.links.items():
            total += load * substrate.link_cost(link)
        return total


def compute_loads(
    app: Application,
    demand: float,
    embedding: Embedding,
    substrate: SubstrateNetwork,
    efficiency: EfficiencyModel,
) -> ElementLoads:
    """Materialize Eq. 1 for every substrate element an embedding touches.

    Raises
    ------
    SimulationError
        If the embedding places a VNF where η forbids it — that would be an
        algorithm bug, not a capacity matter.
    """
    loads = ElementLoads()
    for vnf in app.vnfs:
        if vnf.id == ROOT_ID:
            continue  # β_θ = 0
        node = embedding.node_map[vnf.id]
        eta = efficiency.node_eta(vnf, substrate.nodes[node])
        if eta is None:
            raise SimulationError(
                f"VNF {vnf.id} placed on forbidden node {node!r}"
            )
        load = demand * vnf.size * eta
        if load > 0:
            loads.nodes[node] = loads.nodes.get(node, 0.0) + load
    for vlink in app.links:
        path = embedding.link_paths.get(vlink.key, ())
        for link in path:
            eta = efficiency.link_eta(vlink, substrate.links[link])
            load = demand * vlink.size * eta
            if load > 0:
                loads.links[link] = loads.links.get(link, 0.0) + load
    return loads
