"""Vectorized multi-request GREEDYEMBED: the batch kernel.

One :class:`BatchPlan` covers one same-slot run of requests (a session
slot's arrivals, or the offers a service micro-batched into one open
slot). Instead of paying one Python distance replay plus one Python host
scan per request, the kernel *speculates* cost rows for a whole chunk of
the run at once — masked numpy reductions over the
:class:`~repro.substrate.network.SubstrateIndex` arrays — and then
*commits* strictly in arrival order, so every request still sees the
residuals its predecessors left behind (sequential-equivalent
semantics).

Why speculation is safe
-----------------------

A speculative row is pure tree data: per-node route cost ``node_load ·
node_cost + dist`` where ``dist`` is replayed along one memoized
shortest-path tree (a :class:`~repro.core.greedy.PathCache` entry). The
row depends on the *tree*, never on residuals, so it cannot go stale by
itself. What can go stale is the tree choice: a predecessor's commit may
flip a link across the feasibility threshold. Each commit therefore
re-certifies the speculated entry, cheapest check first:

1. **Monotone-damage fast path.** Between speculation and commit the
   only residual mutations inside a batch window are predecessor
   *allocations* (``ResidualState.link_rise_rev`` counts every event
   that could raise a link residual; an unchanged counter proves
   monotone non-increase). Under monotonicity an entry speculated with
   an exact band ``lo < load ≤ hi`` stays exact as long as every link
   dirtied since speculation still has residual ≥ ``load``: feasible
   links cannot have crossed below the load (undirtied ones kept their
   ≥ ``hi`` residual, dirtied ones are bounded by the running minimum),
   and infeasible links can only have sunk further. The plan keeps one
   shared running minimum per speculation chunk (each dirty-log entry
   is visited once per plan), so the check is a pair of scalar
   comparisons per commit.
2. **Band revalidation.** When the fast path cannot certify (a release
   or capacity restoration occurred, or the damage minimum undercuts
   the load), the commit falls back to the cache's dirty-log /
   band-re-anchor machinery (:meth:`PathCache.revalidate`). A band that
   still covers the request's route load certifies that the entry's
   feasibility vector equals the feasibility vector a fresh lookup
   would compute **right now** — and capacity-constrained Dijkstra is a
   deterministic function of (graph, source, feasibility vector), so
   the scalar path would produce the *same tree* and hence bit-identical
   distances.

A band that no longer covers the load sends the request down the scalar
path unchanged (a counted fallback, never a semantic change).
Node-side feasibility is never speculated at all: each commit masks its
row against the residual node array of *that moment*, so OLIVE
preemptions that release capacity mid-run are handled exactly.

Bit-identity of the replay (and hence with the frozen reference in
:mod:`repro.core.greedy_reference`):

* the kernel only covers band-sharing substrates, i.e. **uniform link
  traversal costs** ``c``. Scalar replay along a tree accumulates
  ``dist[v] = dist[parent] + load·c`` in settle order, so a node at tree
  depth ``d`` receives exactly the ``d``-th partial sum of the constant
  increment ``t = load·c``: ``s_0 = 0.0, s_d = s_{d-1} + t``. The kernel
  materializes that partial-sum table with the same float64
  multiply-then-add per element and *gathers* ``dist[r, v] =
  s[r, depth(v)]`` — identical IEEE-754 operations, identical values,
  one table shared by every tree in the chunk;
* the cost row multiplies then adds exactly like the scalar scan's
  ``node_load · node_cost[v] + dist[v]``;
* ``np.argmin`` over the masked row returns the first index attaining
  the minimum — the scalar scan's first-strict-minimum tie-break over
  ascending node order (infeasible and unreached nodes sit at ``+inf``
  and cannot tie with a finite minimum).

Backends
--------

The numpy implementation is the mandatory backend *and* the oracle. When
numba is importable (it is an optional accelerator, never a dependency)
the chunk kernel is jit-compiled with identical operation order and no
fastmath, so it reproduces the numpy values bit for bit; set
``REPRO_BATCH_BACKEND=numpy`` to force the fallback (the CI no-numba leg
pins the pure-numpy path), ``numba`` to require the compiled one.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.profile import AppProfile
    from repro.workload.request import Request


def _chunk_cost_numpy(loads, unit_cost, depths, node_loads, node_cost):
    """Cost rows for one speculation chunk, vectorized.

    ``depths[r, v]`` is node ``v``'s depth in request ``r``'s tree
    (``-1`` = unreached). Row ``r`` equals the scalar path's
    ``node_load·node_cost[v] + dist[v]`` element for element: the
    partial-sum table performs the same ``previous + load·cost``
    accumulation as the settle-order replay (see the module docstring),
    and unreached nodes gather ``+inf`` from the sentinel column.
    """
    num_requests = loads.shape[0]
    max_depth = int(depths.max(initial=0))
    table = np.empty((num_requests, max_depth + 2))
    table[:, 0] = 0.0
    increment = loads * unit_cost
    for d in range(1, max_depth + 1):
        table[:, d] = table[:, d - 1] + increment
    table[:, max_depth + 1] = np.inf
    # depth -1 (unreached) indexes the last column: the inf sentinel.
    distances = table[np.arange(num_requests)[:, None], depths]
    return node_loads[:, None] * node_cost + distances


#: Which chunk backend to use: ``auto`` (numba when importable, else
#: numpy), ``numpy`` (force the fallback/oracle), ``numba`` (require the
#: compiled kernel; import errors surface instead of being swallowed).
_BACKEND = os.environ.get("REPRO_BATCH_BACKEND", "auto")

_chunk_cost = _chunk_cost_numpy
BACKEND_NAME = "numpy"

if _BACKEND not in {"auto", "numpy", "numba"}:
    raise ValueError(
        f"REPRO_BATCH_BACKEND must be auto|numpy|numba (got {_BACKEND!r})"
    )

if _BACKEND in {"auto", "numba"}:
    try:  # pragma: no cover - numba is absent in the reference environment
        from numba import njit

        @njit(cache=False)
        def _chunk_cost_loop(loads, unit_cost, depths, node_loads,
                             node_cost, out):  # noqa: ANN001
            num_requests, num_nodes = depths.shape
            max_depth = 0
            for r in range(num_requests):
                for v in range(num_nodes):
                    if depths[r, v] > max_depth:
                        max_depth = depths[r, v]
            for r in range(num_requests):
                # Same multiply-then-add sequence as the numpy oracle;
                # njit without fastmath keeps IEEE semantics, so the jit
                # output is bit-identical by construction.
                increment = loads[r] * unit_cost
                table = np.empty(max_depth + 1)
                table[0] = 0.0
                for d in range(1, max_depth + 1):
                    table[d] = table[d - 1] + increment
                for v in range(num_nodes):
                    d = depths[r, v]
                    dist = table[d] if d >= 0 else np.inf
                    out[r, v] = node_loads[r] * node_cost[v] + dist
            return out

        def _chunk_cost_numba(loads, unit_cost, depths, node_loads,
                              node_cost):
            out = np.empty(depths.shape)
            return _chunk_cost_loop(
                np.asarray(loads, dtype=np.float64),
                float(unit_cost),
                np.asarray(depths, dtype=np.int64),
                np.asarray(node_loads, dtype=np.float64),
                np.asarray(node_cost, dtype=np.float64),
                out,
            )

        _chunk_cost = _chunk_cost_numba
        BACKEND_NAME = "numba"
    except ImportError:
        if _BACKEND == "numba":
            raise


class _BatchRecord:
    """Per-request speculative state inside one :class:`BatchPlan`."""

    __slots__ = (
        "request", "profile", "source", "route_load", "node_load",
        "entry", "row", "cell", "speculated", "processed",
    )


class _DamageCell:
    """Shared damage bound for one speculation chunk.

    ``min_residual`` is the running minimum over the current residuals
    of every link dirtied since the chunk was speculated (``+inf`` while
    nothing was dirtied, ``-inf`` once a dirty-log compaction made the
    window unscannable); ``rise0`` snapshots
    :attr:`~repro.core.residual.ResidualState.link_rise_rev` at
    speculation time, so an unchanged counter proves residuals only
    decreased within the window.
    """

    __slots__ = ("min_residual", "rise0")

    def __init__(self, rise0: int) -> None:
        self.min_residual = np.inf
        self.rise0 = rise0


class BatchPlan:
    """Speculative cost rows for one same-slot run, committed in order.

    Built lazily: indexing the run costs a few profile lookups per
    request and happens on the first greedy embed of the window; runs
    that never reach the greedy fallback (all planned/borrowed, or all
    shed by admission) pay nothing. Speculation then proceeds in
    arrival-order *chunks* of :attr:`CHUNK` requests — one
    ``PathCache.lookup`` per distinct source per chunk, one vectorized
    cost evaluation for the whole chunk — skipping requests the
    algorithm already settled without the greedy path
    (:meth:`mark_done`). A commit whose speculated tree no longer
    revalidates takes the unbatched scalar path — a counted fallback,
    never a semantic change and never a re-speculation stampede.
    """

    #: Requests speculated per chunk. Large enough to amortize the numpy
    #: fixed costs, small enough that rows rarely outlive their bands.
    CHUNK = 96

    def __init__(self, ctx, pairs) -> None:
        self._ctx = ctx
        self._pairs = pairs
        self._records: dict[int, _BatchRecord] | None = None
        self._candidates: list[_BatchRecord] = []
        self._cursor = 0
        self._done: set[int] = set()
        #: Dirty-log position (absolute revision) swept into the damage
        #: cells so far; each log entry is visited once per plan.
        self._scan_rev: int | None = None
        self._cells: list[_DamageCell] = []
        #: Commits served from a speculative row.
        self.rows_used = 0
        #: Commits that fell back to the scalar path.
        self.fallbacks = 0
        #: Speculation chunks evaluated.
        self.chunks = 0

    def mark_done(self, request: "Request") -> None:
        """Note that ``request`` was settled (by any path).

        Future speculation chunks skip it; the owning algorithm calls
        this after each commit so planned/borrowed/rejected requests
        never consume speculation effort.
        """
        self._done.add(request.id)

    def _index(self) -> None:
        """Classify the run: which requests the kernel can cover.

        Covered: single-group applications with node-independent η (the
        scalar-score fast case) on a band-sharing substrate. Everything
        else (two-group GPU apps, per-node η, heterogeneous link costs)
        keeps the scalar path — exactly the cases it already handles.
        """
        ctx = self._ctx
        records: dict[int, _BatchRecord] = {}
        candidates: list[_BatchRecord] = []
        if ctx.paths.band_sharing and ctx.index.link_cost_list:
            node_index = ctx.index.node_index
            for request, app in self._pairs:
                profile = ctx.profiles.get(app)
                if len(profile.groups) != 1:
                    continue
                node_load = profile.group_load("all", request.demand)
                if not isinstance(node_load, float):
                    continue
                record = _BatchRecord()
                record.request = request
                record.profile = profile
                record.source = node_index[request.ingress]
                record.route_load = (
                    request.demand * profile.root_link_size_sum
                )
                record.node_load = node_load
                record.entry = None
                record.row = None
                record.cell = None
                record.speculated = False
                record.processed = False
                records[request.id] = record
                candidates.append(record)
        self._records = records
        self._candidates = candidates

    def _advance_damage(self) -> None:
        """Sweep new dirty-log entries into every active damage cell.

        Reads each dirtied link's *current* residual — at most equal to
        its value when dirtied while residuals are monotone (the only
        regime in which cells are consulted), so the running minimum is
        conservative. A compaction that drops unscanned entries poisons
        the cells (``-inf``): their fast path then simply never fires.
        """
        residual = self._ctx.residual
        log = residual.link_dirty_log
        base = residual.link_dirty_base
        rev = base + len(log)
        scan = self._scan_rev
        self._scan_rev = rev
        if scan is None or scan == rev or not self._cells:
            return
        if scan < base:
            for cell in self._cells:
                cell.min_residual = -np.inf
            return
        link_residual = residual.link_residual
        low = np.inf
        for position in log[scan - base:]:
            value = link_residual[position]
            if value < low:
                low = value
        for cell in self._cells:
            if low < cell.min_residual:
                cell.min_residual = low

    def _speculate_chunk(self) -> None:
        """Build cost rows for the next chunk of unsettled requests.

        One banded lookup per distinct source; same-source requests
        whose loads the fresh band covers share the entry without
        touching the cache again (band-covered ⟹ identical feasibility
        vector ⟹ identical deterministic tree). A load outside the
        shared band gets its own lookup — a second tree for the same
        source — so every indexed record speculates a row.
        """
        chunk: list[_BatchRecord] = []
        candidates = self._candidates
        done = self._done
        while self._cursor < len(candidates) and len(chunk) < self.CHUNK:
            record = candidates[self._cursor]
            self._cursor += 1
            record.speculated = True
            if record.request.id in done:
                record.processed = True
                continue
            chunk.append(record)
        if not chunk:
            return
        ctx = self._ctx
        paths = ctx.paths
        # Bring the damage sweep up to the present *before* anchoring the
        # new cell: dirt from predecessors' commits belongs to the older
        # cells, and the lookups below never mutate residuals.
        self._advance_damage()
        cell = _DamageCell(ctx.residual.link_rise_rev)
        self._cells.append(cell)
        by_source: dict[int, object] = {}
        for record in chunk:
            entry = by_source.get(record.source)
            if entry is None or not (
                entry.lo < record.route_load <= entry.hi
            ):
                entry = paths.lookup(record.source, record.route_load)
                by_source[record.source] = entry
            record.entry = entry
            record.cell = cell
        loads = np.array([record.route_load for record in chunk])
        node_loads = np.array([record.node_load for record in chunk])
        depths = np.vstack([record.entry.depth for record in chunk])
        cost = _chunk_cost(
            loads,
            ctx.index.link_cost_list[0],
            depths,
            node_loads,
            ctx.index.node_cost,
        )
        for i, record in enumerate(chunk):
            record.row = cost[i]
        self.chunks += 1

    def select_host(self, request: "Request", profile: "AppProfile"):
        """Vectorized host pick for one batched request.

        Returns ``(tree, host_idx)``, with ``host_idx == -1`` meaning "no
        feasible host" — an exact outcome identical to the scalar scan's
        — or ``None`` when this request is not covered (not in the run,
        migrated since indexing, speculated row no longer revalidates):
        the caller then takes the scalar path unchanged.
        """
        if self._records is None:
            self._index()
        record = self._records.get(request.id)
        if (
            record is None
            or record.request is not request
            or record.profile is not profile
            or record.processed
        ):
            return None
        while not record.speculated:
            self._speculate_chunk()
        record.processed = True
        if record.row is None:
            self.fallbacks += 1
            return None
        ctx = self._ctx
        # Commit-time re-certification, cheapest check first: under
        # monotone residuals (rise counter unchanged) a damage minimum
        # that stays at or above the route load proves the speculated
        # band still covers it; otherwise absorb the dirty-log suffix
        # into the entry's band (re-anchoring exactly if needed). Either
        # certificate means the entry equals the tree a scalar lookup
        # would return right now.
        self._advance_damage()
        cell = record.cell
        if not (
            cell.rise0 == ctx.residual.link_rise_rev
            and record.route_load <= cell.min_residual
        ) and not ctx.paths.revalidate(record.entry, record.route_load):
            self.fallbacks += 1
            return None
        # Exact node-side feasibility at THIS commit (predecessors'
        # allocations and preemption releases included): mask the row
        # against the current residual node array and take the first
        # minimum — the scalar scan's tie-break over ascending nodes.
        # The row is consumed exactly once, so masking in place is safe.
        row = record.row
        row[record.node_load > ctx.residual.node_array()] = np.inf
        host_idx = int(np.argmin(row))
        if row[host_idx] == np.inf:
            host_idx = -1
        self.rows_used += 1
        return record.entry, host_idx
