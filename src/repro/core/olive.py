"""OLIVE — Algorithm 2: plan-guided online embedding with compensation.

Per arriving request, in order:

1. **Planned embedding** (PLANEMBED, lines 23–26): find a plan pattern of
   the request's class whose residual planned capacity covers the whole
   demand. Such an allocation is marked ``planned`` and draws down the
   residual plan (Eq. 17). The plan is already cost-optimized, so no
   further optimization is attempted.
2. **Preemption** (lines 8–9, 35–38): if the planned embedding exceeds the
   substrate residual — because earlier non-planned allocations "borrowed"
   capacity the plan reserved — preempt borrowed allocations overlapping
   the shortfall to restore the guarantee.
3. **Borrowed partial fit** (lines 27–29): if no pattern covers the whole
   demand but one has *some* residual, embed the full request along that
   pattern anyway (subject to substrate feasibility), marked non-planned.
   It borrows unused capacity and is preemptible later.
4. **Greedy fallback** (lines 10–11, 31–34): the collocated least-cost
   embedding against the substrate residual.
5. Otherwise reject.

Running OLIVE with an empty plan short-circuits steps 1–3 and yields the
QUICKG baseline.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.apps.application import Application
from repro.apps.efficiency import EfficiencyModel, UniformEfficiency
from repro.core import greedy_reference
from repro.core.embedding import ElementLoads, Embedding, compute_loads
from repro.core.greedy import GreedyContext
from repro.core.profile import LoadsRecipe
from repro.core.residual import EPSILON, PlanResidual, ResidualState
from repro.errors import SimulationError
from repro.plan.pattern import Plan
from repro.stats.aggregate import ClassKey
from repro.substrate.network import SubstrateNetwork
from repro.workload.request import Request


@dataclass(frozen=True)
class Decision:
    """Outcome of processing one request."""

    request: Request
    accepted: bool
    planned: bool = False
    borrowed: bool = False
    via_greedy: bool = False
    embedding: Embedding | None = None
    cost_per_slot: float = 0.0
    preempted: tuple[Request, ...] = ()


@dataclass
class _ActiveAllocation:
    """Book-keeping for one active (embedded) request."""

    request: Request
    embedding: Embedding
    loads: ElementLoads
    cost_per_slot: float
    planned: bool
    pattern_index: int | None
    class_key: ClassKey


class OliveAlgorithm:
    """Stateful online embedder implementing Algorithm 2.

    The simulator drives it: call :meth:`release` for each departure at the
    start of a slot, then :meth:`process` for each arrival in order.
    """

    def __init__(
        self,
        substrate: SubstrateNetwork,
        apps: list[Application],
        plan: Plan,
        efficiency: EfficiencyModel | None = None,
        enable_preemption: bool = True,
        enable_borrowing: bool = True,
        allow_split_greedy: bool = True,
        name: str | None = None,
        use_fast_greedy: bool = True,
        greedy_cache_mode: str = "adaptive",
        expected_offers_per_slot: float | None = None,
    ) -> None:
        self.substrate = substrate
        self.apps = apps
        self.plan = plan
        self.efficiency = efficiency or UniformEfficiency()
        self.enable_preemption = enable_preemption
        self.enable_borrowing = enable_borrowing
        self.allow_split_greedy = allow_split_greedy
        self.name = name or ("QUICKG" if plan.is_empty else "OLIVE")
        self.residual = ResidualState(substrate)
        self.plan_residual = PlanResidual(plan)
        self.active: dict[int, _ActiveAllocation] = {}
        #: Incremental GREEDYEMBED state (profiles + memoized path trees);
        #: ``use_fast_greedy=False`` routes through the scalar reference
        #: instead — the decision-equivalence tests compare the two.
        self.greedy_context = (
            GreedyContext(
                substrate, self.efficiency, self.residual,
                cache_mode=greedy_cache_mode,
                expected_offers_per_slot=expected_offers_per_slot,
            )
            if use_fast_greedy
            else None
        )
        #: Precompiled per-pattern load computations (plan patterns are
        #: re-embedded verbatim; only the demand factor varies).
        self._pattern_recipes: dict[int, tuple[object, LoadsRecipe]] = {}
        #: Shared per-pattern :class:`Embedding` instances (fast engine
        #: only). A pattern's embedding is demand-independent and
        #: ``Embedding`` is frozen, so one immutable instance serves
        #: every request embedded via that pattern — value-equal to the
        #: fresh copies the reference mode builds.
        self._pattern_embeddings: dict[int, tuple[object, Embedding]] = {}
        # Mirrors of the active table for the per-slot introspection
        # sums; same keys in the same insertion order as ``active``, so
        # the sums accumulate bit-identically to iterating it.
        self._active_demands: dict[int, float] = {}
        self._active_costs: dict[int, float] = {}

    def switch_plan(self, plan: Plan) -> None:
        """Replace the embedding plan mid-run (time-windowed planning).

        Active *planned* allocations are downgraded to borrowed status:
        their patterns belong to the retired plan, so the new plan's
        guarantees must not be pinned by them — under the new plan they
        are exactly "capacity borrowed from the planned classes" and hence
        become preemptible, which is the conservative interpretation.
        """
        self.plan = plan
        self.plan_residual = PlanResidual(plan)
        self._pattern_recipes.clear()
        self._pattern_embeddings.clear()
        for allocation in self.active.values():
            allocation.planned = False
            allocation.pattern_index = None

    # -- departures ---------------------------------------------------------

    def release(self, request: Request) -> None:
        """Return a departing request's resources (slot-start bookkeeping).

        Unknown ids are tolerated: the request may have been rejected at
        arrival or preempted since.
        """
        allocation = self.active.pop(request.id, None)
        if allocation is None:
            return
        del self._active_demands[request.id]
        del self._active_costs[request.id]
        self.residual.release(allocation.loads)
        if allocation.planned:
            self.plan_residual.release(
                allocation.class_key,
                allocation.pattern_index,
                request.demand,
            )

    # -- arrivals -----------------------------------------------------------

    def process(self, request: Request) -> Decision:
        """Embed or reject one arriving request (Algorithm 2, lines 6–16)."""
        if request.id in self.active:
            raise SimulationError(f"request {request.id} processed twice")
        app = self.apps[request.app_index]
        class_key = request.class_key()

        embedding: Embedding | None = None
        loads: ElementLoads | None = None
        planned = False
        borrowed = False
        pattern_index: int | None = None
        preempted: list[Request] = []

        class_plan = self.plan.class_plan(class_key)
        if class_plan is not None:
            index = self.plan_residual.find_full_fit(class_key, request.demand)
            if index is not None:
                pattern = class_plan.patterns[index]
                embedding = self._pattern_embedding(pattern)
                loads = self._pattern_loads(
                    pattern, app, embedding, request.demand
                )
                planned = True
                pattern_index = index
            elif self.enable_borrowing:
                index = self.plan_residual.find_partial_fit(class_key)
                if index is not None:
                    pattern = class_plan.patterns[index]
                    candidate = self._pattern_embedding(pattern)
                    candidate_loads = self._pattern_loads(
                        pattern, app, candidate, request.demand
                    )
                    if self.residual.fits(candidate_loads):
                        embedding, loads = candidate, candidate_loads
                        borrowed = True

        if planned and loads is not None and not self.residual.fits(loads):
            freed = (
                self._preempt_for(loads) if self.enable_preemption else None
            )
            if freed is None:
                embedding, loads = None, None
                planned, pattern_index = False, None
            else:
                preempted = freed

        if embedding is None:
            greedy_result = self._greedy_result(request, app)
            if greedy_result is not None:
                embedding, loads = greedy_result
                return self._allocate(
                    request, app, embedding, loads, planned=False,
                    borrowed=False, via_greedy=True,
                    pattern_index=None, preempted=preempted,
                )
            return Decision(
                request=request, accepted=False, preempted=tuple(preempted)
            )

        return self._allocate(
            request, app, embedding, loads, planned=planned,
            borrowed=borrowed, via_greedy=False,
            pattern_index=pattern_index, preempted=preempted,
        )

    @contextlib.contextmanager
    def batched(self, requests: list[Request]):
        """Speculative batch window over one same-slot run of requests.

        While open, :meth:`process` calls for the listed requests may be
        served by the vectorized batch kernel
        (:mod:`repro.core.batch_kernel`); everything else — planned
        fits, borrowing, preemption, rejections — runs unchanged, and
        commits stay strictly in call order against live residuals, so
        the window never alters a decision. A no-op for the reference
        engine (``use_fast_greedy=False``) and for trivial runs.
        """
        context = self.greedy_context
        if context is None or len(requests) < 2:
            yield None
            return
        plan = context.begin_batch(
            [(request, self.apps[request.app_index]) for request in requests]
        )
        try:
            yield plan
        finally:
            context.end_batch()

    def process_many(self, requests: list[Request]) -> list[Decision]:
        """Process one slot's arrival run, sequential-equivalent.

        Exactly ``[self.process(r) for r in requests]`` — same decisions,
        same residual trajectory — but wrapped in :meth:`batched` so the
        greedy fallback amortizes shortest-path and host-scan work over
        the whole run. Each settled request is reported back to the plan
        so speculation chunks skip it.
        """
        decisions = []
        with self.batched(requests) as plan:
            if plan is None:
                decisions.extend(self.process(r) for r in requests)
            else:
                for request in requests:
                    decisions.append(self.process(request))
                    plan.mark_done(request)
        return decisions

    # -- dynamic events ------------------------------------------------------

    def active_loads(self):
        """``(request, loads)`` of active allocations, in allocation order.

        The disruption resolver scans this to find stranded allocations;
        insertion order makes its victim choice deterministic and
        identical between the fast and reference engines.
        """
        for allocation in self.active.values():
            yield allocation.request, allocation.loads

    def reroute(self, request: Request) -> bool:
        """One greedy re-embedding attempt for a disrupted request.

        The original allocation is already released; a successful
        re-embedding is non-planned (its old pattern may sit on failed
        elements), i.e. borrowed-like and preemptible. Routed through the
        same engine (fast or reference) as the arrival path, so the
        differential oracle covers rerouting too.
        """
        app = self.apps[request.app_index]
        result = self._greedy_result(request, app)
        if result is None:
            return False
        embedding, loads = result
        self._allocate(
            request, app, embedding, loads, planned=False,
            borrowed=False, via_greedy=True,
            pattern_index=None, preempted=[],
        )
        return True

    def apply_events(self, t: int, events, policy: str) -> list[Request]:
        """Apply one slot's capacity events; resolve stranded allocations.

        Shared machinery in :mod:`repro.scenarios.events`; returns the
        requests the policy dropped (reported as disruptions upstream).
        """
        from repro.scenarios.events import apply_and_resolve

        return apply_and_resolve(self, events, policy)

    # -- internals ----------------------------------------------------------

    def _greedy_result(self, request: Request, app: Application):
        """GREEDYEMBED through the configured engine: ``(embedding, loads)``
        or None. The fast path hands back the loads its residual check
        already materialized, saving a second compute_loads."""
        if self.greedy_context is not None:
            return self.greedy_context.embed(
                request, app, allow_split_groups=self.allow_split_greedy
            )
        embedding = greedy_reference.greedy_embed(
            request, app, self.substrate, self.efficiency, self.residual,
            allow_split_groups=self.allow_split_greedy,
        )
        if embedding is None:
            return None
        loads = compute_loads(
            app, request.demand, embedding, self.substrate, self.efficiency
        )
        return embedding, loads

    def _pattern_embedding(self, pattern) -> Embedding:
        """The concrete embedding of a plan pattern.

        The fast engine shares one frozen :class:`Embedding` per pattern
        (the mapping is demand-independent); the reference mode builds a
        fresh copy per request — value-equal either way, so decisions
        compare identically.
        """
        if self.greedy_context is None:
            return Embedding.from_pattern(pattern)
        entry = self._pattern_embeddings.get(id(pattern))
        if entry is None or entry[0] is not pattern:
            embedding = Embedding.from_pattern(pattern)
            self._pattern_embeddings[id(pattern)] = (pattern, embedding)
            return embedding
        return entry[1]

    def _pattern_loads(
        self,
        pattern,
        app: Application,
        embedding: Embedding,
        demand: float,
    ) -> ElementLoads:
        """Loads of a plan-pattern embedding at ``demand``.

        The fast path compiles one :class:`LoadsRecipe` per pattern; the
        reference mode (``use_fast_greedy=False``) recomputes from
        scratch — both produce bit-identical values.
        """
        if self.greedy_context is None:
            return compute_loads(
                app, demand, embedding, self.substrate, self.efficiency
            )
        entry = self._pattern_recipes.get(id(pattern))
        if entry is None or entry[0] is not pattern:
            recipe = LoadsRecipe(
                app, embedding, self.substrate, self.efficiency
            )
            self._pattern_recipes[id(pattern)] = (pattern, recipe)
        else:
            recipe = entry[1]
        return recipe.loads(demand)

    def _allocate(
        self,
        request: Request,
        app: Application,
        embedding: Embedding,
        loads: ElementLoads,
        planned: bool,
        borrowed: bool,
        via_greedy: bool,
        pattern_index: int | None,
        preempted: list[Request],
    ) -> Decision:
        """ALLOCATE (lines 18–22): commit residuals and record the request."""
        self.residual.allocate(loads)
        if planned:
            self.plan_residual.draw(
                request.class_key(), pattern_index, request.demand
            )
        cost = loads.cost_per_slot(self.substrate)
        self.active[request.id] = _ActiveAllocation(
            request=request,
            embedding=embedding,
            loads=loads,
            cost_per_slot=cost,
            planned=planned,
            pattern_index=pattern_index,
            class_key=request.class_key(),
        )
        self._active_demands[request.id] = request.demand
        self._active_costs[request.id] = cost
        return Decision(
            request=request,
            accepted=True,
            planned=planned,
            borrowed=borrowed,
            via_greedy=via_greedy,
            embedding=embedding,
            cost_per_slot=cost,
            preempted=tuple(preempted),
        )

    def _preempt_for(self, loads: ElementLoads) -> list[Request] | None:
        """PREEMPT (lines 35–38): free borrowed capacity for a planned fit.

        Only non-planned active allocations (RDONE \\ RPLAN) are candidates.
        Returns the preempted requests, or None when even preempting every
        candidate could not cover the shortfall (then nothing is touched).
        """
        shortfall = self.residual.shortfall(loads)
        if not shortfall.nodes and not shortfall.links:
            return []
        candidates = [a for a in self.active.values() if not a.planned]

        available_nodes: dict = {}
        available_links: dict = {}
        for allocation in candidates:
            for node, load in allocation.loads.nodes.items():
                available_nodes[node] = available_nodes.get(node, 0.0) + load
            for link, load in allocation.loads.links.items():
                available_links[link] = available_links.get(link, 0.0) + load
        for node, need in shortfall.nodes.items():
            if available_nodes.get(node, 0.0) + EPSILON < need:
                return None
        for link, need in shortfall.links.items():
            if available_links.get(link, 0.0) + EPSILON < need:
                return None

        remaining_nodes = dict(shortfall.nodes)
        remaining_links = dict(shortfall.links)

        def contribution(allocation: _ActiveAllocation) -> float:
            total = 0.0
            for node, load in allocation.loads.nodes.items():
                if node in remaining_nodes:
                    total += min(load, remaining_nodes[node])
            for link, load in allocation.loads.links.items():
                if link in remaining_links:
                    total += min(load, remaining_links[link])
            return total

        chosen: list[_ActiveAllocation] = []
        for allocation in sorted(candidates, key=contribution, reverse=True):
            if not remaining_nodes and not remaining_links:
                break
            if contribution(allocation) <= 0:
                continue
            chosen.append(allocation)
            for node, load in allocation.loads.nodes.items():
                if node in remaining_nodes:
                    remaining_nodes[node] -= load
                    if remaining_nodes[node] <= EPSILON:
                        del remaining_nodes[node]
            for link, load in allocation.loads.links.items():
                if link in remaining_links:
                    remaining_links[link] -= load
                    if remaining_links[link] <= EPSILON:
                        del remaining_links[link]
        if remaining_nodes or remaining_links:  # pragma: no cover
            return None

        for allocation in chosen:
            self.active.pop(allocation.request.id)
            del self._active_demands[allocation.request.id]
            del self._active_costs[allocation.request.id]
            self.residual.release(allocation.loads)
        return [allocation.request for allocation in chosen]

    # -- introspection -------------------------------------------------------

    def active_demand(self) -> float:
        """Total demand of currently embedded requests."""
        return sum(self._active_demands.values())

    def active_cost_per_slot(self) -> float:
        """Σ_s load(s)·cost(s) of the current allocation (Eq. 3 inner sum)."""
        return sum(self._active_costs.values())
