"""Reference GREEDYEMBED: the pre-fast-path scalar implementation.

This module is a frozen copy of the original per-request implementation of
Algorithm 2's GREEDYEMBED (full Dijkstra from the ingress plus an O(nodes)
candidate scan per request). It exists for one purpose: the decision-
equivalence tests drive whole simulations through it and assert that the
incremental fast path in :mod:`repro.core.greedy` produces bit-identical
:class:`~repro.sim.engine.SimulationResult` values. Do not optimize this
module — its value is that it stays simple and obviously faithful to
Algorithm 2 (lines 31-34).
"""

from __future__ import annotations

import itertools

from repro.apps.application import ROOT_ID, Application, VNFKind
from repro.apps.efficiency import EfficiencyModel
from repro.core.embedding import Embedding, compute_loads
from repro.core.residual import ResidualState
from repro.substrate.network import NodeId, SubstrateNetwork
from repro.utils.paths import capacity_constrained_dijkstra, path_links
from repro.workload.request import Request


def greedy_embed(
    request: Request,
    app: Application,
    substrate: SubstrateNetwork,
    efficiency: EfficiencyModel,
    residual: ResidualState,
    allow_split_groups: bool = True,
) -> Embedding | None:
    """Find the least-cost feasible (near-)collocated embedding, or None."""
    groups = _placement_groups(app)
    if len(groups) == 1:
        return _single_host_embed(request, app, substrate, efficiency, residual)
    if not allow_split_groups or len(groups) != 2:
        return None
    return _two_host_embed(
        request, app, substrate, efficiency, residual, groups
    )


def _placement_groups(app: Application) -> dict[str, list[int]]:
    """Partition non-root VNFs into placement-compatibility groups."""
    groups: dict[str, list[int]] = {}
    for vnf in app.non_root_vnfs():
        key = "gpu" if vnf.kind is VNFKind.GPU else "generic"
        groups.setdefault(key, []).append(vnf.id)
    return groups


def _group_node_load(
    app: Application,
    vnf_ids: list[int],
    demand: float,
    node_attrs,
    efficiency: EfficiencyModel,
) -> float | None:
    """Combined node load of a VNF group on one datacenter, or None."""
    total = 0.0
    for vnf_id in vnf_ids:
        vnf = app.vnf(vnf_id)
        eta = efficiency.node_eta(vnf, node_attrs)
        if eta is None:
            return None
        total += demand * vnf.size * eta
    return total


def _route_dijkstra(
    substrate: SubstrateNetwork,
    residual: ResidualState,
    source: NodeId,
    link_load: float,
):
    """Min-cost paths from ``source`` using links with enough residual.

    Link traversal cost is ``link_load × cost(link)`` — the per-slot price
    of carrying the crossing virtual links over that substrate link.
    """
    return capacity_constrained_dijkstra(
        substrate.adjacency,
        source,
        link_weight=lambda l: link_load * substrate.link_cost(l),
        link_feasible=lambda l: residual.links[l] >= link_load,
    )


def _single_host_embed(
    request: Request,
    app: Application,
    substrate: SubstrateNetwork,
    efficiency: EfficiencyModel,
    residual: ResidualState,
) -> Embedding | None:
    """The paper's GREEDYEMBED: all VNFs on one node, min resource cost."""
    vnf_ids = [vnf.id for vnf in app.non_root_vnfs()]
    root_links = app.children_links(ROOT_ID)
    route_load = request.demand * sum(link.size for link in root_links)

    dist, parent = _route_dijkstra(
        substrate, residual, request.ingress, route_load
    )
    best: tuple[float, NodeId] | None = None
    for v, attrs in substrate.nodes.items():
        if v not in dist:
            continue
        node_load = _group_node_load(
            app, vnf_ids, request.demand, attrs, efficiency
        )
        if node_load is None or node_load > residual.nodes[v]:
            continue
        cost = node_load * attrs.cost + dist[v]
        if best is None or cost < best[0]:
            best = (cost, v)
    if best is None:
        return None
    host = best[1]
    path = tuple(path_links(parent, request.ingress, host) or ())
    node_map = {ROOT_ID: request.ingress}
    node_map.update({vnf_id: host for vnf_id in vnf_ids})
    link_paths = {}
    for vlink in app.links:
        if vlink.tail == ROOT_ID:
            link_paths[vlink.key] = path
        else:
            link_paths[vlink.key] = ()
    embedding = Embedding(node_map=node_map, link_paths=link_paths)
    loads = compute_loads(app, request.demand, embedding, substrate, efficiency)
    if not residual.fits(loads):
        return None  # node+path loads can interact at the host
    return embedding


def _two_host_embed(
    request: Request,
    app: Application,
    substrate: SubstrateNetwork,
    efficiency: EfficiencyModel,
    residual: ResidualState,
    groups: dict[str, list[int]],
) -> Embedding | None:
    """Generalized greedy for two placement groups (GPU scenario).

    Collocates the generic group on host ``v`` and the GPU group on host
    ``w``, then routes each virtual link between the hosts of its
    endpoints. Candidate (v, w) pairs are evaluated exhaustively — the GPU
    node set is small — and the cheapest pair passing the exact residual
    check wins.
    """
    generic_ids = set(groups.get("generic", ()))
    gpu_ids = set(groups.get("gpu", ()))

    def host_group(vnf_id: int) -> str:
        if vnf_id == ROOT_ID:
            return "root"
        return "gpu" if vnf_id in gpu_ids else "generic"

    # Combined crossing load per host-group pair drives routing feasibility.
    pair_load: dict[tuple[str, str], float] = {}
    pairs_present: set[tuple[str, str]] = set()
    for vlink in app.links:
        pair = tuple(sorted((host_group(vlink.tail), host_group(vlink.head))))
        if pair[0] == pair[1]:
            continue
        pairs_present.add(pair)
        pair_load[pair] = (
            pair_load.get(pair, 0.0) + request.demand * vlink.size
        )

    root_generic = pair_load.get(("generic", "root"), 0.0)
    root_gpu = pair_load.get(("gpu", "root"), 0.0)
    cross = pair_load.get(("generic", "gpu"), 0.0)
    need_root_generic = ("generic", "root") in pairs_present
    need_root_gpu = ("gpu", "root") in pairs_present
    need_cross = ("generic", "gpu") in pairs_present

    dist_v, parent_v = _route_dijkstra(
        substrate, residual, request.ingress, root_generic
    )
    dist_w, parent_w = _route_dijkstra(
        substrate, residual, request.ingress, root_gpu
    )

    generic_hosts: list[tuple[NodeId, float]] = []
    gpu_hosts: list[tuple[NodeId, float]] = []
    for node, attrs in substrate.nodes.items():
        load = _group_node_load(
            app, sorted(generic_ids), request.demand, attrs, efficiency
        )
        if load is not None and load <= residual.nodes[node]:
            generic_hosts.append((node, load))
        load = _group_node_load(
            app, sorted(gpu_ids), request.demand, attrs, efficiency
        )
        if load is not None and load <= residual.nodes[node]:
            gpu_hosts.append((node, load))
    if not generic_hosts or not gpu_hosts:
        return None

    # One Dijkstra per GPU host candidate covers all v→w pair paths.
    gpu_paths = {
        w: _route_dijkstra(substrate, residual, w, cross) for w, _ in gpu_hosts
    }

    best: tuple[float, Embedding] | None = None
    for (v, v_load), (w, w_load) in itertools.product(generic_hosts, gpu_hosts):
        cost = v_load * substrate.node_cost(v) + w_load * substrate.node_cost(w)
        if need_root_generic:
            if v not in dist_v:
                continue
            cost += dist_v[v]
        if need_root_gpu:
            if w not in dist_w:
                continue
            cost += dist_w[w]
        dist_cross, parent_cross = gpu_paths[w]
        if need_cross:
            if v not in dist_cross:
                continue
            cost += dist_cross[v]
        if best is not None and cost >= best[0]:
            continue

        hosts = {"root": request.ingress, "generic": v, "gpu": w}
        node_map = {ROOT_ID: request.ingress}
        node_map.update({i: v for i in sorted(generic_ids)})
        node_map.update({i: w for i in sorted(gpu_ids)})
        link_paths = {}
        feasible = True
        for vlink in app.links:
            group_a = host_group(vlink.tail)
            group_b = host_group(vlink.head)
            if hosts[group_a] == hosts[group_b]:
                link_paths[vlink.key] = ()
                continue
            pair = tuple(sorted((group_a, group_b)))
            if pair == ("generic", "root"):
                links = path_links(parent_v, request.ingress, v)
            elif pair == ("gpu", "root"):
                links = path_links(parent_w, request.ingress, w)
            else:
                links = path_links(parent_cross, w, v)
            if links is None:
                feasible = False
                break
            link_paths[vlink.key] = tuple(links)
        if not feasible:
            continue
        embedding = Embedding(node_map=node_map, link_paths=link_paths)
        loads = compute_loads(
            app, request.demand, embedding, substrate, efficiency
        )
        if residual.fits(loads):
            best = (cost, embedding)
    return best[1] if best else None
