"""CLI: ``python -m repro.devtools.lint [paths] [options]``.

Exit codes: 0 — clean (no new findings, no stale baseline entries);
1 — new findings or stale baseline entries; 2 — usage/environment error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.devtools.lint import (
    ALL_RULES,
    Baseline,
    LintError,
    default_rules,
    run_lint,
    select_rules,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "repro-lint: static determinism audit of the repro source tree "
            "(rule catalog in docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all, e.g. RPR001,RPR004)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --output-format json",
    )
    parser.add_argument(
        "--output-format",
        choices=("human", "json", "github"),
        default="human",
        help=(
            "human (default), json (stable schema), or github "
            "(::error workflow-command annotations for CI)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="JSON baseline of grandfathered findings; only new ones fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in human output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    try:
        rules = (
            select_rules(args.select.split(","))
            if args.select
            else default_rules()
        )
        if args.write_baseline and not args.baseline:
            raise LintError("--write-baseline requires --baseline PATH")
        baseline = None
        baseline_path = Path(args.baseline) if args.baseline else None
        if baseline_path is not None and baseline_path.exists() and not args.write_baseline:
            baseline = Baseline.load(baseline_path)
        report = run_lint(
            [Path(p) for p in args.paths],
            rules=rules,
            baseline=baseline,
            root=Path.cwd(),
        )
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        assert baseline_path is not None
        Baseline.from_findings(
            [f for f in report.findings if not f.suppressed]
        ).write(baseline_path)
        print(
            f"wrote {baseline_path} with "
            f"{sum(not f.suppressed for f in report.findings)} entry(ies)"
        )
        return 0

    output_format = "json" if args.json else args.output_format
    if output_format == "json":
        print(report.to_json())
    elif output_format == "github":
        print(report.to_github())
    else:
        text = report.to_human()
        if args.show_baselined and report.baselined:
            shown = "\n".join(f.format_human() for f in report.baselined)
            text = f"{shown}\n{text}"
        print(text)
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
