"""repro-lint: the determinism auditor.

A custom AST lint suite that statically enforces the reproducibility
contract the dynamic harness checks end-to-end: no hash-order iteration,
no global RNG, no wall-clock leakage into results, no capacity writes
that bypass the dirty log, no unordered float accumulation, no frozen
record mutation. Run it as::

    python -m repro.devtools.lint src            # human output
    python -m repro.devtools.lint src --json     # machine output
    python -m repro.devtools.lint src --baseline lint-baseline.json

Full catalog, suppression workflow and rule-authoring guide:
docs/ANALYSIS.md.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint.baseline import Baseline, partition_findings
from repro.devtools.lint.framework import (
    FileContext,
    Finding,
    ImportTable,
    LintError,
    LintRule,
    ScopedVisitor,
    lint_file,
    lint_paths,
)
from repro.devtools.lint.report import JSON_SCHEMA_VERSION, LintReport
from repro.devtools.lint.rules import ALL_RULES, default_rules, select_rules

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "Finding",
    "ImportTable",
    "JSON_SCHEMA_VERSION",
    "LintError",
    "LintReport",
    "LintRule",
    "ScopedVisitor",
    "default_rules",
    "lint_file",
    "lint_paths",
    "run_lint",
    "select_rules",
]


def run_lint(
    paths: list[Path],
    *,
    rules: list[LintRule] | None = None,
    baseline: Baseline | None = None,
    root: Path | None = None,
) -> LintReport:
    """Lint ``paths`` and assemble the report (the API the CLI/tests use)."""
    findings, files_scanned = lint_paths(
        paths, rules if rules is not None else default_rules(), root=root
    )
    new, baselined, stale = partition_findings(findings, baseline)
    return LintReport(
        findings=findings,
        files_scanned=files_scanned,
        new=new,
        baselined=baselined,
        stale_baseline=stale,
    )
