"""Core machinery of the determinism linter.

The linter is a set of small AST rules sharing one analysis substrate:

* :class:`FileContext` — one parsed file plus everything a rule may need
  (source lines, module name, import table, suppression comments).
* :class:`ImportTable` — resolves local names to their fully-qualified
  origins (``from time import perf_counter as pc`` makes ``pc()`` resolve
  to ``time.perf_counter``), including dotted attribute chains through
  module aliases (``np.random.rand`` → ``numpy.random.rand``).
* :class:`ScopedVisitor` — an :class:`ast.NodeVisitor` that maintains a
  scope stack and per-scope *set-typed* name bindings, so rules can ask
  "is this expression an unordered container?" without a type checker.
* :class:`LintRule` — the rule base class; subclasses set ``rule_id`` /
  ``summary`` and yield :class:`Finding` objects from :meth:`check`.

Rules are intentionally conservative: they only flag when the hazard is
syntactically certain (a known-``set`` name iterated, a resolved
``time.time`` call, ...). Anything deliberate is silenced inline with
``# repro-lint: allow[RPRxxx] <reason>`` — the reason is mandatory, and
an ``allow`` that suppresses nothing is itself reported (RPR901), so the
suppression inventory can never silently rot.
"""

from __future__ import annotations

import ast
import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.devtools.lint.suppressions import Suppression, parse_suppressions

__all__ = [
    "FileContext",
    "Finding",
    "ImportTable",
    "LintError",
    "LintRule",
    "ScopedVisitor",
    "lint_context",
    "lint_file",
    "lint_paths",
]


class LintError(Exception):
    """Usage or environment error (unreadable path, bad rule selection)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``context`` is the enclosing ``Class.function`` qualname (or
    ``<module>``); it feeds the baseline fingerprint so findings survive
    unrelated line drift.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    context: str = "<module>"
    suppressed: bool = False
    suppress_reason: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (no line numbers)."""
        material = f"{self.rule}::{self.path}::{self.context}::{self.message}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def format_human(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.message}{mark}"
        )


class ImportTable:
    """Maps local names to fully-qualified origins for one module."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    def record(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                # `import a.b.c` binds `a`; `import a.b.c as x` binds the
                # full dotted path to `x`.
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                self._names[local] = target
        else:
            if node.level:  # relative imports never shadow stdlib targets
                return
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                self._names[local] = f"{module}.{alias.name}" if module else alias.name

    def qualify(self, node: ast.expr) -> str | None:
        """Fully-qualified dotted name of ``node``, if resolvable.

        Resolves ``Name`` and ``Attribute`` chains through the import
        table; returns ``None`` for anything dynamic (calls, subscripts).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self._names.get(parts[0], parts[0])
        if head == "np":  # bare convention even without an import line
            head = "numpy"
        return ".".join([head, *parts[1:]])


@dataclass
class FileContext:
    """Everything the rules need to know about one source file."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: ImportTable
    suppressions: dict[int, Suppression]
    module: str = ""

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "FileContext":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        imports = ImportTable()
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                imports.record(node)
        return cls(
            path=path,
            display_path=display_path or str(path),
            source=source,
            tree=tree,
            imports=imports,
            suppressions=parse_suppressions(source),
            module=_module_name(path),
        )

    def in_module(self, suffix: str) -> bool:
        """Whether this file is the owning module ``suffix`` (posix path)."""
        return self.path.as_posix().endswith(suffix)


def _module_name(path: Path) -> str:
    """Dotted module name, rooted at the innermost ``src`` or package dir."""
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


#: Expressions that *produce* an unordered container, syntactically.
_SET_PRODUCERS = {"set", "frozenset"}
#: Calls producing filesystem listings in arbitrary / platform order.
_FS_PRODUCERS = {
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}


class ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor with a scope stack and unordered-container inference.

    Tracks, per function/module scope, which local names are bound to
    ``set``/``frozenset`` values (``x = set()``, ``x: set[int] = ...``,
    ``x = a | b`` over known sets) or to unsorted filesystem listings.
    Subclasses get :meth:`is_unordered` / :meth:`unordered_kind` to
    interrogate arbitrary expressions, and :attr:`qualname` for the
    enclosing context string.
    """

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self._scope_stack: list[dict[str, str]] = [{}]
        self._name_stack: list[str] = []
        # Module-level functions whose *return annotation* is set-typed:
        # `pairs = _random_gnm(...)` then binds `pairs` as a set.
        self._set_returning: set[str] = {
            node.name
            for node in ast.walk(context.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.returns is not None
            and _annotation_kind(node.returns) == "set"
        }

    # -- scope bookkeeping ----------------------------------------------------

    @property
    def qualname(self) -> str:
        return ".".join(self._name_stack) or "<module>"

    def _enter(self, name: str) -> None:
        self._name_stack.append(name)
        self._scope_stack.append({})

    def _leave(self) -> None:
        self._name_stack.pop()
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node)

    def _visit_scope(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef
    ) -> None:
        self._enter(node.name)
        try:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for arg in (
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ):
                    if arg.annotation is not None:
                        kind = _annotation_kind(arg.annotation)
                        if kind is not None:
                            self._bind(arg.arg, kind)
            self.generic_visit(node)
        finally:
            self._leave()

    # -- unordered-container inference ---------------------------------------

    def _bind(self, name: str, kind: str | None) -> None:
        scope = self._scope_stack[-1]
        if kind is None:
            scope.pop(name, None)
        else:
            scope[name] = kind

    def _lookup(self, name: str) -> str | None:
        for scope in reversed(self._scope_stack):
            if name in scope:
                return scope[name]
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = self.unordered_kind(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            kind = _annotation_kind(node.annotation)
            if kind is None and node.value is not None:
                kind = self.unordered_kind(node.value)
            self._bind(node.target.id, kind)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `x |= {...}` keeps x's binding; `x += [...]` clears a stale one.
        if isinstance(node.target, ast.Name) and not isinstance(node.op, ast.BitOr):
            if self.unordered_kind(node.value) is None:
                self._bind(node.target.id, None)
        self.generic_visit(node)

    def unordered_kind(self, node: ast.expr) -> str | None:
        """``"set"`` / ``"fs"`` if ``node`` is an unordered value, else None."""
        if isinstance(node, ast.SetComp) or isinstance(node, ast.Set):
            return "set"
        if isinstance(node, ast.Call):
            qual = self.context.imports.qualify(node.func)
            if qual in _SET_PRODUCERS:
                return "set"
            if qual in _FS_PRODUCERS:
                return "fs"
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in self._set_returning
            ):
                return "set"
            return None
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            left = self.unordered_kind(node.left)
            right = self.unordered_kind(node.right)
            if "set" in (left, right):
                return "set"
            return None
        if isinstance(node, ast.Attribute) or isinstance(node, ast.Subscript):
            return None
        return None

    def is_unordered(self, node: ast.expr) -> bool:
        return self.unordered_kind(node) is not None


def _annotation_kind(annotation: ast.expr) -> str | None:
    """Map a ``set``/``frozenset``/``Set[...]`` annotation to ``"set"``."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name) and target.id in (
        "set",
        "frozenset",
        "Set",
        "FrozenSet",
        "AbstractSet",
    ):
        return "set"
    return None


class LintRule:
    """Base class for one determinism rule.

    Rules that need whole-project context (the interprocedural RPS
    family) set ``requires_project = True`` and implement ``bind``;
    :func:`lint_paths` builds one project call graph per run and hands
    it to every such rule before any file is checked. Intra-file rules
    ignore both hooks.
    """

    rule_id: str = "RPR000"
    summary: str = ""
    requires_project: bool = False

    def bind(self, project: object) -> None:
        """Receive the project call graph (project rules override)."""

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        context: FileContext,
        node: ast.AST,
        message: str,
        qualname: str = "<module>",
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=context.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            context=qualname,
        )


#: Meta-rule ids emitted by the framework itself.
MALFORMED_SUPPRESSION = "RPR900"
UNUSED_SUPPRESSION = "RPR901"


def lint_file(
    path: Path,
    rules: Iterable[LintRule],
    display_path: str | None = None,
) -> list[Finding]:
    """Run ``rules`` over one file, applying inline suppressions.

    Suppressed findings are *returned* (marked ``suppressed=True``) so
    reports can show the inventory; meta-findings are appended for
    malformed (RPR900) and unused (RPR901) ``allow`` comments. Project
    rules used through this single-file API analyze the file as a
    one-module project (the corpus fixtures rely on this).
    """
    return lint_context(FileContext.parse(path, display_path), rules)


def lint_context(
    context: FileContext,
    rules: Iterable[LintRule],
) -> list[Finding]:
    """Run ``rules`` over an already-parsed file (see :func:`lint_file`)."""
    rules = list(rules)
    active_ids = {rule.rule_id for rule in rules}
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))

    used_lines: set[int] = set()
    resolved: list[Finding] = []
    for finding in findings:
        suppression = context.suppressions.get(finding.line)
        if suppression is not None and suppression.allows(finding.rule):
            used_lines.add(finding.line)
            resolved.append(
                replace(
                    finding,
                    suppressed=True,
                    suppress_reason=suppression.reason,
                )
            )
        else:
            resolved.append(finding)

    for line, suppression in sorted(context.suppressions.items()):
        if suppression.malformed:
            resolved.append(
                Finding(
                    rule=MALFORMED_SUPPRESSION,
                    path=context.display_path,
                    line=line,
                    col=1,
                    message=(
                        "malformed suppression: expected "
                        "'# repro-lint: allow[RPRxxx] <reason>' with a "
                        "non-empty reason"
                    ),
                )
            )
        elif line not in used_lines:
            # A suppression is only judged "unused" when every rule it
            # names ran — a --select subset must not condemn allows it
            # could not evaluate (allow[*] is judged by any run).
            judgeable = "*" in suppression.rules or set(
                suppression.rules
            ) <= active_ids
            if not judgeable:
                continue
            resolved.append(
                Finding(
                    rule=UNUSED_SUPPRESSION,
                    path=context.display_path,
                    line=line,
                    col=1,
                    message=(
                        f"unused suppression allow[{','.join(suppression.rules)}] "
                        "— it silences nothing on this line; delete it"
                    ),
                )
            )
    resolved.sort(key=lambda f: (f.line, f.col, f.rule))
    return resolved


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a deterministic .py file sequence."""
    for path in paths:
        if path.is_dir():
            # rglob order is platform-dependent; RPR001 would flag us.
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")


def lint_paths(
    paths: Iterable[Path],
    rules: Iterable[LintRule],
    root: Path | None = None,
) -> tuple[list[Finding], int]:
    """Lint every ``.py`` under ``paths``; returns (findings, files_scanned).

    All files are parsed up front so that project rules (RPS family) can
    be bound to one call graph spanning the whole run — interprocedural
    facts like "reachable from a worker entrypoint" need every module,
    not the one currently being checked.
    """
    rules = list(rules)
    contexts: list[FileContext] = []
    for file_path in iter_python_files(paths):
        display = file_path
        if root is not None:
            try:
                display = file_path.relative_to(root)
            except ValueError:
                display = file_path
        contexts.append(FileContext.parse(file_path, display.as_posix()))
    project_rules = [rule for rule in rules if rule.requires_project]
    if project_rules:
        # Imported lazily: callgraph imports this module's FileContext.
        from repro.devtools.callgraph import ProjectGraph

        project = ProjectGraph.from_contexts(contexts)
        for rule in project_rules:
            rule.bind(project)
    findings: list[Finding] = []
    for context in contexts:
        findings.extend(lint_context(context, rules))
    return findings, len(contexts)
