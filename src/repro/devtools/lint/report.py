"""Finding reports: human text, machine JSON, GitHub annotations.

The JSON schema is stable (``schema_version``) because CI and the test
suite both parse it; bump the version when a field changes meaning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.devtools.lint.framework import Finding

__all__ = ["LintReport", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """Everything one lint run produced, ready to render."""

    findings: list[Finding]
    files_scanned: int
    new: list[Finding]
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def exit_code(self) -> int:
        return 1 if self.new or self.stale_baseline else 0

    def to_human(self) -> str:
        lines: list[str] = []
        for finding in self.new:
            lines.append(finding.format_human())
        if self.baselined:
            lines.append(
                f"({len(self.baselined)} baselined finding(s) not shown; "
                "run with --show-baselined or fix and shrink the baseline)"
            )
        for fingerprint in self.stale_baseline:
            lines.append(
                f"stale baseline entry {fingerprint}: the finding it "
                "grandfathers no longer occurs — remove it "
                "(--write-baseline rewrites the file)"
            )
        summary = (
            f"{self.files_scanned} file(s) scanned: "
            f"{len(self.new)} new, {len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed finding(s)"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        def encode(finding: Finding) -> dict:
            entry = {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "context": finding.context,
                "fingerprint": finding.fingerprint,
                "suppressed": finding.suppressed,
            }
            if finding.suppressed:
                entry["suppress_reason"] = finding.suppress_reason
            return entry

        payload = {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "repro-lint",
            "files_scanned": self.files_scanned,
            "findings": [encode(f) for f in self.findings],
            "new": [f.fingerprint for f in self.new],
            "stale_baseline": list(self.stale_baseline),
            "summary": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_github(self) -> str:
        """One ``::error`` workflow command per new finding.

        GitHub renders these as inline annotations on the PR diff; the
        message is %-escaped per the workflow-command spec.
        """
        lines = []
        for finding in self.new:
            message = (
                finding.message.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A")
            )
            lines.append(
                f"::error file={finding.path},line={finding.line},"
                f"col={finding.col},title={finding.rule}::{message}"
            )
        for fingerprint in self.stale_baseline:
            lines.append(
                f"::error title=repro-lint::stale baseline entry "
                f"{fingerprint} — remove it or rerun --write-baseline"
            )
        lines.append(self.to_human().rsplit("\n", 1)[-1])
        return "\n".join(lines)
