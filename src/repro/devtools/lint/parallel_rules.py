"""Parallel-safety & snapshot-integrity rules (RPS101–RPS104).

The RPR rules (:mod:`repro.devtools.lint.rules`) are intra-function;
this family is interprocedural, built on the project call graph
(:mod:`repro.devtools.callgraph`). Together they certify the two
boundaries the sharded serving tier (ROADMAP item 1) depends on: the
*pool boundary* (everything handed to a ``ProcessPoolExecutor`` /
:class:`~repro.sim.runner.ParallelRunner` must pickle, and worker code
must not mutate per-process module state) and the *pickle boundary*
(everything a ``SessionSnapshot`` captures must round-trip
``to_bytes()``/``from_bytes()`` complete and self-contained).

========  ==============================================================
RPS101    unpicklable values crossing a pool/pickle boundary — lambdas,
          local defs, generators submitted to a pool; locks, open
          handles, executors stored on snapshot-crossing objects
RPS102    module-level mutable state written by worker-reachable code or
          inside a pool-driving module — each worker process owns a
          private copy that silently diverges (the ``_pools`` /
          ``_default_runner`` hazard class)
RPS103    snapshot-incomplete state on pickle-crossing classes —
          class-level mutable defaults and instance attributes aliasing
          module globals survive ``restore()`` stale
RPS104    registry mutation at call time (registration outside module
          import scope) — worker processes replay imports, not calls,
          so late registrations exist in some processes and not others
========  ==============================================================

The runtime cross-check for this family is the snapshot round-trip
oracle in ``tests/test_event_oracle.py`` (every registered algorithm ×
event profile, bit-identical continuation after a pickle round trip) —
the dynamic test that keeps these static rules honest.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.callgraph import (
    AttributeWrite,
    FunctionInfo,
    GlobalWrite,
    ModuleInfo,
    ProjectGraph,
    describe_unpicklable,
    is_mutable_expression,
)
from repro.devtools.lint.framework import (
    FileContext,
    Finding,
    LintRule,
)

__all__ = [
    "ProjectRule",
    "RuleParallelUnpicklable",
    "RuleWorkerGlobalMutation",
    "RuleSnapshotStaleState",
    "RuleCallTimeRegistration",
]


class ProjectRule(LintRule):
    """A rule whose analysis needs the whole-project call graph.

    ``lint_paths`` builds one :class:`ProjectGraph` over every file in
    the run and hands it to :meth:`bind`; the analysis then runs once
    and its findings are replayed per file as ``check`` is called. When
    a rule is used unbound (the single-file ``lint_file`` API, e.g. the
    corpus replay tests), the "project" degrades gracefully to just that
    file — resolution is weaker but the rule still works.
    """

    requires_project = True

    def __init__(self) -> None:
        self._project: ProjectGraph | None = None
        self._memo: dict[int, dict[str, list[Finding]]] = {}

    def bind(self, project: ProjectGraph) -> None:
        self._project = project

    def check(self, context: FileContext) -> Iterator[Finding]:
        project = self._project
        if project is None:
            project = ProjectGraph.from_contexts([context])
        key = id(project)
        if key not in self._memo:
            self._memo[key] = self._analyze(project)
        yield from self._memo[key].get(context.module, [])

    def _analyze(self, project: ProjectGraph) -> dict[str, list[Finding]]:
        raise NotImplementedError

    def project_finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        qualname: str = "<module>",
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            context=qualname,
        )


def _eligible_writes(
    function: FunctionInfo, module: ModuleInfo
) -> Iterator[GlobalWrite]:
    """The module-global mutations in ``function`` that RPS102 cares about.

    A ``global``-declared rebind counts against any module-level binding
    (rebinding diverges per process even when the value is immutable —
    the ``_default_runner`` case); subscript/mutator/attribute writes
    count only against module-level *mutable* values (the ``_pools``
    case).
    """
    for write in function.writes:
        if write.kind == "rebind":
            if write.name in module.module_globals:
                yield write
        elif write.name in module.mutable_globals:
            yield write


# -- RPS101 -------------------------------------------------------------------


class RuleParallelUnpicklable(ProjectRule):
    rule_id = "RPS101"
    summary = (
        "unpicklable value crossing a pool/pickle boundary (lambda/local "
        "def submitted to a pool; lock/open handle/executor stored on a "
        "snapshot-crossing object)"
    )

    def _analyze(self, project: ProjectGraph) -> dict[str, list[Finding]]:
        findings: dict[str, list[Finding]] = {}
        for submission in project.submissions:
            if submission.unpicklable is None:
                continue
            module = project.modules[submission.module]
            findings.setdefault(submission.module, []).append(
                self.project_finding(
                    module,
                    submission.node,
                    f"{submission.unpicklable} handed to a process-pool "
                    f"{submission.kind}() cannot cross the pickle boundary "
                    "— workers receive their callable by pickling; submit "
                    "a module-level function or a picklable __call__ "
                    "object instead",
                    submission.function,
                )
            )
        roots = project.pickle_roots()
        for qualname in sorted(roots):
            info = project.classes[qualname]
            module = project.modules[info.module]
            for name, statement in info.class_attrs.items():
                value = info.class_attr_value(name)
                if value is None:
                    continue
                phrase = describe_unpicklable(value, module.imports)
                if phrase is not None:
                    findings.setdefault(info.module, []).append(
                        self.project_finding(
                            module,
                            statement,
                            f"{info.name}.{name} holds {phrase} — "
                            f"{info.name} crosses a snapshot/pool pickle "
                            "boundary, and pickle cannot serialize it; "
                            "keep process-local resources off the class "
                            "or exclude them via __getstate__",
                            info.name,
                        )
                    )
            for write in info.instance_writes:
                if write.value is None:
                    continue
                phrase = describe_unpicklable(write.value, module.imports)
                if phrase is not None:
                    method = project.functions.get(write.method)
                    findings.setdefault(info.module, []).append(
                        self.project_finding(
                            module,
                            write.node,
                            f"self.{write.attr} is assigned {phrase} — "
                            f"{info.name} crosses a snapshot/pool pickle "
                            "boundary (SessionSnapshot / ParallelRunner), "
                            "and pickle cannot serialize it; keep "
                            "process-local resources off the instance or "
                            "exclude them via __getstate__",
                            method.name if method is not None else info.name,
                        )
                    )
        return findings


# -- RPS102 -------------------------------------------------------------------


class RuleWorkerGlobalMutation(ProjectRule):
    rule_id = "RPS102"
    summary = (
        "module-level mutable state written by worker-reachable code or "
        "inside a pool-driving module (per-process copies silently "
        "diverge — the _pools/_default_runner hazard class)"
    )

    def _analyze(self, project: ProjectGraph) -> dict[str, list[Finding]]:
        findings: dict[str, list[Finding]] = {}
        seen: set[int] = set()
        reachable = project.reachable(project.worker_entrypoints())
        for qualname in sorted(reachable):
            function = project.functions[qualname]
            module = project.modules[function.module]
            for write in _eligible_writes(function, module):
                if id(write.node) in seen:
                    continue
                seen.add(id(write.node))
                findings.setdefault(function.module, []).append(
                    self.project_finding(
                        module,
                        write.node,
                        f"{function.name}() is reachable from a worker "
                        f"entrypoint and writes module-level mutable "
                        f"{write.name!r} — every pool worker mutates a "
                        "private per-process copy that silently diverges "
                        "from the parent; thread the state through "
                        "arguments/results instead",
                        function.name,
                    )
                )
        for module_name in sorted(project.modules):
            module = project.modules[module_name]
            if not module.defines_pool:
                continue
            for function in project.functions_in(module_name):
                for write in _eligible_writes(function, module):
                    if id(write.node) in seen:
                        continue
                    seen.add(id(write.node))
                    findings.setdefault(module_name, []).append(
                        self.project_finding(
                            module,
                            write.node,
                            f"{function.name}() writes module-level "
                            f"mutable {write.name!r} in a pool-driving "
                            "module — workers import this module and own "
                            "private copies, so the write never "
                            "propagates across the pool; keep the "
                            "mutation parent-process-only (and guard it) "
                            "or pass the state explicitly",
                            function.name,
                        )
                    )
        return findings


# -- RPS103 -------------------------------------------------------------------


class RuleSnapshotStaleState(ProjectRule):
    rule_id = "RPS103"
    summary = (
        "snapshot-incomplete state on a pickle-crossing class "
        "(class-level mutable default, or an instance attribute "
        "aliasing a module-level mutable — survives restore() stale)"
    )

    def _analyze(self, project: ProjectGraph) -> dict[str, list[Finding]]:
        findings: dict[str, list[Finding]] = {}
        for qualname in sorted(project.pickle_roots()):
            info = project.classes[qualname]
            module = project.modules[info.module]
            for name, statement in info.class_attrs.items():
                value = info.class_attr_value(name)
                if value is None:
                    continue
                if is_mutable_expression(value, module.imports):
                    findings.setdefault(info.module, []).append(
                        self.project_finding(
                            module,
                            statement,
                            f"class-level mutable default {info.name}."
                            f"{name} — deepcopy/pickle snapshots capture "
                            "instance state only, so a restored session "
                            "aliases whatever the live class object has "
                            "mutated since; make it an instance attribute "
                            "set in __init__",
                            info.name,
                        )
                    )
            for write in info.instance_writes:
                aliased = self._aliased_global(project, info.module, write)
                if aliased is not None:
                    method = project.functions.get(write.method)
                    findings.setdefault(info.module, []).append(
                        self.project_finding(
                            module,
                            write.node,
                            f"self.{write.attr} aliases module-level "
                            f"mutable {aliased!r} — the snapshot "
                            "deep-copies the alias, so a restored session "
                            "silently diverges from the live module "
                            "state; copy it explicitly or pass it in",
                            method.name if method is not None else info.name,
                        )
                    )
        return findings

    def _aliased_global(
        self,
        project: ProjectGraph,
        class_module: str,
        write: AttributeWrite,
    ) -> str | None:
        """Name of the module-level mutable ``self.attr = X`` aliases."""
        value = write.value
        method = write.method
        if isinstance(value, ast.Name):
            function = project.functions.get(method)
            if function is not None and value.id in function.local_names:
                return None
            module = project.modules.get(class_module)
            if module is not None and value.id in module.mutable_globals:
                return value.id
            return None
        if isinstance(value, ast.Attribute):
            module = project.modules.get(class_module)
            if module is None:
                return None
            candidate = module.imports.qualify(value)
            if candidate is None or "." not in candidate:
                return None
            owner, attr = candidate.rsplit(".", 1)
            owning = project.modules.get(owner)
            if owning is not None and attr in owning.mutable_globals:
                return candidate
        return None


# -- RPS104 -------------------------------------------------------------------


class _RegistryMutationVisitor(ast.NodeVisitor):
    """Flags registry registration/unregistration inside function bodies.

    Decorators on module- or class-level defs run at import time and are
    the sanctioned registration path; the visitor therefore inspects a
    def's decorators *before* entering its scope, so only genuinely
    call-time mutation (inside a function body) is flagged.
    """

    def __init__(self, rule: LintRule, context: FileContext) -> None:
        self.rule = rule
        self.context = context
        self.findings: list[Finding] = []
        self._depth = 0
        self._names: list[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._names) or "<module>"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._names.append(node.name)
        self._depth += 1
        try:
            for statement in node.body:
                self.visit(statement)
        finally:
            self._depth -= 1
            self._names.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._names.append(node.name)
        try:
            for statement in node.body:
                self.visit(statement)
        finally:
            self._names.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._depth > 0:
            verb = self._registry_mutation(node)
            if verb is not None:
                self.findings.append(
                    self.rule.finding(
                        self.context,
                        node,
                        f"registry {verb} at call time — worker processes "
                        "and restored sessions replay module imports, not "
                        "call sequences, so a registration made inside a "
                        "function exists in some processes and not "
                        "others; register at module import scope (the "
                        "decorator form), or unregister in the same "
                        "test-local finally block that registered",
                        self.qualname,
                    )
                )
        self.generic_visit(node)

    def _registry_mutation(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "register",
            "unregister",
        ):
            receiver = self.context.imports.qualify(func.value)
            if receiver is not None and "registry" in receiver.lower():
                return f"{func.attr}() call"
            return None
        qual = self.context.imports.qualify(func)
        if qual is None:
            return None
        tail = qual.rsplit(".", 1)[-1]
        if tail.startswith("register_"):
            return f"{tail}() call"
        return None


class RuleCallTimeRegistration(LintRule):
    rule_id = "RPS104"
    summary = (
        "registry mutation at call time (registration outside module "
        "import scope) — processes replay imports, not calls, so late "
        "registrations diverge across workers"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.in_module("repro/registry.py"):
            return  # the owning module defines the registration machinery
        visitor = _RegistryMutationVisitor(self, context)
        visitor.visit(context.tree)
        yield from visitor.findings
