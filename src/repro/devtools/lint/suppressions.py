"""Inline suppression comments: ``# repro-lint: allow[RPRxxx] <reason>``.

A suppression lives on the same physical line as the finding it silences
(for multi-line statements: the line the linter reports, i.e. where the
offending node starts). The reason is mandatory — a suppression without
one is reported as RPR900, and a suppression that silences nothing is
reported as RPR901, so every ``allow`` in the tree stays justified and
live.
"""

from __future__ import annotations

import io
import re
import tokenize
from collections.abc import Iterator
from dataclasses import dataclass

__all__ = ["Suppression", "parse_suppressions"]

#: Matches the marker anywhere in a comment token.
_MARKER = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_ALLOW = re.compile(
    r"allow\[(?P<rules>[A-Za-z0-9*,\s]+)\]\s*(?P<reason>.*)$"
)
# RPR = intra-file determinism rules, RPS = interprocedural
# parallel-safety rules; both families share the suppression grammar.
_RULE_ID = re.compile(r"^RP[RS]\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    malformed: bool = False

    def allows(self, rule_id: str) -> bool:
        if self.malformed:
            return False
        return "*" in self.rules or rule_id in self.rules


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Extract suppressions per (1-based) line number.

    Anything carrying the ``repro-lint:`` marker that does not parse into
    a well-formed ``allow[...]`` with rule ids and a non-empty reason is
    kept as ``malformed=True`` so the framework can report it instead of
    silently ignoring a typo like ``allow[RPR01]``. Only genuine COMMENT
    tokens are considered — the marker appearing inside a string or
    docstring (as in this very module's documentation) is inert.
    """
    suppressions: dict[int, Suppression] = {}
    for number, text in _iter_comments(source):
        marker = _MARKER.search(text)
        if marker is None:
            continue
        body = marker.group("body").strip()
        allow = _ALLOW.match(body)
        if allow is None:
            suppressions[number] = Suppression(
                line=number, rules=(), reason="", malformed=True
            )
            continue
        rules = tuple(
            part.strip() for part in allow.group("rules").split(",") if part.strip()
        )
        reason = allow.group("reason").strip()
        well_formed = bool(rules) and bool(reason) and all(
            part == "*" or _RULE_ID.match(part) for part in rules
        )
        suppressions[number] = Suppression(
            line=number,
            rules=rules if well_formed else (),
            reason=reason,
            malformed=not well_formed,
        )
    return suppressions


def _iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line_number, comment_text)`` for every comment token.

    Tokenization errors (the file already parsed as AST, so these are
    edge cases like an unterminated final line) end the scan silently —
    missing a suppression only ever makes the linter *stricter*.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except tokenize.TokenError:
        return
