"""Committed baseline of grandfathered findings.

The baseline lets the linter land with a non-empty tree: pre-existing
findings are fingerprinted (rule + path + enclosing context + message —
no line numbers, so unrelated edits don't churn it) and recorded in a
JSON file; only findings *not* in the baseline fail the run. Entries are
counted, so two identical hazards in one function need two baseline
slots — fixing one is progress the tool can see. Stale entries (baselined
findings that no longer occur) are reported so the file ratchets down and
never accumulates dead weight; ``--write-baseline`` rewrites it from the
current tree.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.framework import Finding, LintError

__all__ = ["Baseline", "partition_findings"]

_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint → allowed-occurrence-count map, with provenance notes."""

    counts: Counter = field(default_factory=Counter)
    notes: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
        if payload.get("version") != _VERSION:
            raise LintError(
                f"baseline {path} has version {payload.get('version')!r}; "
                f"this tool writes version {_VERSION}"
            )
        baseline = cls()
        for entry in payload.get("findings", []):
            fingerprint = entry["fingerprint"]
            baseline.counts[fingerprint] += int(entry.get("count", 1))
            if "note" in entry:
                baseline.notes[fingerprint] = entry["note"]
        return baseline

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.counts[finding.fingerprint] += 1
            baseline.notes.setdefault(
                finding.fingerprint,
                f"{finding.rule} {finding.path} ({finding.context})",
            )
        return baseline

    def write(self, path: Path) -> None:
        entries = [
            {
                "fingerprint": fingerprint,
                "count": count,
                "note": self.notes.get(fingerprint, ""),
            }
            for fingerprint, count in sorted(self.counts.items())
        ]
        payload = {"version": _VERSION, "findings": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def partition_findings(
    findings: list[Finding], baseline: Baseline | None
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Split unsuppressed findings into (new, baselined) + stale entries.

    ``stale`` is the list of baseline fingerprints whose budget was not
    (fully) consumed by the current findings — hazards that were fixed but
    whose baseline slots were never removed.
    """
    active = [f for f in findings if not f.suppressed]
    if baseline is None:
        return active, [], []
    budget = Counter(baseline.counts)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in active:
        if budget[finding.fingerprint] > 0:
            budget[finding.fingerprint] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        fingerprint for fingerprint, count in budget.items() if count > 0
    )
    return new, matched, stale
