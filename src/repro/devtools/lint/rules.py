"""The determinism rule catalog (RPR001–RPR006).

Each rule codifies one invariant the dynamic test harness (goldens,
fast-vs-reference oracle, jobs=1 ≡ jobs=N, session ≡ batch) relies on but
cannot enforce at the source level. docs/ANALYSIS.md carries the full
catalog with one real-bug example per rule; the short version:

========  ==============================================================
RPR001    iteration over ``set``/``frozenset`` values or unsorted
          filesystem listings — order varies under hash randomization
          (the PR 3 ``split_gpu_datacenters`` bug class)
RPR002    global-state RNG (``random.*`` module functions, legacy
          ``np.random.*``) instead of seeded generators from
          ``repro.utils.rng``
RPR003    wall-clock reads outside the whitelisted
          ``slots_per_second``/``requests_per_second`` runtime metrics
RPR004    direct capacity writes on ``ResidualState`` that bypass
          ``set_node_capacity``/``set_link_capacity`` and skip the dirty
          log → PathCache invalidation chain
RPR005    ``sum()`` over unordered containers (float reassociation
          breaks bit-identity)
RPR006    mutation of frozen dataclasses / registry internals outside
          their owning module
========  ==============================================================

The interprocedural RPS101–RPS104 family (worker/pickle boundary
certification, built on :mod:`repro.devtools.callgraph`) lives in
:mod:`repro.devtools.lint.parallel_rules` and joins ``ALL_RULES`` here.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.devtools.lint.framework import (
    FileContext,
    Finding,
    LintError,
    LintRule,
    ScopedVisitor,
)
from repro.devtools.lint.parallel_rules import (
    RuleCallTimeRegistration,
    RuleParallelUnpicklable,
    RuleSnapshotStaleState,
    RuleWorkerGlobalMutation,
)

__all__ = [
    "ALL_RULES",
    "RuleSetIteration",
    "RuleGlobalRng",
    "RuleWallClock",
    "RuleCapacityWrite",
    "RuleUnorderedSum",
    "RuleFrozenMutation",
    "RuleParallelUnpicklable",
    "RuleWorkerGlobalMutation",
    "RuleSnapshotStaleState",
    "RuleCallTimeRegistration",
    "default_rules",
    "select_rules",
]


class _CollectingVisitor(ScopedVisitor):
    """ScopedVisitor that accumulates findings on behalf of one rule."""

    def __init__(self, rule: LintRule, context: FileContext) -> None:
        super().__init__(context)
        self.rule = rule
        self.findings: list[Finding] = []

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            self.rule.finding(self.context, node, message, self.qualname)
        )


def _run_visitor(
    rule: LintRule, context: FileContext, visitor_cls: type[_CollectingVisitor]
) -> Iterator[Finding]:
    visitor = visitor_cls(rule, context)
    visitor.visit(context.tree)
    yield from visitor.findings


# -- RPR001 -------------------------------------------------------------------

#: Order-independent consumers: iterating inside these is harmless.
_ORDER_FREE_CALLS = {"sorted", "len", "min", "max", "any", "all", "sum", "frozenset", "set"}
#: Order-*dependent* consumers that materialize the iteration order.
_ORDER_CAPTURING_CALLS = {"list", "tuple", "enumerate", "iter", "next", "map", "filter", "zip"}


class _SetIterationVisitor(_CollectingVisitor):
    def __init__(self, rule: LintRule, context: FileContext) -> None:
        super().__init__(rule, context)
        # Generator expressions consumed by sum() are RPR005's findings;
        # claiming them here avoids double-reporting one hazard.
        self._claimed_by_sum: set[ast.expr] = set()

    def _flag(self, node: ast.expr, where: str) -> None:
        kind = self.unordered_kind(node)
        if kind == "set":
            self.emit(
                node,
                f"iteration over a set/frozenset in {where} — order varies "
                "under hash randomization; sort it (e.g. sorted(...)) or "
                "iterate the ordered source collection",
            )
        elif kind == "fs":
            self.emit(
                node,
                f"unsorted filesystem listing iterated in {where} — "
                "os.listdir/glob order is platform- and inode-dependent; "
                "wrap it in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag(node.iter, "a for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._flag(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comp(
        self,
        node: ast.ListComp | ast.DictComp | ast.GeneratorExp,
        kind: str,
    ) -> None:
        for generator in node.generators:
            self._flag(generator.iter, kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, "a list comprehension")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set comprehension's *result* is unordered anyway; iterating a
        # set to build another set is not an ordering hazard.
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, "a dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if node in self._claimed_by_sum:
            self.generic_visit(node)
            return
        self._visit_comp(node, "a generator expression")

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.context.imports.qualify(node.func)
        if qual in _ORDER_CAPTURING_CALLS:
            for arg in node.args:
                self._flag(arg, f"{qual}()")
        elif qual == "sum" and node.args:
            if isinstance(node.args[0], ast.GeneratorExp):
                self._claimed_by_sum.add(node.args[0])
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("join", "extend", "update")
            and node.args
        ):
            self._flag(node.args[0], f".{node.func.attr}()")
        self.generic_visit(node)


class RuleSetIteration(LintRule):
    rule_id = "RPR001"
    summary = (
        "iteration over set/frozenset values or unsorted filesystem "
        "listings (hash-randomized / platform-dependent order)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from _run_visitor(self, context, _SetIterationVisitor)


# -- RPR002 -------------------------------------------------------------------

#: Legacy numpy global-state RNG entry points (RandomState singleton).
_NUMPY_LEGACY = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
    "laplace", "logistic", "lognormal", "multinomial",
    "multivariate_normal", "negative_binomial", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf", "get_state", "set_state",
}
#: Explicit-generator constructors — these are the *sanctioned* API.
_NUMPY_SANCTIONED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
}


class _GlobalRngVisitor(_CollectingVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        qual = self.context.imports.qualify(node.func)
        if qual is not None:
            if qual.startswith("random."):
                self.emit(
                    node,
                    f"{qual}() draws from the process-global random module "
                    "state — thread a seeded numpy Generator from "
                    "repro.utils.rng (make_rng/child_rng) instead",
                )
            elif qual.startswith("numpy.random."):
                tail = qual.rsplit(".", 1)[1]
                if tail in _NUMPY_LEGACY and tail not in _NUMPY_SANCTIONED:
                    self.emit(
                        node,
                        f"{qual}() uses numpy's legacy global RandomState — "
                        "results depend on import-time seeding and call "
                        "interleaving; use a Generator from "
                        "repro.utils.rng instead",
                    )
        self.generic_visit(node)


class RuleGlobalRng(LintRule):
    rule_id = "RPR002"
    summary = (
        "global-state RNG (random.* module functions, legacy np.random.*) "
        "instead of seeded generators from repro.utils.rng"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.in_module("repro/utils/rng.py"):
            return  # the owning module: defines the sanctioned plumbing
        yield from _run_visitor(self, context, _GlobalRngVisitor)


# -- RPR003 -------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
#: Enclosing functions whose whole purpose is runtime telemetry; their
#: values reach results only through the slots_per_second /
#: requests_per_second metrics, which goldens treat as key-only.
_WALL_CLOCK_ALLOWED_CONTEXTS = {"slots_per_second", "requests_per_second"}


class _WallClockVisitor(_CollectingVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        qual = self.context.imports.qualify(node.func)
        if qual in _WALL_CLOCK:
            tail = self.qualname.rsplit(".", 1)[-1]
            if tail not in _WALL_CLOCK_ALLOWED_CONTEXTS:
                self.emit(
                    node,
                    f"{qual}() reads the wall clock — nondeterministic "
                    "values must not flow into results; only the "
                    "slots_per_second/requests_per_second runtime metrics "
                    "(key-only in goldens) are whitelisted",
                )
        self.generic_visit(node)


class RuleWallClock(LintRule):
    rule_id = "RPR003"
    summary = (
        "wall-clock reads outside the whitelisted "
        "slots_per_second/requests_per_second runtime metrics"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from _run_visitor(self, context, _WallClockVisitor)


# -- RPR004 -------------------------------------------------------------------

_CAPACITY_ATTRS = {"node_capacity", "link_capacity"}
_LIST_MUTATORS = {
    "append", "extend", "insert", "clear", "pop", "remove", "sort", "reverse",
}


class _CapacityWriteVisitor(_CollectingVisitor):
    def _capacity_attr(self, node: ast.expr) -> str | None:
        """The capacity attribute a write target reaches, if any."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in _CAPACITY_ATTRS:
            # `self.index.node_capacity` is the substrate's immutable
            # nominal array, not the ResidualState effective-capacity
            # list; writes to it are a different bug, not this rule.
            return node.attr
        return None

    def _flag(self, node: ast.AST, attr: str) -> None:
        setter = "set_node_capacity" if attr == "node_capacity" else "set_link_capacity"
        self.emit(
            node,
            f"direct write to ResidualState.{attr} bypasses {setter}() — "
            "the residual shift and dirty-log append are skipped, so the "
            "greedy PathCache keeps serving stale shortest-path trees",
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = self._capacity_attr(target)
            if attr is not None:
                self._flag(node, attr)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._capacity_attr(node.target)
        if attr is not None:
            self._flag(node, attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LIST_MUTATORS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in _CAPACITY_ATTRS
        ):
            self._flag(node, func.value.attr)
        self.generic_visit(node)


class RuleCapacityWrite(LintRule):
    rule_id = "RPR004"
    summary = (
        "direct capacity writes on ResidualState bypassing "
        "set_node_capacity/set_link_capacity (skips dirty-log → "
        "PathCache invalidation)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.in_module("repro/core/residual.py"):
            return  # the owning module implements the setters themselves
        yield from _run_visitor(self, context, _CapacityWriteVisitor)


# -- RPR005 -------------------------------------------------------------------


class _UnorderedSumVisitor(_CollectingVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        qual = self.context.imports.qualify(node.func)
        if qual == "sum" and node.args:
            arg = node.args[0]
            if self.unordered_kind(arg) is not None:
                self.emit(
                    node,
                    "sum() over an unordered container — float addition is "
                    "not associative, so hash-order variation changes the "
                    "result bits; sum a sorted(...) or ordered source, or "
                    "use math.fsum for order-independent exact summation",
                )
            elif isinstance(arg, ast.GeneratorExp) and any(
                self.unordered_kind(generator.iter) is not None
                for generator in arg.generators
            ):
                self.emit(
                    node,
                    "sum() over a generator draining an unordered container "
                    "— float reassociation under hash-order variation "
                    "breaks bit-identity; iterate a sorted(...) source",
                )
        self.generic_visit(node)


class RuleUnorderedSum(LintRule):
    rule_id = "RPR005"
    summary = (
        "sum()/accumulation over unordered containers "
        "(float reassociation breaks bit-identity)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        yield from _run_visitor(self, context, _UnorderedSumVisitor)


# -- RPR006 -------------------------------------------------------------------


class _FrozenMutationVisitor(_CollectingVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        qual = self.context.imports.qualify(node.func)
        if qual == "object.__setattr__" and node.args:
            target = node.args[0]
            if not (isinstance(target, ast.Name) and target.id == "self"):
                self.emit(
                    node,
                    "object.__setattr__ on a foreign instance defeats a "
                    "frozen dataclass's immutability — frozen events and "
                    "records are shared across sessions/processes and must "
                    "only be rebuilt via dataclasses.replace()",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_entries":
            self.emit(
                node,
                "access to Registry._entries outside repro.registry — the "
                "entry table's insertion order and duplicate policy are "
                "the registry's invariants; use register()/unregister()/"
                "get()/as_mapping()",
            )
        self.generic_visit(node)


class RuleFrozenMutation(LintRule):
    rule_id = "RPR006"
    summary = (
        "mutation of frozen event dataclasses or registry internals "
        "outside their owning module"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if context.in_module("repro/registry.py"):
            return  # the owning module manages its own entry table
        yield from _run_visitor(self, context, _FrozenMutationVisitor)


ALL_RULES: tuple[type[LintRule], ...] = (
    RuleSetIteration,
    RuleGlobalRng,
    RuleWallClock,
    RuleCapacityWrite,
    RuleUnorderedSum,
    RuleFrozenMutation,
    RuleParallelUnpicklable,
    RuleWorkerGlobalMutation,
    RuleSnapshotStaleState,
    RuleCallTimeRegistration,
)


def default_rules() -> list[LintRule]:
    return [rule() for rule in ALL_RULES]


def select_rules(ids: Iterable[str]) -> list[LintRule]:
    """Instantiate the rules named by ``ids``.

    A token is either an exact rule id (``RPR001``) or a family prefix
    selecting every rule that starts with it (``RPS`` → RPS101–RPS104,
    ``RPR`` → the intra-file determinism catalog).
    """
    wanted = {rule_id.strip().upper() for rule_id in ids if rule_id.strip()}
    known = {rule.rule_id: rule for rule in ALL_RULES}
    selected: set[str] = set()
    unknown: list[str] = []
    for token in sorted(wanted):
        if token in known:
            selected.add(token)
            continue
        family = sorted(
            rule_id for rule_id in known if rule_id.startswith(token)
        )
        if family:
            selected.update(family)
        else:
            unknown.append(token)
    if unknown:
        raise LintError(
            f"unknown rule id(s) {sorted(unknown)}; known: {sorted(known)} "
            "(family prefixes like RPR or RPS select the whole family)"
        )
    return [known[rule_id]() for rule_id in sorted(selected)]
