"""Developer tooling that ships with the library but never runs in it.

``repro.devtools`` hosts the static-analysis layer (:mod:`repro.devtools.lint`)
that machine-checks the reproducibility contract the test suite enforces
dynamically: bit-exact golden snapshots across Python versions, ``jobs=1`` ≡
``jobs=N``, fast-vs-reference oracle identity, session ≡ batch. Nothing in
here is imported by ``repro`` at runtime.
"""
