"""An import-resolving call graph over the project, built purely on ``ast``.

``repro.devtools.lint`` (PR 7) proved the pattern of codifying
reproducibility invariants as AST rules — but its rules are all
intra-function. The sharded serving tier (ROADMAP item 1) stakes
correctness on *interprocedural* properties: everything crossing a
``ProcessPoolExecutor`` submission or a ``SessionSnapshot.to_bytes()``
pickle must be serializable, and state reachable from a worker must not
alias module-level mutables that silently diverge per process. This
module is the shared analysis substrate for the rules that certify those
boundaries (the RPS1xx family in
:mod:`repro.devtools.lint.parallel_rules`):

* :class:`ProjectGraph` — every module, class and function in the
  analyzed tree, with call / reference / instantiation edges resolved
  through each module's import table (``from repro.api import
  run_single`` makes a bare ``run_single()`` resolve to
  ``repro.api.run_single``);
* attribute maps — class-body assignments and every ``self.attr = ...``
  site per class, so rules can reason about what an instance *holds*;
* boundary discovery — :attr:`ProjectGraph.submissions` lists callables
  handed to pool executors or :class:`~repro.sim.runner.ParallelRunner`,
  :meth:`ProjectGraph.worker_entrypoints` resolves them to function
  qualnames, and :meth:`ProjectGraph.pickle_roots` finds the classes
  whose instances cross a snapshot/pool pickle boundary
  (snapshot-shaped: ``snapshot``/``to_bytes``/``from_bytes``/
  ``__getstate__``/``__reduce__``; algorithm-shaped: ``release`` plus
  ``process`` or ``run_slot``; submitted task objects), expanded
  transitively through ``self.attr = ProjectClass(...)`` assignments;
* :meth:`ProjectGraph.reachable` — the BFS closure rules use for
  "reachable from a worker entrypoint" queries.

Everything is syntactic: no imports of the analyzed code, no type
inference. Resolution is deliberately conservative — an edge exists only
when the callee is certain (a resolved import, a module-local name,
``self.method``, a local variable bound to a project-class construction,
or a class attribute default such as ``run_fn: Callable = run_single``);
anything dynamic resolves to *nothing* rather than to everything, so the
rules built on top underreport instead of crying wolf.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # runtime import would be circular: framework's package
    # __init__ pulls in the rule catalog, which builds on this module.
    from repro.devtools.lint.framework import FileContext, ImportTable

__all__ = [
    "AttributeWrite",
    "ClassInfo",
    "FunctionInfo",
    "GlobalWrite",
    "ModuleInfo",
    "ProjectGraph",
    "SubmissionSite",
    "MUTABLE_CONSTRUCTORS",
    "MUTATOR_METHODS",
    "describe_unpicklable",
    "is_mutable_expression",
]


#: Calls that build a mutable container (module-level bindings to these
#: are per-process state that can silently diverge across workers).
MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "bytearray",
    "collections.deque",
    "collections.defaultdict",
    "collections.Counter",
    "collections.OrderedDict",
}

#: Constructors whose results pickle cannot serialize — process-local
#: resources that must never be stored on a snapshot-crossing object or
#: handed to a pool. Values are the human phrase used in rule messages.
UNPICKLABLE_CALLS = {
    "open": "an open file handle",
    "io.open": "an open file handle",
    "threading.Lock": "a thread lock",
    "threading.RLock": "a thread lock",
    "threading.Condition": "a thread condition",
    "threading.Event": "a thread event",
    "threading.Semaphore": "a thread semaphore",
    "threading.BoundedSemaphore": "a thread semaphore",
    "threading.local": "thread-local storage",
    "socket.socket": "a socket",
    "concurrent.futures.ProcessPoolExecutor": "a process-pool executor",
    "concurrent.futures.ThreadPoolExecutor": "a thread-pool executor",
    "concurrent.futures.process.ProcessPoolExecutor": "a process-pool executor",
    "concurrent.futures.thread.ThreadPoolExecutor": "a thread-pool executor",
    "multiprocessing.Pool": "a process pool",
    "multiprocessing.Lock": "a process lock",
    "multiprocessing.Manager": "a multiprocessing manager",
}

#: Method names that mutate a container in place. A call like
#: ``_pools.pop(...)`` on a module-level dict is a write for RPS102.
MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

#: Executor constructors: a module that calls one of these (or submits to
#: a pool) is a *pool-defining* module — its module-level mutables exist
#: once per worker process.
_EXECUTOR_CONSTRUCTORS = {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool"}

_POOL_METHODS = {"submit", "map"}
_RUNNER_METHODS = {"repeat"}
_SUBMITTER_FUNCTIONS = {"repeat_runs"}
_POOLISH_TOKENS = ("pool", "executor")
_RUNNERISH_TOKENS = ("runner",)

_SNAPSHOT_METHODS = {
    "snapshot",
    "to_bytes",
    "from_bytes",
    "__getstate__",
    "__setstate__",
    "__reduce__",
}


def is_mutable_expression(node: ast.expr, imports: ImportTable) -> bool:
    """Whether ``node`` syntactically builds a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        qual = imports.qualify(node.func)
        if qual is None:
            return False
        return qual in MUTABLE_CONSTRUCTORS or qual.rsplit(".", 1)[-1] in {
            "deque",
            "defaultdict",
            "Counter",
            "OrderedDict",
        }
    return False


def describe_unpicklable(node: ast.expr, imports: ImportTable) -> str | None:
    """Human phrase if ``node`` builds an unpicklable value, else None."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(node, ast.Call):
        qual = imports.qualify(node.func)
        if qual is None:
            return None
        if qual in UNPICKLABLE_CALLS:
            return UNPICKLABLE_CALLS[qual]
        tail = qual.rsplit(".", 1)[-1]
        if tail in _EXECUTOR_CONSTRUCTORS:
            return "a pool executor"
    return None


def _name_tokens(node: ast.expr) -> list[str]:
    """Lower-cased identifier tokens in a Name/Attribute/Call chain."""
    tokens: list[str] = []
    current: ast.expr | None = node
    while current is not None:
        if isinstance(current, ast.Attribute):
            tokens.append(current.attr.lower())
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Name):
            tokens.append(current.id.lower())
            current = None
        else:
            current = None
    return tokens


def _matches_tokens(node: ast.expr, needles: Sequence[str]) -> bool:
    return any(
        needle in token for token in _name_tokens(node) for needle in needles
    )


@dataclass(frozen=True)
class GlobalWrite:
    """One mutation of a module-level binding inside a function body.

    ``kind`` is ``rebind`` (via ``global``), ``subscript``, ``mutator``
    (an in-place method like ``.pop``), ``attribute`` or ``delete``.
    """

    name: str
    kind: str
    node: ast.AST


@dataclass(frozen=True)
class AttributeWrite:
    """One ``self.attr = value`` site inside a method."""

    attr: str
    node: ast.stmt
    value: ast.expr | None
    method: str  # qualname of the method performing the write


@dataclass
class FunctionInfo:
    """One function or method, with resolved project-internal edges."""

    qualname: str  # e.g. "repro.api._PointTask.__call__"
    module: str
    name: str  # within-module qualname, e.g. "_PointTask.__call__"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None = None
    calls: list[str] = field(default_factory=list)
    instantiates: list[str] = field(default_factory=list)
    references: list[str] = field(default_factory=list)
    local_names: set[str] = field(default_factory=set)
    global_declared: set[str] = field(default_factory=set)
    writes: list[GlobalWrite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class: bases, methods, class attrs and instance-write sites."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    class_attrs: dict[str, ast.stmt] = field(default_factory=dict)
    instance_writes: list[AttributeWrite] = field(default_factory=list)

    def class_attr_value(self, name: str) -> ast.expr | None:
        node = self.class_attrs.get(name)
        if isinstance(node, ast.Assign):
            return node.value
        if isinstance(node, ast.AnnAssign):
            return node.value
        return None


@dataclass(frozen=True)
class SubmissionSite:
    """One callable handed across a process-pool boundary."""

    node: ast.Call
    module: str
    function: str  # within-module qualname of the enclosing scope
    kind: str  # "submit" | "map" | "repeat" | "repeat_runs"
    argument: ast.expr | None
    entrypoints: tuple[str, ...]  # resolved worker entrypoint qualnames
    unpicklable: str | None  # phrase when the callable cannot pickle


@dataclass
class ModuleInfo:
    """One analyzed module: its AST, imports and module-level state."""

    name: str
    path: str  # display path (what findings report)
    tree: ast.Module
    imports: ImportTable
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)
    module_globals: set[str] = field(default_factory=set)
    mutable_globals: set[str] = field(default_factory=set)
    defines_pool: bool = False


# -- collection ---------------------------------------------------------------


@dataclass
class _RawCall:
    caller: str  # function qualname
    kind: str  # "name" | "selfattr"
    target: str  # dotted candidate or attribute name


@dataclass
class _RawSubmission:
    node: ast.Call
    module: str
    function: str
    kind: str
    argument: ast.expr | None
    spec: tuple[str, ...]  # resolution spec, see _resolve_submission
    unpicklable: str | None


@dataclass
class _Scope:
    kind: str  # "module" | "class" | "function"
    name: str
    info: FunctionInfo | ClassInfo | None
    bindings: dict[str, tuple[str, str]] = field(default_factory=dict)


class _ModuleCollector(ast.NodeVisitor):
    """Single-pass collector for one module's functions/classes/writes."""

    def __init__(self, context: FileContext, graph: "ProjectGraph") -> None:
        self.context = context
        self.graph = graph
        self.module = ModuleInfo(
            name=context.module,
            path=context.display_path,
            tree=context.tree,
            imports=context.imports,
        )
        self.raw_calls: list[_RawCall] = []
        self.raw_submissions: list[_RawSubmission] = []
        self._scopes: list[_Scope] = [_Scope("module", context.module, None)]

    # -- scope helpers --------------------------------------------------------

    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _within(self) -> str:
        """Within-module qualname of the current scope ("a.b" or "")."""
        return ".".join(s.name for s in self._scopes[1:])

    def _qualname(self, name: str) -> str:
        within = self._within()
        prefix = f"{within}." if within else ""
        return f"{self.module.name}.{prefix}{name}"

    def _enclosing_function(self) -> FunctionInfo | None:
        for scope in reversed(self._scopes):
            if scope.kind == "function":
                assert isinstance(scope.info, FunctionInfo)
                return scope.info
        return None

    def _enclosing_class(self) -> ClassInfo | None:
        for scope in reversed(self._scopes):
            if scope.kind == "class":
                assert isinstance(scope.info, ClassInfo)
                return scope.info
        return None

    def _lookup_binding(self, name: str) -> tuple[str, str] | None:
        for scope in reversed(self._scopes):
            if scope.kind == "class":
                continue  # class bodies don't leak bindings into methods
            if name in scope.bindings:
                return scope.bindings[name]
        return None

    def _is_local(self, name: str) -> bool:
        function = self._enclosing_function()
        if function is None:
            return False
        return (
            name in function.local_names
            and name not in function.global_declared
        )

    # -- definitions ----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        qualname = self._qualname(node.name)
        enclosing_class = (
            self._enclosing_class() if self._scope.kind == "class" else None
        )
        within = self._within()
        info = FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            name=f"{within}.{node.name}" if within else node.name,
            node=node,
            class_qualname=(
                enclosing_class.qualname if enclosing_class else None
            ),
        )
        arguments = node.args
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ):
            info.local_names.add(arg.arg)
        for vararg in (arguments.vararg, arguments.kwarg):
            if vararg is not None:
                info.local_names.add(vararg.arg)
        self.graph.functions[qualname] = info
        if self._scope.kind == "module":
            self.module.functions[node.name] = qualname
        if enclosing_class is not None:
            enclosing_class.methods[node.name] = qualname
        parent_function = self._enclosing_function()
        if parent_function is not None:
            # A nested def: the outer function references (may call) it,
            # and handing it to a pool is an RPS101 unpicklable hazard.
            parent_function.references.append(qualname)
            parent_function.local_names.add(node.name)
            self._scope.bindings[node.name] = ("localfunc", qualname)
        self._scopes.append(_Scope("function", node.name, info))
        try:
            for default in (
                *arguments.defaults,
                *[d for d in arguments.kw_defaults if d is not None],
            ):
                self.visit(default)
            for statement in node.body:
                self.visit(statement)
        finally:
            self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            self.visit(decorator)
        qualname = self._qualname(node.name)
        info = ClassInfo(
            qualname=qualname,
            module=self.module.name,
            name=node.name,
            node=node,
        )
        for base in node.bases:
            candidate = self.context.imports.qualify(base)
            if candidate is not None:
                info.bases.append(candidate)
        self.graph.classes[qualname] = info
        if self._scope.kind == "module":
            self.module.classes[node.name] = qualname
        self._scopes.append(_Scope("class", node.name, info))
        try:
            for statement in node.body:
                self.visit(statement)
        finally:
            self._scopes.pop()

    # -- bindings and writes --------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        function = self._enclosing_function()
        if function is not None:
            function.global_declared.update(node.names)
            # `global X` inside any function marks X as per-process
            # mutable *binding* state even when its value is immutable.
            self.module.module_globals.update(node.names)
            self.module.mutable_globals.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self._handle_store(target, node, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self._handle_store(node.target, node, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        target = node.target
        if isinstance(target, ast.Name):
            if self._scope.kind == "function":
                function = self._enclosing_function()
                assert function is not None
                if target.id in function.global_declared:
                    function.writes.append(
                        GlobalWrite(target.id, "rebind", node)
                    )
                else:
                    function.local_names.add(target.id)
        else:
            self._record_indirect_write(target, node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._record_indirect_write(target, node, kind="delete")
            self.visit(target)

    def _handle_store(
        self, target: ast.expr, statement: ast.stmt, value: ast.expr | None
    ) -> None:
        scope_kind = self._scope.kind
        if isinstance(target, ast.Name):
            if scope_kind == "module":
                self.module.module_globals.add(target.id)
                if value is not None and is_mutable_expression(
                    value, self.context.imports
                ):
                    self.module.mutable_globals.add(target.id)
            elif scope_kind == "class":
                enclosing = self._enclosing_class()
                assert enclosing is not None
                enclosing.class_attrs[target.id] = statement
            else:
                function = self._enclosing_function()
                assert function is not None
                if target.id in function.global_declared:
                    function.writes.append(
                        GlobalWrite(target.id, "rebind", statement)
                    )
                else:
                    function.local_names.add(target.id)
                    if value is not None:
                        binding = self._classify_binding(value)
                        if binding is not None:
                            self._scope.bindings[target.id] = binding
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_store(element, statement, None)
        elif isinstance(target, ast.Starred):
            self._handle_store(target.value, statement, None)
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and scope_kind == "function"
            ):
                function = self._enclosing_function()
                assert function is not None
                enclosing = self.graph.classes.get(
                    function.class_qualname or ""
                )
                if enclosing is not None:
                    enclosing.instance_writes.append(
                        AttributeWrite(
                            attr=target.attr,
                            node=statement,
                            value=value,
                            method=function.qualname,
                        )
                    )
            else:
                self._record_indirect_write(target, statement)
        elif isinstance(target, ast.Subscript):
            self._record_indirect_write(target, statement)

    def _record_indirect_write(
        self, target: ast.expr, statement: ast.AST, kind: str | None = None
    ) -> None:
        """A store through ``X[...]`` or ``X.attr`` — a write *to* X."""
        if self._scope.kind != "function":
            return
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if not isinstance(base, ast.Name) or self._is_local(base.id):
            return
        write_kind = kind or (
            "subscript" if isinstance(target, ast.Subscript) else "attribute"
        )
        function = self._enclosing_function()
        assert function is not None
        function.writes.append(GlobalWrite(base.id, write_kind, statement))

    def _classify_binding(self, value: ast.expr) -> tuple[str, str] | None:
        """Tag a local binding when its value shape matters later."""
        if isinstance(value, ast.Lambda):
            return ("lambda", "")
        if isinstance(value, ast.Call):
            candidate = self.context.imports.qualify(value.func)
            if candidate is None:
                return None
            tail = candidate.rsplit(".", 1)[-1]
            if tail in _EXECUTOR_CONSTRUCTORS:
                return ("executor", candidate)
            if tail == "ParallelRunner":
                return ("runner", candidate)
            return ("instance", candidate)
        if isinstance(value, (ast.Name, ast.Attribute)):
            candidate = self.context.imports.qualify(value)
            if candidate is not None:
                return ("alias", candidate)
        return None

    def visit_With(self, node: ast.With) -> None:
        self._handle_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._handle_with(node)

    def _handle_with(self, node: ast.With | ast.AsyncWith) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if isinstance(item.optional_vars, ast.Name):
                function = self._enclosing_function()
                if function is not None:
                    function.local_names.add(item.optional_vars.id)
                binding = self._classify_binding(item.context_expr)
                if binding is not None and self._scope.kind == "function":
                    self._scope.bindings[item.optional_vars.id] = binding
        for statement in node.body:
            self.visit(statement)

    def visit_For(self, node: ast.For) -> None:
        self._bind_loop_target(node.target)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._bind_loop_target(node.target)
        self.generic_visit(node)

    def _bind_loop_target(self, target: ast.expr) -> None:
        function = self._enclosing_function()
        if function is None:
            return
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                function.local_names.add(node.id)

    # -- calls ----------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._maybe_record_submission(node)
        self._maybe_record_mutator(node)
        function = self._enclosing_function()
        if function is not None:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                self.raw_calls.append(
                    _RawCall(function.qualname, "selfattr", func.attr)
                )
            else:
                candidate = self.context.imports.qualify(func)
                if candidate is not None:
                    self.raw_calls.append(
                        _RawCall(function.qualname, "name", candidate)
                    )
        if self._is_executor_construction(node):
            self.module.defines_pool = True
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # A bare function reference (passed as a value, stored in a
        # field default, ...) keeps the target reachable.
        if isinstance(node.ctx, ast.Load):
            function = self._enclosing_function()
            if function is not None and not self._is_local(node.id):
                self.raw_calls.append(
                    _RawCall(function.qualname, "ref", node.id)
                )

    def _is_executor_construction(self, node: ast.Call) -> bool:
        candidate = self.context.imports.qualify(node.func)
        if candidate is None:
            return False
        return candidate.rsplit(".", 1)[-1] in _EXECUTOR_CONSTRUCTORS

    def _maybe_record_mutator(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS
        ):
            return
        base = func.value
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if not isinstance(base, ast.Name) or self._is_local(base.id):
            return
        function = self._enclosing_function()
        if function is not None:
            function.writes.append(GlobalWrite(base.id, "mutator", node))

    # -- pool submissions -----------------------------------------------------

    def _maybe_record_submission(self, node: ast.Call) -> None:
        func = node.func
        kind: str | None = None
        if isinstance(func, ast.Attribute):
            if func.attr in _POOL_METHODS and self._receiver_is_poolish(
                func.value
            ):
                kind = func.attr
            elif func.attr in _RUNNER_METHODS and self._receiver_is_runnerish(
                func.value
            ):
                kind = func.attr
        else:
            candidate = self.context.imports.qualify(func)
            if (
                candidate is not None
                and candidate.rsplit(".", 1)[-1] in _SUBMITTER_FUNCTIONS
            ):
                kind = "repeat_runs"
        if kind is None:
            return
        argument = node.args[0] if node.args else None
        if argument is None:
            for keyword in node.keywords:
                if keyword.arg in ("run", "fn", "func", "task"):
                    argument = keyword.value
                    break
        spec, unpicklable = self._submission_spec(argument)
        self.raw_submissions.append(
            _RawSubmission(
                node=node,
                module=self.module.name,
                function=self._within() or "<module>",
                kind=kind,
                argument=argument,
                spec=spec,
                unpicklable=unpicklable,
            )
        )

    def _receiver_is_poolish(self, receiver: ast.expr) -> bool:
        if _matches_tokens(receiver, _POOLISH_TOKENS):
            return True
        if isinstance(receiver, ast.Name):
            binding = self._lookup_binding(receiver.id)
            return binding is not None and binding[0] == "executor"
        if isinstance(receiver, ast.Call):
            candidate = self.context.imports.qualify(receiver.func)
            return (
                candidate is not None
                and candidate.rsplit(".", 1)[-1] in _EXECUTOR_CONSTRUCTORS
            )
        return False

    def _receiver_is_runnerish(self, receiver: ast.expr) -> bool:
        if _matches_tokens(receiver, _RUNNERISH_TOKENS):
            return True
        if isinstance(receiver, ast.Name):
            binding = self._lookup_binding(receiver.id)
            return binding is not None and binding[0] == "runner"
        if isinstance(receiver, ast.Call):
            candidate = self.context.imports.qualify(receiver.func)
            return (
                candidate is not None
                and candidate.rsplit(".", 1)[-1] == "ParallelRunner"
            )
        return False

    def _submission_spec(
        self, argument: ast.expr | None
    ) -> tuple[tuple[str, ...], str | None]:
        """(resolution spec, unpicklable phrase) for a submitted callable."""
        if argument is None:
            return ((), None)
        if isinstance(argument, ast.Lambda):
            return ((), "a lambda")
        if isinstance(argument, ast.GeneratorExp):
            return ((), "a generator expression")
        if isinstance(argument, ast.Name):
            binding = self._lookup_binding(argument.id)
            if binding is not None:
                tag, candidate = binding
                if tag == "localfunc":
                    return (
                        ("function", candidate),
                        f"the local function {argument.id!r} "
                        "(defined inside another function)",
                    )
                if tag == "lambda":
                    return ((), "a lambda")
                if tag == "instance":
                    return (("instance", candidate), None)
                if tag == "alias":
                    return (("name", candidate), None)
            candidate = self.context.imports.qualify(argument)
            if candidate is not None:
                return (("name", candidate), None)
            return ((), None)
        if isinstance(argument, (ast.Attribute,)):
            candidate = self.context.imports.qualify(argument)
            if candidate is not None:
                return (("name", candidate), None)
        if isinstance(argument, ast.Call):
            candidate = self.context.imports.qualify(argument.func)
            if candidate is not None:
                return (("instance", candidate), None)
        return ((), None)


# -- the graph ----------------------------------------------------------------


class ProjectGraph:
    """The resolved project: modules, classes, functions and edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.submissions: list[SubmissionSite] = []
        self._raw_calls: list[_RawCall] = []
        self._raw_submissions: list[_RawSubmission] = []

    @classmethod
    def from_contexts(cls, contexts: Iterable[FileContext]) -> "ProjectGraph":
        graph = cls()
        for context in contexts:
            collector = _ModuleCollector(context, graph)
            collector.visit(context.tree)
            graph.modules[context.module] = collector.module
            graph._raw_calls.extend(collector.raw_calls)
            graph._raw_submissions.extend(collector.raw_submissions)
        graph._resolve()
        return graph

    @classmethod
    def from_paths(cls, paths: Iterable[Path]) -> "ProjectGraph":
        """Convenience builder parsing every ``.py`` under ``paths``."""
        from repro.devtools.lint.framework import (
            FileContext,
            iter_python_files,
        )

        contexts = [
            FileContext.parse(path, path.as_posix())
            for path in iter_python_files(paths)
        ]
        return cls.from_contexts(contexts)

    # -- resolution -----------------------------------------------------------

    def _lookup_function(self, module: str, candidate: str) -> str | None:
        if "." not in candidate:
            info = self.modules.get(module)
            if info is not None and candidate in info.functions:
                return info.functions[candidate]
            return None
        if candidate in self.functions:
            return candidate
        return None

    def _lookup_class(self, module: str, candidate: str) -> str | None:
        if "." not in candidate:
            info = self.modules.get(module)
            if info is not None and candidate in info.classes:
                return info.classes[candidate]
            return None
        if candidate in self.classes:
            return candidate
        return None

    def _resolve_method(self, class_qualname: str, attr: str) -> str | None:
        """Resolve ``self.attr(...)`` through the class, its project bases
        and its class-attribute defaults (``run_fn: Callable = run_single``)."""
        seen: set[str] = set()
        queue: deque[str] = deque([class_qualname])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.methods:
                return info.methods[attr]
            default = info.class_attr_value(attr)
            if default is not None and isinstance(
                default, (ast.Name, ast.Attribute)
            ):
                candidate = self.modules[info.module].imports.qualify(default)
                if candidate is not None:
                    resolved = self._lookup_function(info.module, candidate)
                    if resolved is not None:
                        return resolved
            for base in info.bases:
                resolved_base = self._lookup_class(info.module, base)
                if resolved_base is not None:
                    queue.append(resolved_base)
        return None

    def _resolve(self) -> None:
        for raw in self._raw_calls:
            caller = self.functions.get(raw.caller)
            if caller is None:
                continue
            if raw.kind == "selfattr":
                if caller.class_qualname is None:
                    continue
                resolved = self._resolve_method(
                    caller.class_qualname, raw.target
                )
                if resolved is not None:
                    caller.calls.append(resolved)
                continue
            function = self._lookup_function(caller.module, raw.target)
            if function is not None:
                if raw.kind == "name":
                    caller.calls.append(function)
                else:
                    caller.references.append(function)
                continue
            klass = self._lookup_class(caller.module, raw.target)
            if klass is not None and raw.kind == "name":
                caller.instantiates.append(klass)
        for raw_submission in self._raw_submissions:
            self.submissions.append(self._resolve_submission(raw_submission))
        self._raw_calls.clear()
        self._raw_submissions.clear()

    def _resolve_submission(self, raw: _RawSubmission) -> SubmissionSite:
        entrypoints: list[str] = []
        if len(raw.spec) == 2:
            tag, candidate = raw.spec[0], raw.spec[1]
            if tag == "function":
                if candidate in self.functions:
                    entrypoints.append(candidate)
            elif tag == "name":
                function = self._lookup_function(raw.module, candidate)
                if function is not None:
                    entrypoints.append(function)
                else:
                    klass = self._lookup_class(raw.module, candidate)
                    if klass is not None:
                        entrypoints.extend(self._callable_entry(klass))
            elif tag == "instance":
                klass = self._lookup_class(raw.module, candidate)
                if klass is not None:
                    entrypoints.extend(self._callable_entry(klass))
        return SubmissionSite(
            node=raw.node,
            module=raw.module,
            function=raw.function,
            kind=raw.kind,
            argument=raw.argument,
            entrypoints=tuple(entrypoints),
            unpicklable=raw.unpicklable,
        )

    def _callable_entry(self, class_qualname: str) -> list[str]:
        info = self.classes.get(class_qualname)
        if info is None:
            return []
        entries = []
        for method in ("__call__", "__init__"):
            if method in info.methods:
                entries.append(info.methods[method])
        return entries[:1] if entries else []

    # -- queries --------------------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Function qualnames reachable from ``roots`` via resolved edges."""
        seen: set[str] = set()
        queue: deque[str] = deque(roots)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            function = self.functions.get(current)
            if function is None:
                continue
            seen.add(current)
            queue.extend(function.calls)
            queue.extend(function.references)
            for klass in function.instantiates:
                info = self.classes.get(klass)
                if info is not None and "__init__" in info.methods:
                    queue.append(info.methods["__init__"])
        return seen

    def worker_entrypoints(self) -> set[str]:
        """Functions that run inside pool workers (resolved submissions)."""
        entrypoints: set[str] = set()
        for submission in self.submissions:
            entrypoints.update(submission.entrypoints)
        return entrypoints

    def pickle_roots(self) -> set[str]:
        """Classes whose instances cross a snapshot/pool pickle boundary.

        Seeds: snapshot-shaped classes (define ``snapshot``/``to_bytes``/
        ``from_bytes``/``__getstate__``/``__reduce__``), algorithm-shaped
        classes (``release`` plus ``process`` or ``run_slot`` — the duck
        type every registered embedder satisfies), and submitted task
        classes. Expanded transitively: ``self.attr = ProjectClass(...)``
        on a root makes ``ProjectClass`` a root too (its state rides the
        same pickle).
        """
        roots: set[str] = set()
        for qualname, info in self.classes.items():
            method_names = set(info.methods)
            if method_names & _SNAPSHOT_METHODS:
                roots.add(qualname)
            elif "release" in method_names and (
                method_names & {"process", "run_slot"}
            ):
                roots.add(qualname)
        for submission in self.submissions:
            for entrypoint in submission.entrypoints:
                function = self.functions.get(entrypoint)
                if function is not None and function.class_qualname:
                    roots.add(function.class_qualname)
        frontier = deque(roots)
        while frontier:
            current = frontier.popleft()
            info = self.classes.get(current)
            if info is None:
                continue
            for write in info.instance_writes:
                if not isinstance(write.value, ast.Call):
                    continue
                candidate = self.modules[info.module].imports.qualify(
                    write.value.func
                )
                if candidate is None:
                    continue
                held = self._lookup_class(info.module, candidate)
                if held is not None and held not in roots:
                    roots.add(held)
                    frontier.append(held)
        return roots

    def functions_in(self, module: str) -> Iterator[FunctionInfo]:
        for function in self.functions.values():
            if function.module == module:
                yield function

    def classes_in(self, module: str) -> Iterator[ClassInfo]:
        for info in self.classes.values():
            if info.module == module:
                yield info
