"""Fluent experiment facade — the one public entry point for experiments.

One expression assembles scenarios, fans seeded repetitions out over a
process pool, consults the on-disk result cache, and returns a tidy
result object::

    from repro.api import Experiment
    from repro.experiments.config import PAPER_UTILIZATIONS, ExperimentConfig

    result = (
        Experiment(ExperimentConfig.bench())
        .algorithms("OLIVE", "QUICKG")
        .sweep("utilization", PAPER_UTILIZATIONS)
        .perturb(shift_plan_ingress=True)
        .run(jobs=8)
    )
    print(result.table("rejection_rate"))
    rows = result.to_rows()          # tidy dicts, one per (point, alg, metric)
    result.to_csv("shifted.csv")

Every algorithm/topology/trace/app-mix name is resolved through
:mod:`repro.registry`, so components registered by third-party code work
here unchanged. Summaries are bit-identical for every job count and for
cached vs uncached runs: repetition *i* is fully determined by
``base_seed + i``, and the cache stores the aggregated
:class:`~repro.sim.runner.ConfidenceInterval` values keyed by the exact
parameter set (plus a fingerprint of the installed ``repro`` code).

The lower-level pieces (:func:`run_single`, :func:`summarize_run`,
:func:`run_point`) are public too — the figure drivers in
:mod:`repro.experiments.figures` are thin wrappers over this module.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import inspect
import io
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.errors import SimulationError
from repro.experiments.cache import get_active_cache, result_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import (
    DEFAULT_METRICS,
    Scenario,
    algorithms_need_plan,
    build_scenario,
    make_algorithm,
)
from repro.registry import (
    algorithm_registry,
    app_mix_registry,
    efficiency_registry,
    event_profile_registry,
    topology_registry,
    trace_registry,
)
from repro.scenarios import profiles as _event_profiles  # noqa: F401 (registers presets)
from repro.scenarios.events import DISRUPTION_POLICIES, EventSchedule
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import (
    availability,
    balance_index,
    cost_breakdown,
    disruption_rate,
    mean_recovery_time,
    rejection_rate,
)
from repro.sim.runner import (
    ConfidenceInterval,
    ParallelRunner,
    get_default_runner,
)
from repro.sim.session import SimulationSession
from repro.utils.rng import child_rng, make_rng

#: The paper's default comparison set (FULLG joins in Fig. 9/10 only).
DEFAULT_ALGORITHMS = ("OLIVE", "QUICKG", "SLOTOFF")

#: Scenario-level perturbation knobs accepted by :meth:`Experiment.perturb`.
#: Most parameterize :func:`~repro.experiments.scenario.build_scenario`
#: without changing the online workload; ``events``/``event_policy``
#: instead attach a dynamic-event schedule to the simulation itself.
PERTURBATION_KEYS = frozenset(
    {
        "plan_utilization",
        "shift_plan_ingress",
        "num_quantiles",
        "with_plan",
        "events",
        "event_policy",
    }
)

_CONFIG_FIELDS = frozenset(f.name for f in fields(ExperimentConfig))


# -- the sweep-point engine ---------------------------------------------------


def resolve_events(
    events, scenario: Scenario, seed: int, policy: str | None = None
) -> EventSchedule | None:
    """Materialize an event schedule for one repetition.

    ``events`` is a registered profile name (resolved with a seed-derived
    rng, so repetition *i* gets its own deterministic schedule), an
    :class:`EventSchedule` instance, or None. ``policy`` overrides the
    schedule's stranded-request policy.
    """
    if events is None:
        return None
    if isinstance(events, str):
        schedule = event_profile_registry.create(
            events, scenario, child_rng(make_rng(seed), "events", events)
        )
    elif isinstance(events, EventSchedule):
        schedule = events
    else:
        raise SimulationError(
            "events must be a registered profile name or an EventSchedule "
            f"(got {type(events).__name__}); known profiles: "
            f"{list(event_profile_registry.names())}"
        )
    if policy is not None and policy != schedule.policy:
        schedule = schedule.with_policy(policy)
    schedule.validate(scenario.substrate, num_apps=len(scenario.apps))
    return schedule


def run_single(
    config: ExperimentConfig,
    seed: int,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    events=None,
    event_policy: str | None = None,
    **scenario_kwargs,
) -> tuple[Scenario, dict[str, SimulationResult]]:
    """Run one repetition of one configuration for several algorithms.

    The plan is computed iff any requested algorithm declares
    ``needs_plan`` in the registry (override with an explicit
    ``with_plan=...``). All algorithms see the *same* trace and plan —
    the paper's methodology — and, when ``events`` names a registered
    event profile (or is an :class:`EventSchedule`), the same dynamic
    event schedule.
    """
    scenario_kwargs.setdefault(
        "with_plan", algorithms_need_plan(algorithms)
    )
    scenario = build_scenario(config, seed, **scenario_kwargs)
    schedule = resolve_events(events, scenario, seed, event_policy)
    online = scenario.online_requests()
    results = {}
    for name in algorithms:
        algorithm = make_algorithm(name, scenario)
        results[name] = simulate(
            algorithm, online, config.online_slots, events=schedule
        )
    return scenario, results


def summarize_run(
    scenario: Scenario, results: dict[str, SimulationResult]
) -> dict[str, float]:
    """Flatten one repetition's results into ``alg:metric`` values."""
    window = scenario.config.measure_window
    metrics: dict[str, float] = {}
    for name, result in results.items():
        costs = cost_breakdown(
            result, scenario.substrate, scenario.apps, window
        )
        metrics[f"{name}:rejection_rate"] = rejection_rate(result, window)
        metrics[f"{name}:resource_cost"] = costs.resource
        metrics[f"{name}:rejection_cost"] = costs.rejection
        metrics[f"{name}:total_cost"] = costs.total
        metrics[f"{name}:runtime"] = result.runtime_seconds
        metrics[f"{name}:slots_per_sec"] = result.slots_per_second
        metrics[f"{name}:requests_per_sec"] = result.requests_per_second
        metrics[f"{name}:balance"] = balance_index(
            result, len(scenario.apps), window
        )
        metrics[f"{name}:disrupted_rate"] = disruption_rate(result, window)
        metrics[f"{name}:availability"] = availability(result, window)
        metrics[f"{name}:recovery_time"] = mean_recovery_time(result)
    return metrics


@dataclass(frozen=True)
class _PointTask:
    """One repetition of one sweep point, picklable for the process pool.

    ``run_fn``/``summarize_fn`` are module-level functions (pickled by
    reference), letting the legacy ``figures`` shims route the engine
    through their own monkeypatchable names.
    """

    config: ExperimentConfig
    algorithms: tuple[str, ...]
    scenario_kwargs: tuple[tuple[str, object], ...]
    run_fn: Callable = run_single
    summarize_fn: Callable = summarize_run

    def __call__(self, seed: int) -> dict[str, float]:
        scenario, results = self.run_fn(
            self.config,
            seed,
            self.algorithms,
            **dict(self.scenario_kwargs),
        )
        return self.summarize_fn(scenario, results)


#: Everything under this directory is covered by the cache's own
#: ``code_fingerprint`` (the whole ``repro`` package).
_REPRO_PACKAGE_ROOT = Path(__file__).resolve().parent


def _plugin_fingerprint(
    config: ExperimentConfig,
    algorithms: Sequence[str],
    events: str | None = None,
) -> str | None:
    """Hash third-party component code referenced by this sweep point.

    The result cache's ``code_fingerprint`` covers only the ``repro``
    package, so a registered plugin (algorithm, topology, trace, mix,
    efficiency model, event profile) could change without invalidating
    cached results. This hashes the source file of every out-of-package
    factory the point uses; ``None`` when all components are built-ins,
    keeping built-in cache keys unchanged.
    """
    entries = [algorithm_registry.get(name) for name in algorithms]
    entries += [
        # Sized families are spelled "family:<nodes>"; the registry entry
        # (and hence the plugin source) is keyed by the base name.
        topology_registry.get(config.topology.partition(":")[0]),
        trace_registry.get(config.trace_kind),
        app_mix_registry.get(config.app_mix),
        efficiency_registry.get(
            config.efficiency or ("gpu" if config.gpu_scenario else "uniform")
        ),
    ]
    if events is not None:
        entries.append(event_profile_registry.get(events))
    digest = hashlib.sha256()
    external = False
    for entry in entries:
        factory = entry.factory
        try:
            source = inspect.getsourcefile(factory)
        except TypeError:
            source = None
        if source is not None and Path(source).resolve().is_relative_to(
            _REPRO_PACKAGE_ROOT
        ):
            continue
        external = True
        digest.update(entry.name.encode())
        if source is not None:
            try:
                digest.update(Path(source).read_bytes())
                continue
            except OSError:
                pass
        # No readable source (REPL/exec-defined): fall back to the
        # qualified name — stable across processes, unlike repr().
        qualname = getattr(factory, "__qualname__", type(factory).__name__)
        digest.update(f"{factory.__module__}.{qualname}".encode())
    return digest.hexdigest() if external else None


def run_point(
    config: ExperimentConfig,
    algorithms: Sequence[str],
    runner: ParallelRunner | None = None,
    use_cache: bool = True,
    run_fn: Callable = run_single,
    summarize_fn: Callable = summarize_run,
    **scenario_kwargs,
) -> dict[str, ConfidenceInterval]:
    """Repeat one configuration and summarize with confidence intervals.

    Repetitions run through ``runner`` (the process-wide default when not
    given). When a result cache is active (and ``use_cache``) the whole
    sweep point is looked up first, so re-running a sweep recomputes only
    changed points.
    """
    cache = get_active_cache() if use_cache else None
    if isinstance(scenario_kwargs.get("events"), EventSchedule):
        # Ad-hoc schedule objects have no stable serialized identity; only
        # registered profile names participate in result caching.
        cache = None
    key = None
    if cache is not None:
        extra = dict(scenario_kwargs)
        events = scenario_kwargs.get("events")
        plugin_code = _plugin_fingerprint(
            config, algorithms, events if isinstance(events, str) else None
        )
        if plugin_code is not None:
            extra["plugin_code"] = plugin_code
        key = result_key(config, "sweep", algorithms, extra=extra)
        cached = cache.get(key)
        if cached is not None:
            return cached
    task = _PointTask(
        config,
        tuple(algorithms),
        tuple(sorted(scenario_kwargs.items())),
        run_fn,
        summarize_fn,
    )
    if runner is None:
        runner = get_default_runner()
    summary = runner.repeat(task, config.repetitions, config.base_seed)
    if cache is not None and key is not None:
        cache.put(key, summary)
    return summary


# -- results ------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point: its parameters and the per-``alg:metric`` summary."""

    params: Mapping[str, object]
    config: ExperimentConfig
    summary: Mapping[str, ConfidenceInterval]

    def value(self, algorithm: str, metric: str) -> ConfidenceInterval:
        """The summarized interval for one ``algorithm:metric`` pair."""
        key = f"{algorithm}:{metric}"
        if key not in self.summary:
            raise SimulationError(
                f"no summary for {key!r}; available: {sorted(self.summary)}"
            )
        return self.summary[key]


class SweepResult:
    """Structured result of :meth:`Experiment.run` — tidy rows on demand."""

    def __init__(
        self,
        points: Sequence[SweepPoint],
        algorithms: tuple[str, ...],
        sweep_params: tuple[str, ...],
    ) -> None:
        self.points = list(points)
        self.algorithms = algorithms
        self.sweep_params = sweep_params

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> SweepPoint:
        return self.points[index]

    @property
    def summary(self) -> Mapping[str, ConfidenceInterval]:
        """The single point's summary (sweep-less experiments)."""
        if len(self.points) != 1:
            raise SimulationError(
                f"experiment has {len(self.points)} sweep points; "
                "iterate or use keyed()/to_rows() instead of .summary"
            )
        return self.points[0].summary

    def keyed(self, param: str) -> dict:
        """``{param value -> summary}`` over the points (figure-driver shape)."""
        if param not in self.sweep_params:
            raise SimulationError(
                f"{param!r} was not swept; swept: {list(self.sweep_params)}"
            )
        if len(self.sweep_params) > 1:
            # A flat {value -> summary} dict would keep only the last
            # point per value, silently dropping the other axes' data.
            raise SimulationError(
                f"keyed({param!r}) is ambiguous with multiple sweep axes "
                f"{list(self.sweep_params)}; use to_rows() or iterate the "
                "points instead"
            )
        return {point.params[param]: dict(point.summary) for point in self.points}

    def metrics(self) -> tuple[str, ...]:
        """Metric names present across all points (without algorithm prefix)."""
        names: set[str] = set()
        for point in self.points:
            names.update(key.split(":", 1)[1] for key in point.summary)
        return tuple(sorted(names))

    def to_rows(self) -> list[dict]:
        """Tidy rows: one per (sweep point, algorithm, metric)."""
        rows = []
        for point in self.points:
            for key in sorted(point.summary):
                algorithm, metric = key.split(":", 1)
                interval = point.summary[key]
                rows.append(
                    {
                        **dict(point.params),
                        "algorithm": algorithm,
                        "metric": metric,
                        "mean": interval.mean,
                        "half_width": interval.half_width,
                        "low": interval.low,
                        "high": interval.high,
                        "count": interval.count,
                        "confidence": interval.confidence,
                    }
                )
        return rows

    def to_csv(self, path=None) -> str:
        """Render :meth:`to_rows` as CSV; optionally write it to ``path``."""
        rows = self.to_rows()
        columns = [
            *self.sweep_params,
            "algorithm", "metric", "mean", "half_width", "low", "high",
            "count", "confidence",
        ]
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        writer.writerows(rows)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def table(self, metric: str = "rejection_rate") -> str:
        """A fixed-width text table of one metric: points × algorithms."""
        header = [*self.sweep_params, *self.algorithms]
        body: list[list[str]] = []
        for point in self.points:
            cells = [str(point.params[p]) for p in self.sweep_params]
            for algorithm in self.algorithms:
                interval = point.summary.get(f"{algorithm}:{metric}")
                cells.append(
                    "-" if interval is None
                    else f"{interval.mean:.4g} ±{interval.half_width:.2g}"
                )
            body.append(cells)
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in [header, *body]
        ]
        return "\n".join(lines)


# -- the facade ---------------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """Fluent, immutable experiment builder.

    Each chained call returns a *new* ``Experiment``, so partial setups
    can be shared and forked::

        base = Experiment(config).algorithms("OLIVE", "QUICKG")
        shifted = base.perturb(shift_plan_ingress=True)
        result = shifted.sweep("utilization", (0.6, 1.0, 1.4)).run(jobs=4)
    """

    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    _algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS
    _sweeps: tuple[tuple[str, tuple], ...] = ()
    _perturbations: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.config, ExperimentConfig):
            raise SimulationError(
                "Experiment expects an ExperimentConfig "
                f"(got {type(self.config).__name__}); build one with "
                "ExperimentConfig.test()/bench()/paper()"
            )

    # -- fluent setup ---------------------------------------------------------

    def with_config(self, **overrides) -> "Experiment":
        """Override :class:`ExperimentConfig` fields."""
        return dataclasses.replace(self, config=self.config.with_(**overrides))

    def algorithms(self, *names: str) -> "Experiment":
        """Select the algorithms to compare (validated against the registry)."""
        if not names:
            raise SimulationError("algorithms() needs at least one name")
        for name in names:
            algorithm_registry.get(name)  # fail fast on unknown names
        return dataclasses.replace(self, _algorithms=tuple(names))

    def sweep(self, param: str, values: Sequence) -> "Experiment":
        """Add a sweep axis; multiple axes form their cartesian product.

        ``param`` is an :class:`ExperimentConfig` field (``utilization``,
        ``app_mix``, ``arrivals_per_node``, ...) or a scenario
        perturbation (``plan_utilization``, ``shift_plan_ingress``).
        Config fields win when a name is both (``num_quantiles``).
        """
        values = tuple(values)
        if not values:
            raise SimulationError(f"sweep({param!r}) got no values")
        if param not in _CONFIG_FIELDS and param not in PERTURBATION_KEYS:
            raise SimulationError(
                f"unknown sweep parameter {param!r}; config fields: "
                f"{sorted(_CONFIG_FIELDS)}; perturbations: "
                f"{sorted(PERTURBATION_KEYS)}"
            )
        if any(param == existing for existing, _ in self._sweeps):
            raise SimulationError(f"{param!r} is already swept")
        return dataclasses.replace(
            self, _sweeps=(*self._sweeps, (param, values))
        )

    def perturb(self, **kwargs) -> "Experiment":
        """Apply scenario perturbations to every point (Figs. 11/13/14)."""
        unknown = sorted(set(kwargs) - PERTURBATION_KEYS)
        if unknown:
            raise SimulationError(
                f"unknown perturbation(s) {unknown}; known: "
                f"{sorted(PERTURBATION_KEYS)}"
            )
        merged = {**dict(self._perturbations), **kwargs}
        return dataclasses.replace(
            self, _perturbations=tuple(sorted(merged.items()))
        )

    def events(
        self, profile: "str | EventSchedule", policy: str | None = None
    ) -> "Experiment":
        """Attach a dynamic-event schedule to every point (chaos scenarios).

        ``profile`` is a registered event-profile name (resolved per
        repetition with a seed-derived rng) or a concrete
        :class:`~repro.scenarios.events.EventSchedule`; ``policy``
        overrides how stranded requests are handled (``"preempt"`` or
        ``"reroute"``). Profiles can also be swept:
        ``.sweep("events", ("link-flap", "blackout"))``.

        Only registered profile *names* participate in result caching —
        an ad-hoc ``EventSchedule`` object has no stable serialized
        identity, so points carrying one always recompute.
        """
        if isinstance(profile, str):
            event_profile_registry.get(profile)  # fail fast on unknown names
        elif not isinstance(profile, EventSchedule):
            raise SimulationError(
                "events() expects a registered profile name or an "
                f"EventSchedule (got {type(profile).__name__})"
            )
        if policy is not None and policy not in DISRUPTION_POLICIES:
            raise SimulationError(
                f"unknown disruption policy {policy!r}; known: "
                f"{list(DISRUPTION_POLICIES)}"
            )
        kwargs: dict[str, object] = {"events": profile}
        if policy is not None:
            kwargs["event_policy"] = policy
        return self.perturb(**kwargs)

    def repetitions(self, count: int) -> "Experiment":
        """Set the repetition count (seeds ``base_seed .. base_seed+count-1``)."""
        return self.with_config(repetitions=count)

    def seed(self, base_seed: int) -> "Experiment":
        """Set the base seed of the repetition ladder."""
        return self.with_config(base_seed=base_seed)

    # -- streaming ------------------------------------------------------------

    def _streaming_scenario(self, name: str, seed: int | None):
        """Resolve the scenario/event schedule for the configured point."""
        if self._sweeps:
            raise SimulationError(
                "stream()/serve() drive one configured point; this "
                f"experiment sweeps {[p for p, _ in self._sweeps]} — "
                "expand points() and build one session per point instead"
            )
        algorithm_registry.get(name)  # fail fast on unknown names
        kwargs = dict(self._perturbations)
        events = kwargs.pop("events", None)
        policy = kwargs.pop("event_policy", None)
        kwargs.setdefault("with_plan", algorithms_need_plan((name,)))
        seed = self.config.base_seed if seed is None else seed
        scenario = build_scenario(self.config, seed, **kwargs)
        schedule = resolve_events(events, scenario, seed, policy)
        return scenario, schedule

    def _streaming_point(self, algorithm: str | None, seed: int | None):
        """Resolve the single configured point for stream()/serve()."""
        name = algorithm if algorithm is not None else self._algorithms[0]
        scenario, schedule = self._streaming_scenario(name, seed)
        return scenario, make_algorithm(name, scenario), schedule

    def stream(
        self, algorithm: str | None = None, seed: int | None = None
    ) -> SimulationSession:
        """Open a streaming session over this experiment's online trace.

        Builds the configured scenario (plan included when the algorithm
        needs one), pre-submits its online request stream, and returns a
        :class:`~repro.sim.session.SimulationSession` ready to be
        stepped, checkpointed, or fed ad-hoc ``submit()`` arrivals.
        Running it to the horizon is bit-identical to the batch
        :meth:`run` engine for the same (algorithm, seed) point.

        ``algorithm`` defaults to the first selected algorithm; ``seed``
        to the config's base seed (repetition 0).
        """
        scenario, algo, schedule = self._streaming_point(algorithm, seed)
        return SimulationSession(
            algo,
            scenario.online_requests(),
            self.config.online_slots,
            events=schedule,
        )

    def serve(
        self,
        algorithm: str | None = None,
        seed: int | None = None,
        admission="always",
        admission_params: dict | None = None,
        max_pending: int | None = None,
        metrics_window: int = 512,
        preload_trace: bool = False,
        shards: int | None = None,
        shard_policy: str = "kbalanced",
        shard_workers: str = "process",
        checkpoint_every: int = 1,
    ) -> "EmbedderService":
        """Stand up an :class:`~repro.serve.EmbedderService` for this point.

        The service owns a fresh session over the configured scenario —
        empty by default (live traffic arrives through ``offer()`` /
        ``schedule()``); ``preload_trace=True`` pre-submits the
        scenario's online trace so offers ride on top of the replayed
        workload. ``admission``/``admission_params`` name a registered
        admission policy; ``max_pending`` bounds the scheduled-arrival
        queue (backpressure). The built scenario is attached as
        ``service.scenario`` for traffic generators.

        ``shards=K`` stands up a
        :class:`~repro.shard.ShardedEmbedderService` instead — the
        substrate partitioned into K regions by the registered
        ``shard_policy``, one worker session per shard
        (``shard_workers``: ``"process"`` or ``"inline"``), checkpointed
        every ``checkpoint_every`` slots. The sharded service drives
        live offers only: ``preload_trace``, ``max_pending``, and
        attached event schedules are rejected.
        """
        from repro.serve.service import EmbedderService

        if shards is not None:
            from repro.shard import ShardedEmbedderService

            if preload_trace:
                raise SimulationError(
                    "serve(shards=...) drives live offers only; "
                    "preload_trace is not supported by the sharded tier"
                )
            if max_pending is not None:
                raise SimulationError(
                    "serve(shards=...) has no scheduled-arrival queue; "
                    "max_pending is not supported by the sharded tier"
                )
            if not isinstance(admission, str):
                raise SimulationError(
                    "serve(shards=...) ships admission to workers by "
                    "registry name; pass a registered policy name"
                )
            name = algorithm if algorithm is not None else self._algorithms[0]
            scenario, schedule = self._streaming_scenario(name, seed)
            if schedule is not None:
                raise SimulationError(
                    "event schedules are not supported by the sharded "
                    "service; drop .events() or serve without shards"
                )
            return ShardedEmbedderService(
                scenario,
                name,
                shards,
                shard_policy=shard_policy,
                workers=shard_workers,
                admission=admission,
                admission_params=admission_params,
                metrics_window=metrics_window,
                checkpoint_every=checkpoint_every,
            )

        scenario, algo, schedule = self._streaming_point(algorithm, seed)
        session = SimulationSession(
            algo,
            scenario.online_requests() if preload_trace else (),
            self.config.online_slots,
            events=schedule,
        )
        return EmbedderService(
            session,
            admission=admission,
            admission_params=admission_params,
            max_pending=max_pending,
            metrics_window=metrics_window,
            scenario=scenario,
        )

    # -- execution ------------------------------------------------------------

    def points(self) -> list[tuple[dict, ExperimentConfig, dict]]:
        """Expand the sweep axes: ``(params, config, scenario_kwargs)``."""
        expanded: list[tuple[dict, ExperimentConfig, dict]] = [
            ({}, self.config, dict(self._perturbations))
        ]
        for param, values in self._sweeps:
            next_points = []
            for params, config, scenario_kwargs in expanded:
                for value in values:
                    new_params = {**params, param: value}
                    if param in _CONFIG_FIELDS:
                        next_points.append(
                            (new_params, config.with_(**{param: value}),
                             dict(scenario_kwargs))
                        )
                    else:
                        next_points.append(
                            (new_params, config,
                             {**scenario_kwargs, param: value})
                        )
            expanded = next_points
        return expanded

    def run(
        self,
        jobs: int | None = None,
        runner: ParallelRunner | None = None,
        cache: bool | None = None,
    ) -> SweepResult:
        """Execute every sweep point and return a :class:`SweepResult`.

        ``jobs`` fans each point's seeded repetitions over a process pool
        (``0`` = one per CPU); with neither ``jobs`` nor ``runner`` the
        process-wide default runner is used. ``cache=False`` bypasses an
        active result cache for this run; ``cache=None`` (default)
        consults whatever cache :func:`repro.experiments.cache.configure_cache`
        enabled.
        """
        if runner is None and jobs is not None:
            runner = ParallelRunner.from_jobs(jobs)
        use_cache = cache is not False
        points = []
        for params, config, scenario_kwargs in self.points():
            summary = run_point(
                config,
                self._algorithms,
                runner=runner,
                use_cache=use_cache,
                **scenario_kwargs,
            )
            points.append(
                SweepPoint(params=params, config=config, summary=summary)
            )
        return SweepResult(
            points,
            algorithms=self._algorithms,
            sweep_params=tuple(param for param, _ in self._sweeps),
        )


__all__ = [
    "DEFAULT_ALGORITHMS",
    "DEFAULT_METRICS",
    "PERTURBATION_KEYS",
    "Experiment",
    "SweepPoint",
    "SweepResult",
    "resolve_events",
    "run_point",
    "run_single",
    "summarize_run",
]
