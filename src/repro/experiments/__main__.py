"""Command-line runner: regenerate any paper figure from the shell.

Examples::

    python -m repro.experiments list
    python -m repro.experiments fig6 --topology CittaStudi --scale test
    python -m repro.experiments fig6 --algo OLIVE --algo OLIVE-W
    python -m repro.experiments fig11 --scale bench --jobs 4
    python -m repro.experiments all --scale test
    python -m repro.experiments fig16 --topology Iris --no-cache
    python -m repro.experiments fig_resilience --scale test --event-policy preempt
    python -m repro.experiments serve --scale test --admission queue-bound
    python -m repro.experiments serve --scale test --shards 4

``serve`` stands up a live :class:`repro.serve.EmbedderService` (one
algorithm behind a pluggable admission policy) and drives it with a
generated Poisson arrival process, streaming rolling metrics as it
goes — the streaming-session counterpart of the batch figure targets.

``list`` prints every figure target plus the component registries
(algorithms, topologies, trace kinds, app mixes, efficiency models) —
including any third-party components registered via
:mod:`repro.registry`. ``--algo NAME`` (repeatable) overrides a figure's
default algorithm set with any registered algorithms.

``--scale`` selects the preset: ``paper`` (full Table III horizons — hours),
``bench`` (laptop minutes, the default), or ``test`` (seconds, smoke only).
``--jobs N`` fans the seeded repetitions of every sweep point out over N
worker processes; results are bit-identical to a serial run — except
wall-clock ``runtime`` metrics, which are real timings and change with
machine load (run fig16 serially, with ``--no-cache``, when the timings
themselves are the result). Results are cached on disk keyed by
parameters + code version, so re-running a figure with unchanged
parameters returns instantly; disable with ``--no-cache`` or relocate
with ``--cache-dir``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import registry
from repro.experiments import figures
from repro.experiments.cache import configure_cache, get_active_cache
from repro.experiments.config import BENCH_UTILIZATIONS, ExperimentConfig
from repro.sim.runner import ParallelRunner, set_default_runner

SCALES = {
    "paper": ExperimentConfig.paper,
    "bench": ExperimentConfig.bench,
    "test": ExperimentConfig.test,
}

FIGURES = {
    "fig6": "rejection rate vs utilization",
    "fig7": "cost vs utilization (same runs as fig6)",
    "fig8": "allocated-demand zoom at 140% utilization",
    "fig9": "rejection by application type",
    "fig10": "GPU placement scenario",
    "fig11": "balance index vs quantile count",
    "fig12": "per-node allocation timeline",
    "fig13": "plan for unexpected demand levels",
    "fig14": "spatially shifted plan",
    "fig15": "CAIDA-like demand",
    "fig16": "runtime scalability",
    "fig_resilience": "dynamic events: failures, drains, flash crowds",
    "fig_scale": "throughput vs generated topology size",
    "serve": "live embedding service driven by generated traffic",
}

#: Targets that are demos/services rather than paper figures — they are
#: individually addressable but excluded from ``all``.
NON_FIGURE_TARGETS = frozenset({"serve"})

UTILIZATIONS = BENCH_UTILIZATIONS


def _algo_kwargs(args) -> dict:
    """``algorithms=`` override for drivers when ``--algo`` was given."""
    return {"algorithms": tuple(args.algo)} if args.algo else {}


def _print_registries() -> None:
    """Print every component registry (live contents, incl. third-party)."""
    import repro.serve  # noqa: F401  (registers the admission policies)
    import repro.shard  # noqa: F401  (registers the shard policies)

    print("\nalgorithms (--algo):")
    for entry in registry.algorithm_registry.entries():
        plan = "plan" if entry.needs_plan else "no plan"
        print(f"  {entry.name:<10} [{plan:<7}] {entry.description}")
    for title, reg in (
        ("topologies (--topology)", registry.topology_registry),
        ("trace kinds (config.trace_kind)", registry.trace_registry),
        ("app mixes (config.app_mix)", registry.app_mix_registry),
        ("efficiency models (config.efficiency)", registry.efficiency_registry),
        ("event profiles (fig_resilience, api.events)",
         registry.event_profile_registry),
        ("admission policies (serve --admission)",
         registry.admission_policy_registry),
        ("shard policies (serve --shard-policy)",
         registry.shard_policy_registry),
    ):
        print(f"\n{title}:")
        for entry in reg.entries():
            print(f"  {entry.name:<12} {entry.description}")


def _print_sweep(data, metric: str) -> None:
    for utilization, summary in data.items():
        algorithms = sorted({k.split(":")[0] for k in summary})
        cells = "  ".join(
            f"{a}={summary[f'{a}:{metric}'].mean:.4g}" for a in algorithms
        )
        print(f"  util={utilization:.0%}  {cells}")


def _render_fig6(config: ExperimentConfig, args) -> int:
    data = figures.run_rejection_vs_utilization(
        config, UTILIZATIONS, **_algo_kwargs(args)
    )
    _print_sweep(data, "rejection_rate")
    return 0


def _render_fig7(config: ExperimentConfig, args) -> int:
    data = figures.run_rejection_vs_utilization(
        config, UTILIZATIONS, **_algo_kwargs(args)
    )
    _print_sweep(data, "total_cost")
    return 0


def _render_fig8(config: ExperimentConfig, args) -> int:
    config = config.with_(utilization=1.4)
    zoom = (
        config.measure_start,
        min(config.measure_start + 30, config.measure_stop),
    )
    series = figures.run_demand_zoom(config, zoom, **_algo_kwargs(args))
    for name, data in series.items():
        mean = float(data["allocated"].mean())
        print(f"  {name}: mean allocated demand {mean:.0f}")
    return 0


def _render_fig9(config: ExperimentConfig, args) -> int:
    data = figures.run_by_application(config, **_algo_kwargs(args))
    for app_type, summary in data.items():
        algorithms = sorted({k.split(":")[0] for k in summary})
        cells = "  ".join(
            f"{a}={summary[f'{a}:rejection_rate'].mean:.3f}"
            for a in algorithms
        )
        print(f"  {app_type:<12} {cells}")
    return 0


def _render_fig10(config: ExperimentConfig, args) -> int:
    summary = figures.run_gpu_scenario(config, **_algo_kwargs(args))
    for key, interval in summary.items():
        if key.endswith("rejection_rate"):
            print(f"  {key} = {interval.mean:.3f}")
    return 0


def _render_fig11(config: ExperimentConfig, args) -> int:
    summary = figures.run_balance_quantiles(config.with_(utilization=1.4))
    for name, interval in summary.items():
        print(f"  {name:<12} balance={interval.mean:.3f}")
    return 0


def _render_fig12(config: ExperimentConfig, args) -> int:
    if args.topology != "Iris":
        print("fig12 references the 'Franklin' node of Iris")
        return 2
    timeline = figures.collect_node_timeline(config, "Franklin")
    for app_index in sorted(timeline.guaranteed_demand):
        counts = timeline.counts(app_index)
        print(
            f"  app {app_index}: guarantee="
            f"{timeline.guaranteed_demand[app_index]:.1f}  "
            + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
    return 0


def _render_fig13(config: ExperimentConfig, args) -> int:
    summary = figures.run_unexpected_demand(config.with_(utilization=1.4))
    for name, interval in summary.items():
        print(f"  {name:<17} rejection={interval.mean:.3f}")
    return 0


def _render_fig14(config: ExperimentConfig, args) -> int:
    data = figures.run_shifted_plan(config, UTILIZATIONS, **_algo_kwargs(args))
    _print_sweep(data, "rejection_rate")
    return 0


def _render_fig15(config: ExperimentConfig, args) -> int:
    data = figures.run_caida(config, UTILIZATIONS, **_algo_kwargs(args))
    _print_sweep(data, "rejection_rate")
    return 0


def _render_fig16(config: ExperimentConfig, args) -> int:
    data = figures.run_runtime_scaling(config, **_algo_kwargs(args))
    for rate, summary in data["by_rate"].items():
        cells = "  ".join(f"{a}={ci.mean:.3f}s" for a, ci in summary.items())
        print(f"  rate={rate:g}: {cells}")
    for utilization, summary in data["by_utilization"].items():
        cells = "  ".join(f"{a}={ci.mean:.3f}s" for a, ci in summary.items())
        print(f"  util={utilization:.0%}: {cells}")
    return 0


def _render_serve(config: ExperimentConfig, args) -> int:
    """Drive a live EmbedderService with generated Poisson traffic."""
    from repro.api import Experiment
    from repro.serve import poisson_offers
    from repro.utils.rng import child_rng, make_rng

    algorithm = (args.algo or ["OLIVE"])[0]
    rng = child_rng(make_rng(args.seed), "serve-traffic")
    slots = config.online_slots
    report_every = max(1, slots // 5)

    if args.shards:
        service = (
            Experiment(config)
            .algorithms(algorithm)
            .serve(
                seed=args.seed,
                admission=args.admission,
                shards=args.shards,
                shard_policy=args.shard_policy,
            )
        )
        print(
            f"  serving {algorithm} on {config.topology} across "
            f"{service.num_shards} shards [{args.shard_policy}] for "
            f"{slots} slots (admission={args.admission})"
        )
        with service:
            for slot, batch in poisson_offers(service.scenario, slots, rng):
                service.offer_many(batch)
                service.advance_to(slot + 1)
                if (slot + 1) % report_every == 0:
                    print(f"  {service.metrics().describe()}")
            metrics = service.metrics()
            result = service.finish()
        stats = result.cross_shard
        print(
            f"  done: {metrics.offers} offers, {metrics.accepted} accepted, "
            f"{metrics.rejected} rejected; cross-shard "
            f"{stats['commits']} committed / {stats['aborts']} aborted "
            f"of {stats['attempts']} attempts"
        )
        return 0

    service = (
        Experiment(config)
        .algorithms(algorithm)
        .serve(
            seed=args.seed,
            admission=args.admission,
            max_pending=args.max_pending,
        )
    )
    print(
        f"  serving {algorithm} on {config.topology} for {slots} slots "
        f"(admission={args.admission})"
    )
    for slot, batch in poisson_offers(service.scenario, slots, rng):
        for request in batch:
            service.offer(request)
        service.advance_to(slot + 1)
        latest = service.metrics.latest
        if latest is not None and (slot + 1) % report_every == 0:
            print(f"  {latest.describe()}")
    result = service.finish()
    metrics = service.metrics.latest
    print(
        f"  done: {metrics.offers} offers, {metrics.accepted} accepted, "
        f"{metrics.rejected} rejected, {metrics.shed} shed; "
        f"algorithm time {result.runtime_seconds:.3f}s "
        f"({result.requests_per_second:.0f} req/s)"
    )
    return 0


def _render_fig_scale(config: ExperimentConfig, args) -> int:
    sizes = figures.SCALE_SIZES[args.scale]
    data = figures.run_scale(
        figures.scale_config(config), sizes, **_algo_kwargs(args)
    )
    for size, summary in data.items():
        algorithms = sorted({k.split(":")[0] for k in summary})
        cells = "  ".join(
            f"{a}={summary[f'{a}:slots_per_sec'].mean:.1f} slots/s"
            for a in algorithms
        )
        print(f"  nodes={size:<4} {cells}")
    return 0


def _render_fig_resilience(config: ExperimentConfig, args) -> int:
    data = figures.run_resilience(
        config, policy=args.event_policy, **_algo_kwargs(args)
    )
    algorithms = sorted({k.split(":")[0] for k in data["none"]})
    for profile, summary in data.items():
        for algorithm in algorithms:
            rejection = summary[f"{algorithm}:rejection_rate"].mean
            disrupted = summary[f"{algorithm}:disrupted_rate"].mean
            avail = summary[f"{algorithm}:availability"].mean
            print(
                f"  {profile:<18} {algorithm:<8} rejection={rejection:.3f}  "
                f"disrupted={disrupted:.3f}  availability={avail:.3f}"
            )
    return 0


RENDERERS = {
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig8": _render_fig8,
    "fig9": _render_fig9,
    "fig10": _render_fig10,
    "fig11": _render_fig11,
    "fig12": _render_fig12,
    "fig13": _render_fig13,
    "fig14": _render_fig14,
    "fig15": _render_fig15,
    "fig16": _render_fig16,
    "fig_resilience": _render_fig_resilience,
    "fig_scale": _render_fig_scale,
    "serve": _render_serve,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("figure", choices=[*sorted(FIGURES), "all", "list"])
    parser.add_argument("--topology", default="Iris")
    parser.add_argument(
        "--algo",
        action="append",
        default=None,
        metavar="NAME",
        help="override a figure's algorithm set with this registered "
        "algorithm (repeatable; see 'list' for known names)",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument(
        "--event-policy",
        choices=("preempt", "reroute"),
        default="reroute",
        help="how fig_resilience handles requests stranded by failures",
    )
    parser.add_argument(
        "--admission",
        default="always",
        metavar="POLICY",
        help="admission policy for the serve target (see 'list' for "
        "registered policies)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="serve target: bound on the scheduled-arrival queue "
        "(backpressure; default unbounded)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="serve target: partition the substrate into K shards and "
        "serve with one worker process per shard",
    )
    parser.add_argument(
        "--shard-policy",
        default="kbalanced",
        metavar="POLICY",
        help="substrate partitioning policy for --shards (see 'list' "
        "for registered policies)",
    )
    parser.add_argument("--utilization", type=float, default=1.0)
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for seeded repetitions (0 = one per CPU)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute even when a cached result exists",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/results)",
    )
    return parser


#: Figures whose algorithm set is part of the figure's definition
#: (fig11/fig13 study OLIVE perturbations, fig12 is OLIVE at one node).
ALGO_FIXED_FIGURES = frozenset({"fig11", "fig12", "fig13"})


def _run_figure(name: str, config: ExperimentConfig, args) -> int:
    """Render one figure with a per-figure progress/result line."""
    if args.algo and name in ALGO_FIXED_FIGURES:
        print(f"{name}: note: --algo is ignored "
              "(this figure's algorithm set is fixed)")
    cache = get_active_cache()
    hits_before = cache.hits if cache else 0
    misses_before = cache.misses if cache else 0
    started = time.perf_counter()  # repro-lint: allow[RPR003] CLI progress timing printed to stderr/stdout only; never part of figure data
    print(f"{name}: {FIGURES[name]}")
    code = RENDERERS[name](config, args)
    elapsed = time.perf_counter() - started  # repro-lint: allow[RPR003] CLI progress timing printed to stderr/stdout only; never part of figure data
    if cache is not None:
        hits = cache.hits - hits_before
        misses = cache.misses - misses_before
        cache_note = f", cache {hits} hit / {misses} miss"
    else:
        cache_note = ""
    status = "done" if code == 0 else f"skipped (exit {code})"
    print(f"{name}: {status} in {elapsed:.1f}s{cache_note}")
    return code


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = one job per CPU)")

    if args.figure == "list":
        print("figures:")
        for name, description in FIGURES.items():
            print(f"  {name:<6} {description}")
        _print_registries()
        return 0

    for name in args.algo or ():
        if name not in registry.algorithm_registry:
            parser.error(
                f"unknown algorithm {name!r}; known: "
                f"{list(registry.algorithm_registry.names())}"
            )

    if args.figure == "serve":
        import repro.serve  # noqa: F401  (registers the admission policies)

        if args.admission not in registry.admission_policy_registry:
            parser.error(
                f"unknown admission policy {args.admission!r}; known: "
                f"{list(registry.admission_policy_registry.names())}"
            )
        if args.shards is not None:
            import repro.shard  # noqa: F401  (registers the shard policies)

            if args.shards < 1:
                parser.error("--shards must be >= 1")
            if args.shard_policy not in registry.shard_policy_registry:
                parser.error(
                    f"unknown shard policy {args.shard_policy!r}; known: "
                    f"{list(registry.shard_policy_registry.names())}"
                )
            if args.max_pending is not None:
                parser.error(
                    "--max-pending is not supported with --shards "
                    "(the sharded tier has no scheduled-arrival queue)"
                )

    set_default_runner(ParallelRunner.from_jobs(args.jobs))
    configure_cache(enabled=not args.no_cache, root=args.cache_dir)

    config = SCALES[args.scale](
        topology=args.topology,
        utilization=args.utilization,
        repetitions=args.repetitions,
        base_seed=args.seed,
    )

    if args.figure == "all":
        failures = 0
        for name in RENDERERS:
            if name in NON_FIGURE_TARGETS:
                continue
            code = _run_figure(name, config, args)
            if code != 0 and not (name == "fig12" and args.topology != "Iris"):
                failures += 1
        return 1 if failures else 0

    return _run_figure(args.figure, config, args)


if __name__ == "__main__":
    sys.exit(main())
