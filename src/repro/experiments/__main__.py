"""Command-line runner: regenerate any paper figure from the shell.

Examples::

    python -m repro.experiments list
    python -m repro.experiments fig6 --topology CittaStudi --scale test
    python -m repro.experiments fig11 --scale bench
    python -m repro.experiments fig16 --topology Iris

``--scale`` selects the preset: ``paper`` (full Table III horizons — hours),
``bench`` (laptop minutes, the default), or ``test`` (seconds, smoke only).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments import figures

SCALES = {
    "paper": ExperimentConfig.paper,
    "bench": ExperimentConfig.bench,
    "test": ExperimentConfig.test,
}

FIGURES = {
    "fig6": "rejection rate vs utilization",
    "fig7": "cost vs utilization (same runs as fig6)",
    "fig8": "allocated-demand zoom at 140% utilization",
    "fig9": "rejection by application type",
    "fig10": "GPU placement scenario",
    "fig11": "balance index vs quantile count",
    "fig12": "per-node allocation timeline",
    "fig13": "plan for unexpected demand levels",
    "fig14": "spatially shifted plan",
    "fig15": "CAIDA-like demand",
    "fig16": "runtime scalability",
}


def _print_sweep(data, metric: str) -> None:
    for utilization, summary in data.items():
        algorithms = sorted({k.split(":")[0] for k in summary})
        cells = "  ".join(
            f"{a}={summary[f'{a}:{metric}'].mean:.4g}" for a in algorithms
        )
        print(f"  util={utilization:.0%}  {cells}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("figure", choices=sorted(FIGURES) + ["list"])
    parser.add_argument("--topology", default="Iris")
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument("--utilization", type=float, default=1.0)
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.figure == "list":
        for name, description in FIGURES.items():
            print(f"{name:<6} {description}")
        return 0

    config = SCALES[args.scale](
        topology=args.topology,
        utilization=args.utilization,
        repetitions=args.repetitions,
        base_seed=args.seed,
    )
    utilizations = (0.6, 1.0, 1.4)

    if args.figure == "fig6":
        data = figures.run_rejection_vs_utilization(config, utilizations)
        _print_sweep(data, "rejection_rate")
    elif args.figure == "fig7":
        data = figures.run_rejection_vs_utilization(config, utilizations)
        _print_sweep(data, "total_cost")
    elif args.figure == "fig8":
        config = config.with_(utilization=1.4)
        zoom = (
            config.measure_start,
            min(config.measure_start + 30, config.measure_stop),
        )
        series = figures.run_demand_zoom(config, zoom)
        for name, data in series.items():
            mean = float(data["allocated"].mean())
            print(f"  {name}: mean allocated demand {mean:.0f}")
    elif args.figure == "fig9":
        data = figures.run_by_application(config)
        for app_type, summary in data.items():
            algorithms = sorted({k.split(":")[0] for k in summary})
            cells = "  ".join(
                f"{a}={summary[f'{a}:rejection_rate'].mean:.3f}"
                for a in algorithms
            )
            print(f"  {app_type:<12} {cells}")
    elif args.figure == "fig10":
        summary = figures.run_gpu_scenario(config)
        for key, interval in summary.items():
            if key.endswith("rejection_rate"):
                print(f"  {key} = {interval.mean:.3f}")
    elif args.figure == "fig11":
        config = config.with_(utilization=1.4)
        summary = figures.run_balance_quantiles(config)
        for name, interval in summary.items():
            print(f"  {name:<12} balance={interval.mean:.3f}")
    elif args.figure == "fig12":
        node = "Franklin" if args.topology == "Iris" else None
        if node is None:
            print("fig12 references the 'Franklin' node of Iris")
            return 2
        timeline = figures.collect_node_timeline(config, node)
        for app_index in sorted(timeline.guaranteed_demand):
            counts = timeline.counts(app_index)
            print(
                f"  app {app_index}: guarantee="
                f"{timeline.guaranteed_demand[app_index]:.1f}  "
                + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            )
    elif args.figure == "fig13":
        config = config.with_(utilization=1.4)
        summary = figures.run_unexpected_demand(config)
        for name, interval in summary.items():
            print(f"  {name:<17} rejection={interval.mean:.3f}")
    elif args.figure == "fig14":
        data = figures.run_shifted_plan(config, utilizations)
        _print_sweep(data, "rejection_rate")
    elif args.figure == "fig15":
        data = figures.run_caida(config, utilizations)
        _print_sweep(data, "rejection_rate")
    elif args.figure == "fig16":
        data = figures.run_runtime_scaling(config)
        for rate, summary in data["by_rate"].items():
            cells = "  ".join(
                f"{a}={ci.mean:.3f}s" for a, ci in summary.items()
            )
            print(f"  rate={rate:g}: {cells}")
        for utilization, summary in data["by_utilization"].items():
            cells = "  ".join(
                f"{a}={ci.mean:.3f}s" for a, ci in summary.items()
            )
            print(f"  util={utilization:.0%}: {cells}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
