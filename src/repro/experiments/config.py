"""Experiment configuration: Table III defaults and laptop-scale presets.

``ExperimentConfig.paper()`` reproduces the paper's parameters verbatim
(5400 planning slots, 600 online slots, measurement window 100–500,
30 repetitions). ``ExperimentConfig.bench()`` preserves every structural
parameter but shortens the horizons and repetition count so the full
benchmark suite completes on a laptop; the shape comparisons the paper
reports are insensitive to this scaling (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError

#: The paper sweeps utilization 60 %–140 % (Fig. 6/7); these are the points.
PAPER_UTILIZATIONS = (0.6, 0.8, 1.0, 1.2, 1.4)
#: Reduced sweep for the benchmark preset.
BENCH_UTILIZATIONS = (0.6, 1.0, 1.4)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment's parameters (Table III unless noted)."""

    topology: str = "Iris"
    utilization: float = 1.0
    app_mix: str = "standard"  # any registered app mix
    trace_kind: str = "mmpp"  # any registered trace kind
    gpu_scenario: bool = False
    #: Registered efficiency-model name; "" = auto ("gpu" when
    #: ``gpu_scenario`` else "uniform").
    efficiency: str = ""
    history_slots: int = 5400
    online_slots: int = 600
    measure_start: int = 100
    measure_stop: int = 500
    arrivals_per_node: float = 10.0
    duration_mean: float = 10.0
    demand_cv: float = 0.4  # N(10, 4) has σ/μ = 0.4
    num_quantiles: int = 10
    percentile_alpha: float = 80.0
    repetitions: int = 30
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.measure_start < self.measure_stop <= self.online_slots:
            raise SimulationError(
                "measurement window must fall inside the online phase"
            )
        if self.utilization <= 0:
            raise SimulationError("utilization must be positive")

    @property
    def measure_window(self) -> tuple[int, int]:
        return (self.measure_start, self.measure_stop)

    @classmethod
    def paper(cls, **overrides) -> "ExperimentConfig":
        """Full-scale configuration, exactly as in Sec. IV-A."""
        return cls(**overrides)

    @classmethod
    def bench(cls, **overrides) -> "ExperimentConfig":
        """Laptop-scale preset used by the benchmark suite."""
        defaults = dict(
            history_slots=300,
            online_slots=50,
            measure_start=10,
            measure_stop=40,
            repetitions=2,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def test(cls, **overrides) -> "ExperimentConfig":
        """Minimal preset for unit/integration tests."""
        defaults = dict(
            topology="CittaStudi",
            history_slots=120,
            online_slots=24,
            measure_start=4,
            measure_stop=20,
            repetitions=1,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_(self, **overrides) -> "ExperimentConfig":
        """A copy with some fields replaced."""
        return replace(self, **overrides)
