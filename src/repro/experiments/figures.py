"""One driver per paper figure (Sec. IV-B), built on :mod:`repro.api`.

Every driver is a thin wrapper over the fluent
:class:`~repro.api.Experiment` facade: it selects algorithms, sweep axes
and perturbations, runs through the shared parallel-runner + result-cache
engine, and returns plain dicts of
:class:`~repro.sim.runner.ConfidenceInterval` values keyed by
``"{algorithm}:{metric}"`` — ready for the benchmark harness to print
paper-shaped tables.

``run_single``/``summarize_run``/``_sweep`` are kept as deprecation
shims over their :mod:`repro.api` equivalents so pre-facade callers and
tests keep working; new code should use :mod:`repro.api` directly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro import api
from repro.api import DEFAULT_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import Scenario
from repro.sim.engine import SimulationResult
from repro.sim.metrics import NodeTimeline, demand_series
from repro.sim.runner import ConfidenceInterval, ParallelRunner

__all__ = [
    "DEFAULT_ALGORITHMS",
    "run_single",
    "summarize_run",
    "run_rejection_vs_utilization",
    "run_demand_zoom",
    "run_by_application",
    "run_gpu_scenario",
    "run_balance_quantiles",
    "collect_node_timeline",
    "run_unexpected_demand",
    "run_shifted_plan",
    "run_caida",
    "run_runtime_scaling",
    "RESILIENCE_PROFILES",
    "run_resilience",
    "SCALE_SIZES",
    "scale_config",
    "run_scale",
]


def run_single(
    config: ExperimentConfig,
    seed: int,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    **scenario_kwargs,
) -> tuple[Scenario, dict[str, SimulationResult]]:
    """Deprecated shim for :func:`repro.api.run_single`."""
    return api.run_single(config, seed, algorithms, **scenario_kwargs)


def summarize_run(
    scenario: Scenario, results: dict[str, SimulationResult]
) -> dict[str, float]:
    """Deprecated shim for :func:`repro.api.summarize_run`."""
    return api.summarize_run(scenario, results)


def _sweep(
    config: ExperimentConfig,
    algorithms: Sequence[str],
    runner: ParallelRunner | None = None,
    **scenario_kwargs,
) -> dict[str, ConfidenceInterval]:
    """Deprecated shim for :func:`repro.api.run_point`.

    Routes the engine through this module's ``run_single``/
    ``summarize_run`` names so monkeypatches on them keep working.
    """
    return api.run_point(
        config,
        algorithms,
        runner=runner,
        run_fn=run_single,
        summarize_fn=summarize_run,
        **scenario_kwargs,
    )


def _experiment(
    config: ExperimentConfig, algorithms: Sequence[str]
) -> api.Experiment:
    return api.Experiment(config).algorithms(*algorithms)


# -- Fig. 6 / Fig. 7: rejection rate and cost vs utilization -----------------


def run_rejection_vs_utilization(
    config: ExperimentConfig,
    utilizations: Sequence[float],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: ParallelRunner | None = None,
) -> dict[float, dict[str, ConfidenceInterval]]:
    """The Fig. 6 (rejection) / Fig. 7 (cost) sweep for one topology."""
    result = (
        _experiment(config, algorithms)
        .sweep("utilization", utilizations)
        .run(runner=runner)
    )
    return result.keyed("utilization")


# -- Fig. 8: allocated-demand zoom -------------------------------------------


def run_demand_zoom(
    config: ExperimentConfig,
    zoom: tuple[int, int],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    seed: int | None = None,
) -> dict[str, dict]:
    """Per-slot requested vs allocated demand in a zoom window (Fig. 8)."""
    scenario, results = run_single(
        config, seed if seed is not None else config.base_seed, algorithms
    )
    return {
        name: demand_series(result, zoom) for name, result in results.items()
    }


# -- Fig. 9: sensitivity to application type ---------------------------------


def run_by_application(
    config: ExperimentConfig,
    app_types: Sequence[str] = ("chain", "tree", "accelerator", "standard"),
    algorithms: Sequence[str] = ("OLIVE", "QUICKG", "FULLG", "SLOTOFF"),
    runner: ParallelRunner | None = None,
) -> dict[str, dict[str, ConfidenceInterval]]:
    """Rejection rate per application type at one utilization (Fig. 9)."""
    result = (
        _experiment(config, algorithms)
        .sweep("app_mix", app_types)
        .run(runner=runner)
    )
    return result.keyed("app_mix")


# -- Fig. 10: the GPU scenario ------------------------------------------------


def run_gpu_scenario(
    config: ExperimentConfig,
    algorithms: Sequence[str] = ("OLIVE", "FULLG", "SLOTOFF"),
    runner: ParallelRunner | None = None,
) -> dict[str, ConfidenceInterval]:
    """GPU-constrained chains on the split-GPU substrate (Fig. 10).

    QUICKG is excluded by default, exactly as in the paper: its collocation
    restriction cannot express a placement split across GPU and non-GPU
    datacenters.
    """
    gpu_config = config.with_(gpu_scenario=True, app_mix="gpu")
    return dict(_experiment(gpu_config, algorithms).run(runner=runner).summary)


# -- Fig. 11: rejection balance vs quantile count ------------------------------


def run_balance_quantiles(
    config: ExperimentConfig,
    quantile_counts: Sequence[int] = (1, 2, 10, 50),
    runner: ParallelRunner | None = None,
) -> dict[str, ConfidenceInterval]:
    """Balance index for OLIVE at several P values plus QUICKG (Fig. 11)."""
    out: dict[str, ConfidenceInterval] = {}
    quickg = _experiment(config, ["QUICKG"]).run(runner=runner)
    out["QUICKG"] = quickg.points[0].value("QUICKG", "balance")
    olive = (
        _experiment(config, ["OLIVE"])
        .sweep("num_quantiles", quantile_counts)
        .run(runner=runner)
    )
    for point in olive:
        count = point.params["num_quantiles"]
        out[f"OLIVE:P={count}"] = point.value("OLIVE", "balance")
    return out


# -- Fig. 12: per-node allocation timeline ------------------------------------


def collect_node_timeline(
    config: ExperimentConfig,
    node: str = "Franklin",
    seed: int | None = None,
) -> NodeTimeline:
    """OLIVE's guaranteed/borrowed/preempted activity at one node (Fig. 12)."""
    scenario, results = run_single(
        config, seed if seed is not None else config.base_seed, ["OLIVE"]
    )
    return NodeTimeline.collect(
        results["OLIVE"], scenario.plan, node, len(scenario.apps)
    )


# -- Fig. 13: deviation from the expected demand -------------------------------


def run_unexpected_demand(
    config: ExperimentConfig,
    plan_utilizations: Sequence[float] = (0.6, 1.0),
    reference_algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: ParallelRunner | None = None,
) -> dict[str, ConfidenceInterval]:
    """Plan for 60 %/100 % expected demand, run at the configured 140 %.

    Returns OLIVE's rejection rate per planning level, with OLIVE (plan at
    the true level), QUICKG and SLOTOFF as references.
    """
    out: dict[str, ConfidenceInterval] = {}
    reference = _experiment(config, reference_algorithms).run(runner=runner)
    for name in reference_algorithms:
        out[name] = reference.points[0].value(name, "rejection_rate")
    perturbed = (
        _experiment(config, ["OLIVE"])
        .sweep("plan_utilization", plan_utilizations)
        .run(runner=runner)
    )
    for point in perturbed:
        plan_utilization = point.params["plan_utilization"]
        out[f"OLIVE:plan={plan_utilization:.0%}"] = point.value(
            "OLIVE", "rejection_rate"
        )
    return out


# -- Fig. 14: spatially shifted plan -------------------------------------------


def run_shifted_plan(
    config: ExperimentConfig,
    utilizations: Sequence[float],
    algorithms: Sequence[str] = ("OLIVE", "QUICKG"),
    runner: ParallelRunner | None = None,
) -> dict[float, dict[str, ConfidenceInterval]]:
    """Plan built from randomly re-located history requests (Fig. 14)."""
    result = (
        _experiment(config, algorithms)
        .perturb(shift_plan_ingress=True)
        .sweep("utilization", utilizations)
        .run(runner=runner)
    )
    return result.keyed("utilization")


# -- Fig. 15: CAIDA-derived demand ---------------------------------------------


def run_caida(
    config: ExperimentConfig,
    utilizations: Sequence[float],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: ParallelRunner | None = None,
) -> dict[float, dict[str, ConfidenceInterval]]:
    """The Fig. 6a experiment on the CAIDA-like trace (Fig. 15)."""
    result = (
        _experiment(config.with_(trace_kind="caida"), algorithms)
        .sweep("utilization", utilizations)
        .run(runner=runner)
    )
    return result.keyed("utilization")


# -- fig_resilience: dynamic-event stress battery (beyond the paper) -----------

#: The default stress battery of :func:`run_resilience` (all registered
#: built-in event profiles, in registration order).
RESILIENCE_PROFILES = (
    "link-flap",
    "node-maintenance",
    "flash-crowd",
    "degradation",
    "ingress-migration",
    "blackout",
)


def run_resilience(
    config: ExperimentConfig,
    profiles: Sequence[str] | None = None,
    algorithms: Sequence[str] = ("OLIVE", "QUICKG"),
    policy: str = "reroute",
    runner: ParallelRunner | None = None,
) -> dict[str, dict[str, ConfidenceInterval]]:
    """Dynamic-event stress battery (the ``fig_resilience`` driver).

    Runs the algorithms under each registered event profile (link flaps,
    node maintenance, flash crowds, degradations, ...) plus an
    undisturbed ``"none"`` baseline, and reports the resilience metrics
    (``disrupted_rate``, ``availability``, ``recovery_time``) next to the
    paper's rejection/cost metrics. Not a paper figure — the evaluation
    only exercises well-behaved planned demand; this driver is the
    chaos-scenario extension the ROADMAP asks for.

    Note on SLOTOFF: as a batch re-solver it sheds event-stranded
    requests through its next per-slot LP, reported as ordinary
    preemptions — its ``disrupted_rate`` is structurally 0 and its event
    losses show up in ``rejection_rate``/``availability`` instead (see
    :func:`repro.sim.metrics.disruption_rate`).
    """
    if profiles is None:
        profiles = RESILIENCE_PROFILES
    out: dict[str, dict[str, ConfidenceInterval]] = {}
    baseline = _experiment(config, algorithms).run(runner=runner)
    out["none"] = dict(baseline.summary)
    swept = (
        _experiment(config, algorithms)
        .perturb(event_policy=policy)
        .sweep("events", profiles)
        .run(runner=runner)
    )
    for profile, summary in swept.keyed("events").items():
        out[profile] = summary
    return out


# -- Fig. 16: runtime scalability ------------------------------------------------


def run_runtime_scaling(
    config: ExperimentConfig,
    arrival_rates: Sequence[float] = (2.0, 5.0, 10.0, 20.0),
    utilizations: Sequence[float] = (0.6, 1.0, 1.4),
    algorithms: Sequence[str] = ("OLIVE", "QUICKG"),
    runner: ParallelRunner | None = None,
) -> dict[str, dict]:
    """Runtime vs arrival rate (Fig. 16a) and vs utilization (Fig. 16b–e).

    Utilization is held constant while the arrival rate varies — the
    demand-mean calibration scales request sizes down as the rate goes up,
    exactly as in the paper ("we maintained the same utilization in all
    executions by scaling the mean request size").
    """
    by_rate_result = (
        _experiment(config, algorithms)
        .sweep("arrivals_per_node", arrival_rates)
        .run(runner=runner)
    )
    by_rate = {
        point.params["arrivals_per_node"]: {
            name: point.value(name, "runtime") for name in algorithms
        }
        for point in by_rate_result
    }
    by_utilization_result = (
        _experiment(config, algorithms)
        .sweep("utilization", utilizations)
        .run(runner=runner)
    )
    by_utilization = {
        point.params["utilization"]: {
            name: point.value(name, "runtime") for name in algorithms
        }
        for point in by_utilization_result
    }
    return {"by_rate": by_rate, "by_utilization": by_utilization}


# -- fig_scale: throughput vs generated substrate size (beyond the paper) -----

#: Topology-size ladder per CLI scale preset. The bench/paper ladders
#: span >=10x in node count; ``test`` stays small enough for smoke runs.
SCALE_SIZES = {
    "test": (30, 60),
    "bench": (40, 120, 400),
    "paper": (40, 120, 400, 800),
}


def scale_config(config: ExperimentConfig) -> ExperimentConfig:
    """Make ``config`` affordable at hundreds of substrate nodes.

    The PLAN-VNE LP's class count grows with substrate edges × apps, so
    four-app mixes become intractable past ~200 nodes; the single-chain
    ``scale`` mix keeps planning feasible across the whole ladder. The
    horizons shrink accordingly — the scale curve measures throughput,
    not rejection statistics, so long histories buy nothing here.
    """
    return config.with_(
        app_mix="scale",
        arrivals_per_node=min(config.arrivals_per_node, 2.0),
        history_slots=60,
        online_slots=30,
        measure_start=4,
        measure_stop=26,
    )


def run_scale(
    config: ExperimentConfig,
    sizes: Sequence[int] = SCALE_SIZES["bench"],
    family: str = "tiered-x",
    algorithms: Sequence[str] = ("OLIVE", "QUICKG"),
    runner: ParallelRunner | None = None,
) -> dict[int, dict[str, ConfidenceInterval]]:
    """Throughput vs substrate size (the ``fig_scale`` driver).

    Sweeps one generated topology family (``tiered-x`` by default — any
    registry entry with ``sized=True`` metadata works) across a ladder
    of node counts and reports the full metric summaries; the headline
    series are ``slots_per_sec`` and ``requests_per_sec``. Pass the
    config through :func:`scale_config` first — the default presets plan
    four-app mixes, which blow up the LP at the top of the ladder.
    """
    result = (
        _experiment(config, algorithms)
        .sweep("topology", tuple(f"{family}:{size}" for size in sizes))
        .run(runner=runner)
    )
    keyed = result.keyed("topology")
    return {size: keyed[f"{family}:{size}"] for size in sizes}
