"""One driver per paper figure (Sec. IV-B).

Every driver builds scenarios via :func:`repro.experiments.scenario.build_scenario`,
runs the requested algorithms on the *same* trace and plan (the paper's
methodology), and returns plain dicts of
:class:`~repro.sim.runner.ConfidenceInterval` values keyed by
``"{algorithm}:{metric}"`` — ready for the benchmark harness to print
paper-shaped tables.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.experiments.cache import get_active_cache, result_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import Scenario, build_scenario, make_algorithm
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import (
    NodeTimeline,
    balance_index,
    cost_breakdown,
    demand_series,
    rejection_rate,
)
from repro.sim.runner import (
    ConfidenceInterval,
    ParallelRunner,
    get_default_runner,
)

DEFAULT_ALGORITHMS = ("OLIVE", "QUICKG", "SLOTOFF")


def run_single(
    config: ExperimentConfig,
    seed: int,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    **scenario_kwargs,
) -> tuple[Scenario, dict[str, SimulationResult]]:
    """Run one repetition of one configuration for several algorithms."""
    with_plan = any(name == "OLIVE" for name in algorithms)
    scenario = build_scenario(
        config, seed, with_plan=with_plan, **scenario_kwargs
    )
    online = scenario.online_requests()
    results = {}
    for name in algorithms:
        algorithm = make_algorithm(name, scenario)
        results[name] = simulate(algorithm, online, config.online_slots)
    return scenario, results


def summarize_run(
    scenario: Scenario, results: dict[str, SimulationResult]
) -> dict[str, float]:
    """Flatten one repetition's results into ``alg:metric`` values."""
    window = scenario.config.measure_window
    metrics: dict[str, float] = {}
    for name, result in results.items():
        costs = cost_breakdown(
            result, scenario.substrate, scenario.apps, window
        )
        metrics[f"{name}:rejection_rate"] = rejection_rate(result, window)
        metrics[f"{name}:resource_cost"] = costs.resource
        metrics[f"{name}:rejection_cost"] = costs.rejection
        metrics[f"{name}:total_cost"] = costs.total
        metrics[f"{name}:runtime"] = result.runtime_seconds
        metrics[f"{name}:balance"] = balance_index(
            result, len(scenario.apps), window
        )
    return metrics


@dataclass(frozen=True)
class _SweepTask:
    """One repetition of one sweep point, picklable for the process pool."""

    config: ExperimentConfig
    algorithms: tuple[str, ...]
    scenario_kwargs: tuple[tuple[str, object], ...]

    def __call__(self, seed: int) -> dict[str, float]:
        scenario, results = run_single(
            self.config,
            seed,
            self.algorithms,
            **dict(self.scenario_kwargs),
        )
        return summarize_run(scenario, results)


def _sweep(
    config: ExperimentConfig,
    algorithms: Sequence[str],
    runner: ParallelRunner | None = None,
    **scenario_kwargs,
) -> dict[str, ConfidenceInterval]:
    """Repeat one configuration and summarize with confidence intervals.

    Repetitions run through ``runner`` (the process-wide default when not
    given). When a result cache is active the whole sweep point is looked
    up first, so re-running a sweep recomputes only changed points.
    """
    cache = get_active_cache()
    key = None
    if cache is not None:
        key = result_key(
            config, "sweep", algorithms, extra=dict(scenario_kwargs)
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    task = _SweepTask(
        config, tuple(algorithms), tuple(sorted(scenario_kwargs.items()))
    )
    if runner is None:
        runner = get_default_runner()
    summary = runner.repeat(task, config.repetitions, config.base_seed)
    if cache is not None and key is not None:
        cache.put(key, summary)
    return summary


# -- Fig. 6 / Fig. 7: rejection rate and cost vs utilization -----------------


def run_rejection_vs_utilization(
    config: ExperimentConfig,
    utilizations: Sequence[float],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: ParallelRunner | None = None,
) -> dict[float, dict[str, ConfidenceInterval]]:
    """The Fig. 6 (rejection) / Fig. 7 (cost) sweep for one topology."""
    return {
        utilization: _sweep(
            config.with_(utilization=utilization), algorithms, runner
        )
        for utilization in utilizations
    }


# -- Fig. 8: allocated-demand zoom -------------------------------------------


def run_demand_zoom(
    config: ExperimentConfig,
    zoom: tuple[int, int],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    seed: int | None = None,
) -> dict[str, dict]:
    """Per-slot requested vs allocated demand in a zoom window (Fig. 8)."""
    scenario, results = run_single(
        config, seed if seed is not None else config.base_seed, algorithms
    )
    return {
        name: demand_series(result, zoom) for name, result in results.items()
    }


# -- Fig. 9: sensitivity to application type ---------------------------------


def run_by_application(
    config: ExperimentConfig,
    app_types: Sequence[str] = ("chain", "tree", "accelerator", "standard"),
    algorithms: Sequence[str] = ("OLIVE", "QUICKG", "FULLG", "SLOTOFF"),
    runner: ParallelRunner | None = None,
) -> dict[str, dict[str, ConfidenceInterval]]:
    """Rejection rate per application type at one utilization (Fig. 9)."""
    return {
        app_type: _sweep(config.with_(app_mix=app_type), algorithms, runner)
        for app_type in app_types
    }


# -- Fig. 10: the GPU scenario ------------------------------------------------


def run_gpu_scenario(
    config: ExperimentConfig,
    algorithms: Sequence[str] = ("OLIVE", "FULLG", "SLOTOFF"),
    runner: ParallelRunner | None = None,
) -> dict[str, ConfidenceInterval]:
    """GPU-constrained chains on the split-GPU substrate (Fig. 10).

    QUICKG is excluded by default, exactly as in the paper: its collocation
    restriction cannot express a placement split across GPU and non-GPU
    datacenters.
    """
    gpu_config = config.with_(gpu_scenario=True, app_mix="gpu")
    return _sweep(gpu_config, algorithms, runner)


# -- Fig. 11: rejection balance vs quantile count ------------------------------


def run_balance_quantiles(
    config: ExperimentConfig,
    quantile_counts: Sequence[int] = (1, 2, 10, 50),
    runner: ParallelRunner | None = None,
) -> dict[str, ConfidenceInterval]:
    """Balance index for OLIVE at several P values plus QUICKG (Fig. 11)."""
    out: dict[str, ConfidenceInterval] = {}
    quickg = _sweep(config, ["QUICKG"], runner)
    out["QUICKG"] = quickg["QUICKG:balance"]
    for count in quantile_counts:
        summary = _sweep(config, ["OLIVE"], runner, num_quantiles=count)
        out[f"OLIVE:P={count}"] = summary["OLIVE:balance"]
    return out


# -- Fig. 12: per-node allocation timeline ------------------------------------


def collect_node_timeline(
    config: ExperimentConfig,
    node: str = "Franklin",
    seed: int | None = None,
) -> NodeTimeline:
    """OLIVE's guaranteed/borrowed/preempted activity at one node (Fig. 12)."""
    scenario, results = run_single(
        config, seed if seed is not None else config.base_seed, ["OLIVE"]
    )
    return NodeTimeline.collect(
        results["OLIVE"], scenario.plan, node, len(scenario.apps)
    )


# -- Fig. 13: deviation from the expected demand -------------------------------


def run_unexpected_demand(
    config: ExperimentConfig,
    plan_utilizations: Sequence[float] = (0.6, 1.0),
    reference_algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: ParallelRunner | None = None,
) -> dict[str, ConfidenceInterval]:
    """Plan for 60 %/100 % expected demand, run at the configured 140 %.

    Returns OLIVE's rejection rate per planning level, with OLIVE (plan at
    the true level), QUICKG and SLOTOFF as references.
    """
    out: dict[str, ConfidenceInterval] = {}
    reference = _sweep(config, reference_algorithms, runner)
    for name in reference_algorithms:
        out[name] = reference[f"{name}:rejection_rate"]
    for plan_utilization in plan_utilizations:
        summary = _sweep(
            config, ["OLIVE"], runner, plan_utilization=plan_utilization
        )
        out[f"OLIVE:plan={plan_utilization:.0%}"] = summary[
            "OLIVE:rejection_rate"
        ]
    return out


# -- Fig. 14: spatially shifted plan -------------------------------------------


def run_shifted_plan(
    config: ExperimentConfig,
    utilizations: Sequence[float],
    algorithms: Sequence[str] = ("OLIVE", "QUICKG"),
    runner: ParallelRunner | None = None,
) -> dict[float, dict[str, ConfidenceInterval]]:
    """Plan built from randomly re-located history requests (Fig. 14)."""
    return {
        utilization: _sweep(
            config.with_(utilization=utilization),
            algorithms,
            runner,
            shift_plan_ingress=True,
        )
        for utilization in utilizations
    }


# -- Fig. 15: CAIDA-derived demand ---------------------------------------------


def run_caida(
    config: ExperimentConfig,
    utilizations: Sequence[float],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    runner: ParallelRunner | None = None,
) -> dict[float, dict[str, ConfidenceInterval]]:
    """The Fig. 6a experiment on the CAIDA-like trace (Fig. 15)."""
    caida = config.with_(trace_kind="caida")
    return {
        utilization: _sweep(
            caida.with_(utilization=utilization), algorithms, runner
        )
        for utilization in utilizations
    }


# -- Fig. 16: runtime scalability ------------------------------------------------


def run_runtime_scaling(
    config: ExperimentConfig,
    arrival_rates: Sequence[float] = (2.0, 5.0, 10.0, 20.0),
    utilizations: Sequence[float] = (0.6, 1.0, 1.4),
    algorithms: Sequence[str] = ("OLIVE", "QUICKG"),
    runner: ParallelRunner | None = None,
) -> dict[str, dict]:
    """Runtime vs arrival rate (Fig. 16a) and vs utilization (Fig. 16b–e).

    Utilization is held constant while the arrival rate varies — the
    demand-mean calibration scales request sizes down as the rate goes up,
    exactly as in the paper ("we maintained the same utilization in all
    executions by scaling the mean request size").
    """
    by_rate = {}
    for rate in arrival_rates:
        summary = _sweep(
            config.with_(arrivals_per_node=rate), algorithms, runner
        )
        by_rate[rate] = {
            name: summary[f"{name}:runtime"] for name in algorithms
        }
    by_utilization = {}
    for utilization in utilizations:
        summary = _sweep(
            config.with_(utilization=utilization), algorithms, runner
        )
        by_utilization[utilization] = {
            name: summary[f"{name}:runtime"] for name in algorithms
        }
    return {"by_rate": by_rate, "by_utilization": by_utilization}
