"""On-disk cache for experiment results.

Every sweep point (one :class:`~repro.experiments.config.ExperimentConfig`
plus the algorithm list and scenario perturbations) is keyed by a stable
SHA-256 of its parameters together with a fingerprint of the ``repro``
source tree, so results survive process restarts but are invalidated the
moment any library code changes. Entries are human-inspectable JSON files
of :class:`~repro.sim.runner.ConfidenceInterval` values.

The cache is *opt-in* at the library level (``get_active_cache()`` returns
``None`` until :func:`configure_cache` enables it); the CLI enables it by
default and exposes ``--no-cache`` / ``--cache-dir``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from collections.abc import Mapping, Sequence
from functools import lru_cache
from pathlib import Path

from repro.errors import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.sim.runner import ConfidenceInterval
from repro.utils.paths import default_cache_root

#: Bump manually on cache-format changes (orthogonal to code fingerprint).
CACHE_FORMAT = 1


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Keying cache entries on this hash means a code change — any code
    change, not just one we remembered to version — invalidates every
    previously cached result.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(str(source.relative_to(package_root)).encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


def _jsonable(value):
    """Normalize key components into deterministic JSON-encodable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, Mapping):
        # Sort by the stringified key: mixed key types (int vs str) are
        # not mutually comparable, but their string forms always are.
        items = sorted(value.items(), key=lambda item: str(item[0]))
        result = {str(k): _jsonable(v) for k, v in items}
        if len(result) != len(value):
            # Two distinct keys collapsed to one string (e.g. 1 and "1"):
            # silently merging them would alias different cache keys.
            raise SimulationError(
                "cache keys must stringify uniquely; got colliding keys in "
                f"{sorted(str(k) for k in value)}"
            )
        return result
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise SimulationError(
        f"cache keys must be built from plain data, got {type(value)!r}"
    )


def result_key(
    config: ExperimentConfig,
    label: str,
    algorithms: Sequence[str] = (),
    extra: Mapping[str, object] | None = None,
) -> str:
    """Stable hash of one result's full parameterization.

    ``label`` names what was computed (a figure/driver name), ``extra``
    carries driver-specific perturbations (``num_quantiles``,
    ``shift_plan_ingress``, ...). The repro code fingerprint and cache
    format version are always mixed in.
    """
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "code": code_fingerprint(),
            "label": label,
            "config": _jsonable(config),
            "algorithms": list(algorithms),
            "extra": _jsonable(dict(extra or {})),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _encode_summary(summary: Mapping[str, ConfidenceInterval]) -> dict:
    return {
        metric: dataclasses.asdict(interval)
        for metric, interval in summary.items()
    }


def _decode_summary(data: Mapping) -> dict[str, ConfidenceInterval]:
    return {
        metric: ConfidenceInterval(**fields)
        for metric, fields in data.items()
    }


class ResultCache:
    """Directory of JSON result files, one per :func:`result_key`."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, ConfidenceInterval] | None:
        """The cached summary for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            summary = _decode_summary(data["summary"])
        except (KeyError, TypeError):
            # Unreadable entry (older format): treat as a miss; the next
            # put() overwrites it.
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(
        self, key: str, summary: Mapping[str, ConfidenceInterval]
    ) -> None:
        """Persist one summary; atomic enough for concurrent writers.

        Writes go to a per-process temp name first, then ``rename`` into
        place, so readers never observe a torn file. An unwritable cache
        root degrades to a warning — the computed result must survive
        even when persisting it cannot.
        """
        payload = json.dumps(
            {"format": CACHE_FORMAT, "summary": _encode_summary(summary)},
            sort_keys=True,
            indent=1,
        )
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temp = path.with_suffix(f".tmp{os.getpid()}")
            temp.write_text(payload)
            temp.replace(path)
        except OSError as error:
            warnings.warn(
                f"result cache write failed under {self.root}: {error}",
                stacklevel=2,
            )

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed.

        Also sweeps ``*.tmp*`` droppings: :meth:`put` stages writes under
        a per-process temp name before the atomic rename, so a writer
        crashing mid-write leaks its temp file — without the sweep those
        would accumulate forever. Leaked temps are removed but not
        counted (they were never readable entries).
        """
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.rglob("*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        for leak in self.root.rglob("*.tmp*"):
            leak.unlink(missing_ok=True)
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))


#: Process-wide cache consulted by the figure drivers; ``None`` = disabled.
_active_cache: ResultCache | None = None


def get_active_cache() -> ResultCache | None:
    """The cache the drivers consult, or ``None`` when caching is off."""
    return _active_cache


def configure_cache(
    enabled: bool = True, root: Path | str | None = None
) -> ResultCache | None:
    """Enable (or disable, with ``enabled=False``) the process-wide cache.

    Returns the now-active cache (``None`` when disabled).
    """
    global _active_cache
    _active_cache = ResultCache(root) if enabled else None
    return _active_cache
