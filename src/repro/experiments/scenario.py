"""Scenario assembly: substrate + applications + trace + plan for one run.

A :class:`Scenario` is everything a simulation needs, built deterministically
from an :class:`ExperimentConfig` and a seed. Every string-keyed component
(topology, app mix, trace kind, efficiency model, algorithm) is resolved
through :mod:`repro.registry`, so third-party components registered with
the ``@register_*`` decorators participate without edits here.

The builder supports the evaluation's perturbation studies:

* ``plan_utilization`` — build the plan from a history whose demand level
  corresponds to a different utilization than the online phase encounters
  (Fig. 13, "unexpected demand");
* ``shift_plan_ingress`` — randomly remap the ingress of every history
  request before planning (Fig. 14, "spatial distribution change");
* ``num_quantiles`` — override P of the PLAN-VNE LP (Fig. 11).

This module also registers the built-in algorithms: the paper's OLIVE /
QUICKG / FULLG / SLOTOFF plus the two planner extensions, ``OLIVE-W``
(time-windowed plans from :mod:`repro.plan.windowed`) and ``OLIVE-RE``
(periodic online replanning from :mod:`repro.plan.replanning`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.apps.application import Application
from repro.apps.efficiency import EfficiencyModel
from repro.baselines.fullg import FullGAlgorithm
from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm
from repro.core.olive import OliveAlgorithm
from repro.experiments.config import ExperimentConfig
from repro.plan.api import compute_plan
from repro.plan.formulation import PlanVNEConfig
from repro.plan.pattern import Plan
from repro.plan.replanning import ReplanningOliveAlgorithm
from repro.plan.windowed import (
    PlanSchedule,
    WindowedOliveAlgorithm,
    compute_windowed_plans,
)
from repro.registry import (
    algorithm_registry,
    app_mix_registry,
    efficiency_registry,
    register_algorithm,
    trace_registry,
)
from repro.stats.aggregate import build_aggregate_demand
from repro.substrate.network import SubstrateNetwork
from repro.substrate.topologies import make_topology, split_gpu_datacenters
from repro.utils.rng import child_rng, make_rng
from repro.workload.request import Request
from repro.workload.trace import (
    Trace,
    TraceConfig,
    demand_mean_for_utilization,
)


@dataclass
class Scenario:
    """One fully assembled simulation scenario."""

    config: ExperimentConfig
    seed: int
    substrate: SubstrateNetwork
    apps: list[Application]
    efficiency: EfficiencyModel
    trace: Trace
    plan: Plan

    def online_requests(self) -> list[Request]:
        return self.trace.online_requests()


def _draw_apps(config: ExperimentConfig, rng) -> list[Application]:
    """Draw the application set named by ``config.app_mix`` (registry)."""
    return app_mix_registry.create(config.app_mix, rng)


def _make_efficiency(config: ExperimentConfig) -> EfficiencyModel:
    """Resolve the efficiency model: explicit config choice or auto."""
    name = config.efficiency or ("gpu" if config.gpu_scenario else "uniform")
    return efficiency_registry.create(name)


def build_scenario(
    config: ExperimentConfig,
    seed: int,
    plan_utilization: float | None = None,
    shift_plan_ingress: bool = False,
    num_quantiles: int | None = None,
    with_plan: bool = True,
) -> Scenario:
    """Assemble the scenario for one repetition (Alg. 1 steps 1–2)."""
    rng = make_rng(seed)
    substrate = make_topology(config.topology)
    if config.gpu_scenario:
        substrate = split_gpu_datacenters(
            substrate, seed=seed
        )
    efficiency = _make_efficiency(config)

    apps = _draw_apps(config, child_rng(rng, "apps"))
    demand_mean = demand_mean_for_utilization(
        config.utilization,
        substrate,
        apps,
        arrivals_per_node=config.arrivals_per_node,
        duration_mean=config.duration_mean,
    )
    trace_config = TraceConfig(
        history_slots=config.history_slots,
        online_slots=config.online_slots,
        arrivals_per_node=config.arrivals_per_node,
        demand_mean=demand_mean,
        demand_std=config.demand_cv * demand_mean,
        duration_mean=config.duration_mean,
    )
    trace_rng = child_rng(rng, "trace")
    trace = trace_registry.create(
        config.trace_kind, substrate, apps, trace_config, trace_rng
    )

    plan = Plan()
    if with_plan:
        history = trace.history_requests()
        if plan_utilization is not None and plan_utilization != config.utilization:
            scale = plan_utilization / config.utilization
            history = [
                Request(
                    arrival=r.arrival,
                    id=r.id,
                    app_index=r.app_index,
                    ingress=r.ingress,
                    demand=r.demand * scale,
                    duration=r.duration,
                )
                for r in history
            ]
        if shift_plan_ingress:
            shift_rng = child_rng(rng, "shift")
            edge_nodes = substrate.edge_nodes
            history = [
                Request(
                    arrival=r.arrival,
                    id=r.id,
                    app_index=r.app_index,
                    ingress=edge_nodes[int(shift_rng.integers(0, len(edge_nodes)))],
                    demand=r.demand,
                    duration=r.duration,
                )
                for r in history
            ]
        aggregates = build_aggregate_demand(
            history,
            config.history_slots,
            alpha=config.percentile_alpha,
            rng=child_rng(rng, "bootstrap"),
        )
        plan = compute_plan(
            substrate,
            apps,
            aggregates,
            efficiency,
            PlanVNEConfig(
                num_quantiles=(
                    num_quantiles
                    if num_quantiles is not None
                    else config.num_quantiles
                )
            ),
        )
    return Scenario(
        config=config,
        seed=seed,
        substrate=substrate,
        apps=apps,
        efficiency=efficiency,
        trace=trace,
        plan=plan,
    )


# -- built-in algorithms -------------------------------------------------------

#: Metrics every built-in algorithm reports per run (see
#: :func:`repro.api.summarize_run`). The last three quantify resilience
#: under dynamic events (:mod:`repro.scenarios.events`) and take their
#: event-free defaults (0 / 1.0 / 0) on undisturbed runs.
DEFAULT_METRICS = (
    "rejection_rate",
    "resource_cost",
    "rejection_cost",
    "total_cost",
    "runtime",
    "slots_per_sec",
    "requests_per_sec",
    "balance",
    "disrupted_rate",
    "availability",
    "recovery_time",
)

#: Windows used by the registered ``OLIVE-W`` variant.
OLIVE_W_WINDOWS = 4


def _expected_offers_per_slot(scenario: Scenario) -> float:
    """Mean arrivals per slot — the greedy fast path's payoff hint.

    Seeds the adaptive PathCache bypass
    (:class:`repro.core.greedy.GreedyContext`): together with the
    topology size it calibrates whether band memoization starts enabled.
    Purely a speed hint — decisions are identical either way.
    """
    return len(scenario.online_requests()) / max(
        scenario.config.online_slots, 1
    )


@register_algorithm(
    "OLIVE",
    needs_plan=True,
    metrics=DEFAULT_METRICS,
    description="plan-guided online embedding with borrowing (Alg. 2)",
)
def _make_olive(scenario: Scenario) -> OliveAlgorithm:
    return OliveAlgorithm(
        scenario.substrate,
        scenario.apps,
        scenario.plan,
        efficiency=scenario.efficiency,
        expected_offers_per_slot=_expected_offers_per_slot(scenario),
    )


@register_algorithm(
    "QUICKG",
    needs_plan=False,
    metrics=DEFAULT_METRICS,
    description="plan-less greedy with strict collocation (baseline)",
)
def _make_quickg(scenario: Scenario):
    return make_quickg(
        scenario.substrate, scenario.apps, scenario.efficiency,
        expected_offers_per_slot=_expected_offers_per_slot(scenario),
    )


@register_algorithm(
    "FULLG",
    needs_plan=False,
    metrics=DEFAULT_METRICS,
    description="exact per-request minimum-cost embedding (tree DP baseline)",
)
def _make_fullg(scenario: Scenario) -> FullGAlgorithm:
    return FullGAlgorithm(
        scenario.substrate, scenario.apps, scenario.efficiency
    )


@register_algorithm(
    "SLOTOFF",
    needs_plan=False,
    metrics=DEFAULT_METRICS,
    description="per-slot offline LP upper baseline",
)
def _make_slotoff(scenario: Scenario) -> SlotOffAlgorithm:
    return SlotOffAlgorithm(
        scenario.substrate,
        scenario.apps,
        scenario.efficiency,
        PlanVNEConfig(num_quantiles=scenario.config.num_quantiles),
    )


@register_algorithm(
    "OLIVE-W",
    needs_plan=True,
    metrics=DEFAULT_METRICS,
    description=f"OLIVE switching between {OLIVE_W_WINDOWS} time-windowed plans",
)
def _make_olive_windowed(scenario: Scenario) -> WindowedOliveAlgorithm:
    config = scenario.config
    schedule = compute_windowed_plans(
        scenario.substrate,
        scenario.apps,
        scenario.trace.history_requests(),
        config.history_slots,
        config.online_slots,
        num_windows=min(OLIVE_W_WINDOWS, config.history_slots),
        alpha=config.percentile_alpha,
        efficiency=scenario.efficiency,
        config=PlanVNEConfig(num_quantiles=config.num_quantiles),
        rng=child_rng(make_rng(scenario.seed), "windowed-plans"),
    )
    if any(plan.is_empty for plan in schedule.plans):
        # A window with no observed demand yields an empty plan, which
        # would make OLIVE-W run plan-less (pure greedy) for that stretch;
        # fall back to the scenario's whole-history plan there instead.
        schedule = PlanSchedule(
            starts=schedule.starts,
            plans=[
                scenario.plan if plan.is_empty else plan
                for plan in schedule.plans
            ],
            period=schedule.period,
        )
    return WindowedOliveAlgorithm(
        scenario.substrate,
        scenario.apps,
        schedule,
        efficiency=scenario.efficiency,
    )


@register_algorithm(
    "OLIVE-RE",
    needs_plan=True,
    metrics=DEFAULT_METRICS,
    description="OLIVE re-solving PLAN-VNE periodically from observed demand",
)
def _make_olive_replanning(scenario: Scenario) -> ReplanningOliveAlgorithm:
    config = scenario.config
    interval = max(1, config.online_slots // 4)
    return ReplanningOliveAlgorithm(
        scenario.substrate,
        scenario.apps,
        interval=interval,
        window=2 * interval,
        alpha=config.percentile_alpha,
        efficiency=scenario.efficiency,
        plan_config=PlanVNEConfig(num_quantiles=config.num_quantiles),
        seed_plan=scenario.plan,
        seed=scenario.seed,
        name="OLIVE-RE",
    )


#: The built-in algorithm names (snapshot; the registry is the live source).
ALGORITHM_NAMES = ("OLIVE", "QUICKG", "FULLG", "SLOTOFF", "OLIVE-W", "OLIVE-RE")


def algorithms_need_plan(names: Sequence[str]) -> bool:
    """Whether any of ``names`` requires the offline plan (registry metadata)."""
    return any(algorithm_registry.get(name).needs_plan for name in names)


def make_algorithm(name: str, scenario: Scenario):
    """Instantiate a fresh algorithm for one simulation run.

    Thin shim over ``repro.registry.algorithm_registry`` — prefer
    ``algorithm_registry.create(name, scenario)`` in new code.
    """
    return algorithm_registry.create(name, scenario)
