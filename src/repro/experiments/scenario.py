"""Scenario assembly: substrate + applications + trace + plan for one run.

A :class:`Scenario` is everything a simulation needs, built deterministically
from an :class:`ExperimentConfig` and a seed. The builder supports the
evaluation's perturbation studies:

* ``plan_utilization`` — build the plan from a history whose demand level
  corresponds to a different utilization than the online phase encounters
  (Fig. 13, "unexpected demand");
* ``shift_plan_ingress`` — randomly remap the ingress of every history
  request before planning (Fig. 14, "spatial distribution change");
* ``num_quantiles`` — override P of the PLAN-VNE LP (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.application import Application
from repro.apps.catalog import draw_standard_mix, make_uniform_type_set
from repro.apps.efficiency import (
    EfficiencyModel,
    GpuAwareEfficiency,
    UniformEfficiency,
)
from repro.baselines.fullg import FullGAlgorithm
from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm
from repro.core.olive import OliveAlgorithm
from repro.errors import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.plan.api import compute_plan
from repro.plan.formulation import PlanVNEConfig
from repro.plan.pattern import Plan
from repro.stats.aggregate import build_aggregate_demand
from repro.substrate.network import SubstrateNetwork
from repro.substrate.topologies import make_topology, split_gpu_datacenters
from repro.utils.rng import child_rng, make_rng
from repro.workload.request import Request
from repro.workload.trace import (
    Trace,
    TraceConfig,
    demand_mean_for_utilization,
    generate_caida_like_trace,
    generate_mmpp_trace,
)


@dataclass
class Scenario:
    """One fully assembled simulation scenario."""

    config: ExperimentConfig
    seed: int
    substrate: SubstrateNetwork
    apps: list[Application]
    efficiency: EfficiencyModel
    trace: Trace
    plan: Plan

    def online_requests(self) -> list[Request]:
        return self.trace.online_requests()


def _draw_apps(config: ExperimentConfig, rng) -> list[Application]:
    if config.app_mix == "standard":
        return draw_standard_mix(rng)
    return make_uniform_type_set(rng, config.app_mix)


def build_scenario(
    config: ExperimentConfig,
    seed: int,
    plan_utilization: float | None = None,
    shift_plan_ingress: bool = False,
    num_quantiles: int | None = None,
    with_plan: bool = True,
) -> Scenario:
    """Assemble the scenario for one repetition (Alg. 1 steps 1–2)."""
    rng = make_rng(seed)
    substrate = make_topology(config.topology)
    if config.gpu_scenario:
        substrate = split_gpu_datacenters(
            substrate, seed=seed
        )
        efficiency: EfficiencyModel = GpuAwareEfficiency()
    else:
        efficiency = UniformEfficiency()

    apps = _draw_apps(config, child_rng(rng, "apps"))
    demand_mean = demand_mean_for_utilization(
        config.utilization,
        substrate,
        apps,
        arrivals_per_node=config.arrivals_per_node,
        duration_mean=config.duration_mean,
    )
    trace_config = TraceConfig(
        history_slots=config.history_slots,
        online_slots=config.online_slots,
        arrivals_per_node=config.arrivals_per_node,
        demand_mean=demand_mean,
        demand_std=config.demand_cv * demand_mean,
        duration_mean=config.duration_mean,
    )
    trace_rng = child_rng(rng, "trace")
    if config.trace_kind == "mmpp":
        trace = generate_mmpp_trace(substrate, apps, trace_config, trace_rng)
    elif config.trace_kind == "caida":
        trace = generate_caida_like_trace(
            substrate, apps, trace_config, trace_rng
        )
    else:
        raise SimulationError(f"unknown trace kind {config.trace_kind!r}")

    plan = Plan()
    if with_plan:
        history = trace.history_requests()
        if plan_utilization is not None and plan_utilization != config.utilization:
            scale = plan_utilization / config.utilization
            history = [
                Request(
                    arrival=r.arrival,
                    id=r.id,
                    app_index=r.app_index,
                    ingress=r.ingress,
                    demand=r.demand * scale,
                    duration=r.duration,
                )
                for r in history
            ]
        if shift_plan_ingress:
            shift_rng = child_rng(rng, "shift")
            edge_nodes = substrate.edge_nodes
            history = [
                Request(
                    arrival=r.arrival,
                    id=r.id,
                    app_index=r.app_index,
                    ingress=edge_nodes[int(shift_rng.integers(0, len(edge_nodes)))],
                    demand=r.demand,
                    duration=r.duration,
                )
                for r in history
            ]
        aggregates = build_aggregate_demand(
            history,
            config.history_slots,
            alpha=config.percentile_alpha,
            rng=child_rng(rng, "bootstrap"),
        )
        plan = compute_plan(
            substrate,
            apps,
            aggregates,
            efficiency,
            PlanVNEConfig(
                num_quantiles=(
                    num_quantiles
                    if num_quantiles is not None
                    else config.num_quantiles
                )
            ),
        )
    return Scenario(
        config=config,
        seed=seed,
        substrate=substrate,
        apps=apps,
        efficiency=efficiency,
        trace=trace,
        plan=plan,
    )


#: Algorithm names recognized by :func:`make_algorithm`.
ALGORITHM_NAMES = ("OLIVE", "QUICKG", "FULLG", "SLOTOFF")


def make_algorithm(name: str, scenario: Scenario):
    """Instantiate a fresh algorithm for one simulation run."""
    if name == "OLIVE":
        return OliveAlgorithm(
            scenario.substrate,
            scenario.apps,
            scenario.plan,
            efficiency=scenario.efficiency,
        )
    if name == "QUICKG":
        return make_quickg(
            scenario.substrate, scenario.apps, scenario.efficiency
        )
    if name == "FULLG":
        return FullGAlgorithm(
            scenario.substrate, scenario.apps, scenario.efficiency
        )
    if name == "SLOTOFF":
        return SlotOffAlgorithm(
            scenario.substrate,
            scenario.apps,
            scenario.efficiency,
            PlanVNEConfig(num_quantiles=scenario.config.num_quantiles),
        )
    raise SimulationError(
        f"unknown algorithm {name!r}; known: {ALGORITHM_NAMES}"
    )
