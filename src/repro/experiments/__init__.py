"""Experiment drivers reproducing every figure of the paper's evaluation.

:mod:`repro.experiments.config` holds the Table III parameters and the
laptop-scale presets; :mod:`repro.experiments.scenario` assembles one
simulation scenario (substrate + apps + trace + plan) and registers the
built-in algorithms; :mod:`repro.experiments.figures` has one driver per
paper figure, each a thin wrapper over the fluent :mod:`repro.api`
facade; :mod:`repro.experiments.cache` persists sweep results on disk
keyed by parameters + code version.
"""

from repro.experiments.cache import ResultCache, configure_cache, get_active_cache
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    collect_node_timeline,
    run_balance_quantiles,
    run_by_application,
    run_caida,
    run_demand_zoom,
    run_gpu_scenario,
    run_rejection_vs_utilization,
    run_runtime_scaling,
    run_shifted_plan,
    run_single,
    run_unexpected_demand,
)
from repro.experiments.scenario import (
    ALGORITHM_NAMES,
    Scenario,
    algorithms_need_plan,
    build_scenario,
    make_algorithm,
)

__all__ = [
    "ALGORITHM_NAMES",
    "ExperimentConfig",
    "ResultCache",
    "configure_cache",
    "get_active_cache",
    "Scenario",
    "algorithms_need_plan",
    "build_scenario",
    "make_algorithm",
    "run_single",
    "run_rejection_vs_utilization",
    "run_demand_zoom",
    "run_by_application",
    "run_gpu_scenario",
    "run_balance_quantiles",
    "collect_node_timeline",
    "run_unexpected_demand",
    "run_shifted_plan",
    "run_caida",
    "run_runtime_scaling",
]
