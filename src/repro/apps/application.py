"""Virtual network (application) data model.

An :class:`Application` is a rooted tree: node ``0`` is always θ (the user,
with β = 0), other nodes are VNFs. Virtual links are directed parent→child
for traversal purposes but model undirected communication; their load lands
on whatever substrate path the embedding selects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ApplicationError

ROOT_ID = 0


class VNFKind(enum.Enum):
    """Functional kind of a virtual node, driving η placement rules."""

    ROOT = "root"
    GENERIC = "generic"
    ACCELERATOR = "accelerator"
    GPU = "gpu"


@dataclass(frozen=True)
class VNF:
    """One virtual network function: identifier, size β, and kind."""

    id: int
    size: float
    kind: VNFKind = VNFKind.GENERIC

    def __post_init__(self) -> None:
        if self.id == ROOT_ID and self.kind is not VNFKind.ROOT:
            raise ApplicationError("node 0 is reserved for the root θ")
        if self.kind is VNFKind.ROOT and self.size != 0.0:
            raise ApplicationError("θ must have size 0")
        if self.size < 0:
            raise ApplicationError(f"VNF {self.id}: negative size {self.size}")


@dataclass(frozen=True)
class VirtualLink:
    """A virtual link (i, j) with size β. ``i`` is the parent (closer to θ)."""

    tail: int
    head: int
    size: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ApplicationError(
                f"virtual link ({self.tail},{self.head}): negative size"
            )

    @property
    def key(self) -> tuple[int, int]:
        return (self.tail, self.head)


@dataclass(frozen=True)
class Application:
    """A rooted tree virtual network.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"chain-4"``.
    vnfs:
        All virtual nodes including the root θ (id 0, size 0).
    links:
        Parent→child virtual links forming a tree over the VNF ids.
    """

    name: str
    vnfs: tuple[VNF, ...]
    links: tuple[VirtualLink, ...]
    _by_id: dict[int, VNF] = field(init=False, repr=False, compare=False)
    _children: dict[int, tuple[VirtualLink, ...]] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        by_id = {vnf.id: vnf for vnf in self.vnfs}
        if len(by_id) != len(self.vnfs):
            raise ApplicationError(f"{self.name}: duplicate VNF ids")
        if ROOT_ID not in by_id:
            raise ApplicationError(f"{self.name}: missing root θ (id 0)")
        if len(self.links) != len(self.vnfs) - 1:
            raise ApplicationError(
                f"{self.name}: a tree over {len(self.vnfs)} nodes needs "
                f"{len(self.vnfs) - 1} links, got {len(self.links)}"
            )
        children: dict[int, list[VirtualLink]] = {vnf.id: [] for vnf in self.vnfs}
        seen_heads: set[int] = set()
        for link in self.links:
            if link.tail not in by_id or link.head not in by_id:
                raise ApplicationError(
                    f"{self.name}: link {link.key} references unknown VNF"
                )
            if link.head in seen_heads or link.head == ROOT_ID:
                raise ApplicationError(
                    f"{self.name}: node {link.head} has multiple parents"
                )
            seen_heads.add(link.head)
            children[link.tail].append(link)
        # Reachability from the root certifies the links form one tree.
        reached = {ROOT_ID}
        stack = [ROOT_ID]
        while stack:
            node = stack.pop()
            for link in children[node]:
                reached.add(link.head)
                stack.append(link.head)
        if len(reached) != len(self.vnfs):
            raise ApplicationError(f"{self.name}: virtual network is not connected")
        object.__setattr__(self, "_by_id", by_id)
        object.__setattr__(
            self,
            "_children",
            {node: tuple(links) for node, links in children.items()},
        )

    # -- traversal ----------------------------------------------------------

    @property
    def root(self) -> VNF:
        return self._by_id[ROOT_ID]

    def vnf(self, vnf_id: int) -> VNF:
        return self._by_id[vnf_id]

    def children_links(self, vnf_id: int) -> tuple[VirtualLink, ...]:
        """Outgoing (parent→child) links of a virtual node."""
        return self._children[vnf_id]

    def links_in_bfs_order(self) -> list[VirtualLink]:
        """Virtual links ordered root-outward (parents before children)."""
        ordered: list[VirtualLink] = []
        queue = [ROOT_ID]
        while queue:
            node = queue.pop(0)
            for link in self._children[node]:
                ordered.append(link)
                queue.append(link.head)
        return ordered

    def non_root_vnfs(self) -> list[VNF]:
        return [vnf for vnf in self.vnfs if vnf.id != ROOT_ID]

    # -- aggregate sizes -----------------------------------------------------

    def total_node_size(self) -> float:
        """Σ β_i over VNFs — the per-unit-demand node footprint."""
        return sum(vnf.size for vnf in self.vnfs)

    def total_link_size(self) -> float:
        """Σ β over virtual links."""
        return sum(link.size for link in self.links)

    def root_adjacent_link_size(self) -> float:
        """Σ β of links incident to θ (what a collocated embedding routes)."""
        return sum(link.size for link in self._children[ROOT_ID])

    def has_kind(self, kind: VNFKind) -> bool:
        return any(vnf.kind is kind for vnf in self.vnfs)

    @property
    def num_vnfs(self) -> int:
        """Number of functional VNFs (θ excluded)."""
        return len(self.vnfs) - 1
