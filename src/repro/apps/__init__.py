"""Applications: virtual networks of VNFs rooted at a user node θ.

Implements the paper's application model (Sec. II-A): each application is a
tree/chain virtual network whose nodes are VNFs with sizes β, whose links
carry sizes β, and whose root θ represents the user's ingress point
(β_θ = 0). Placement preferences and restrictions are expressed through the
(in)efficiency coefficients η implemented in :mod:`repro.apps.efficiency`.
"""

from repro.apps.application import VNF, Application, VirtualLink, VNFKind
from repro.apps.catalog import (
    draw_standard_mix,
    make_accelerator,
    make_chain,
    make_gpu_chain,
    make_tree,
    make_uniform_type_set,
)
from repro.apps.efficiency import (
    EfficiencyModel,
    GpuAwareEfficiency,
    UniformEfficiency,
)

__all__ = [
    "VNF",
    "VNFKind",
    "VirtualLink",
    "Application",
    "EfficiencyModel",
    "UniformEfficiency",
    "GpuAwareEfficiency",
    "make_chain",
    "make_tree",
    "make_accelerator",
    "make_gpu_chain",
    "draw_standard_mix",
    "make_uniform_type_set",
]
