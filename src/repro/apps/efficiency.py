"""(In)efficiency coefficients η^q_s (Sec. II-A).

η scales the resources element ``q`` consumes when placed on substrate
element ``s``; ``None`` marks a forbidden placement (the paper uses
"extremely high η" — a hard exclusion is the limit case and keeps LPs
smaller by dropping the variables entirely).

The two models used in the evaluation:

* :class:`UniformEfficiency` — η ≡ 1 everywhere (the default setting).
* :class:`GpuAwareEfficiency` — GPU VNFs may only run on GPU datacenters
  and GPU datacenters accept only GPU VNFs (Fig. 10 scenario).
"""

from __future__ import annotations

from repro.apps.application import VNF, VirtualLink, VNFKind
from repro.registry import register_efficiency
from repro.substrate.network import LinkAttrs, NodeAttrs


class EfficiencyModel:
    """Interface for η^q_s lookups.

    Subclasses override :meth:`node_eta` / :meth:`link_eta`; returning
    ``None`` from :meth:`node_eta` forbids the placement.
    """

    def node_eta(self, vnf: VNF, node: NodeAttrs) -> float | None:
        """η for placing ``vnf`` on a datacenter, or None if forbidden."""
        raise NotImplementedError

    def link_eta(self, vlink: VirtualLink, link: LinkAttrs) -> float:
        """η for routing ``vlink`` over a substrate link."""
        raise NotImplementedError

    def placeable(self, vnf: VNF, node: NodeAttrs) -> bool:
        """Whether ``vnf`` may be placed on the datacenter at all."""
        return self.node_eta(vnf, node) is not None


@register_efficiency("uniform", description="η ≡ 1 everywhere (default)")
class UniformEfficiency(EfficiencyModel):
    """η ≡ 1: every VNF fits every datacenter equally well."""

    def node_eta(self, vnf: VNF, node: NodeAttrs) -> float | None:
        return 1.0

    def link_eta(self, vlink: VirtualLink, link: LinkAttrs) -> float:
        return 1.0


@register_efficiency(
    "gpu", description="GPU VNFs ↔ GPU datacenters exclusivity (Fig. 10)"
)
class GpuAwareEfficiency(EfficiencyModel):
    """GPU exclusivity: GPU VNFs ↔ GPU datacenters only.

    θ is exempt (it is pinned to the ingress node and consumes nothing).
    """

    def node_eta(self, vnf: VNF, node: NodeAttrs) -> float | None:
        if vnf.kind is VNFKind.ROOT:
            return 1.0
        if vnf.kind is VNFKind.GPU and not node.gpu:
            return None
        if vnf.kind is not VNFKind.GPU and node.gpu:
            return None
        return 1.0

    def link_eta(self, vlink: VirtualLink, link: LinkAttrs) -> float:
        return 1.0
