"""Generators for the paper's four application types (Sec. IV-A).

* chain — θ followed by a linear chain of VNFs;
* tree — a chain that forks into two branches;
* accelerator — a chain with one accelerator VNF that shrinks the size of
  the virtual link *after* it by 70 %;
* GPU chain — a chain with one randomly positioned GPU VNF that must be
  placed on a GPU datacenter (Fig. 10).

Element sizes follow N(50, 30²) truncated at a small positive floor, the
number of VNFs is uniform in {3, 4, 5} (Table III).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.errors import ApplicationError
from repro.registry import register_app_mix

#: Table III: element sizes ~ N(50, 900) = N(50, 30²).
SIZE_MEAN = 50.0
SIZE_STD = 30.0
#: Sizes are truncated below at this floor (a non-positive β would make an
#: element free and degenerate the LP).
SIZE_FLOOR = 1.0
#: Table III: VNFs per application uniform in {3, 4, 5}.
VNF_COUNT_RANGE = (3, 5)
#: The accelerator shrinks the size of its downstream virtual link by 70 %.
ACCELERATOR_SHRINK = 0.3


def _draw_size(rng: np.random.Generator) -> float:
    return max(SIZE_FLOOR, float(rng.normal(SIZE_MEAN, SIZE_STD)))


def _draw_num_vnfs(rng: np.random.Generator) -> int:
    low, high = VNF_COUNT_RANGE
    return int(rng.integers(low, high + 1))


def make_chain(
    rng: np.random.Generator,
    num_vnfs: int | None = None,
    name: str = "chain",
) -> Application:
    """θ → v1 → v2 → … → vk linear service chain."""
    k = num_vnfs if num_vnfs is not None else _draw_num_vnfs(rng)
    if k < 1:
        raise ApplicationError("a chain needs at least one VNF")
    vnfs = [VNF(ROOT_ID, 0.0, VNFKind.ROOT)]
    links = []
    for i in range(1, k + 1):
        vnfs.append(VNF(i, _draw_size(rng)))
        links.append(VirtualLink(i - 1, i, _draw_size(rng)))
    return Application(name=f"{name}-{k}", vnfs=tuple(vnfs), links=tuple(links))


def make_tree(
    rng: np.random.Generator,
    num_vnfs: int | None = None,
    name: str = "tree",
) -> Application:
    """A two-branch tree: θ → v1, then v1 forks into two chains.

    The non-stem VNFs are split as evenly as possible between the branches.
    """
    k = num_vnfs if num_vnfs is not None else _draw_num_vnfs(rng)
    if k < 3:
        raise ApplicationError("a two-branch tree needs at least three VNFs")
    vnfs = [VNF(ROOT_ID, 0.0, VNFKind.ROOT)]
    links = []
    vnfs.append(VNF(1, _draw_size(rng)))
    links.append(VirtualLink(ROOT_ID, 1, _draw_size(rng)))
    remaining = k - 1
    left_count = (remaining + 1) // 2
    next_id = 2
    for branch_size in (left_count, remaining - left_count):
        parent = 1
        for _ in range(branch_size):
            vnfs.append(VNF(next_id, _draw_size(rng)))
            links.append(VirtualLink(parent, next_id, _draw_size(rng)))
            parent = next_id
            next_id += 1
    return Application(name=f"{name}-{k}", vnfs=tuple(vnfs), links=tuple(links))


def make_accelerator(
    rng: np.random.Generator,
    num_vnfs: int | None = None,
    name: str = "accelerator",
) -> Application:
    """A chain with one accelerator VNF.

    The accelerator reduces the size of the consequent virtual link by 70 %
    (Sec. IV-A). The accelerator position is uniform among the chain VNFs
    that have a downstream link.
    """
    k = num_vnfs if num_vnfs is not None else _draw_num_vnfs(rng)
    if k < 2:
        raise ApplicationError("an accelerator chain needs at least two VNFs")
    accel_pos = int(rng.integers(1, k))  # VNF ids 1..k-1 have a downstream link
    vnfs = [VNF(ROOT_ID, 0.0, VNFKind.ROOT)]
    links = []
    for i in range(1, k + 1):
        kind = VNFKind.ACCELERATOR if i == accel_pos else VNFKind.GENERIC
        vnfs.append(VNF(i, _draw_size(rng), kind))
        size = _draw_size(rng)
        if i - 1 == accel_pos:
            size *= ACCELERATOR_SHRINK
        links.append(VirtualLink(i - 1, i, size))
    return Application(name=f"{name}-{k}", vnfs=tuple(vnfs), links=tuple(links))


def make_gpu_chain(
    rng: np.random.Generator,
    num_vnfs: int | None = None,
    name: str = "gpu-chain",
) -> Application:
    """A chain with one randomly selected GPU VNF (Fig. 10 scenario)."""
    k = num_vnfs if num_vnfs is not None else _draw_num_vnfs(rng)
    if k < 1:
        raise ApplicationError("a GPU chain needs at least one VNF")
    gpu_pos = int(rng.integers(1, k + 1))
    vnfs = [VNF(ROOT_ID, 0.0, VNFKind.ROOT)]
    links = []
    for i in range(1, k + 1):
        kind = VNFKind.GPU if i == gpu_pos else VNFKind.GENERIC
        vnfs.append(VNF(i, _draw_size(rng), kind))
        links.append(VirtualLink(i - 1, i, _draw_size(rng)))
    return Application(name=f"{name}-{k}", vnfs=tuple(vnfs), links=tuple(links))


@register_app_mix(
    "standard", description="2 chains + 1 tree + 1 accelerator (Table III)"
)
def draw_standard_mix(rng: np.random.Generator) -> list[Application]:
    """The Table III application set: 2 chains, 1 tree, 1 accelerator.

    Each application instance gets its own sizes and VNF count, matching
    "in each execution, we draw an application set from the distribution".
    """
    return [
        make_chain(rng, name="chain-a"),
        make_chain(rng, name="chain-b"),
        make_tree(rng),
        make_accelerator(rng),
    ]


def make_uniform_type_set(
    rng: np.random.Generator, app_type: str, count: int = 4
) -> list[Application]:
    """``count`` applications of a single type (Fig. 9 / Fig. 10 studies).

    ``app_type`` is one of ``"chain"``, ``"tree"``, ``"accelerator"``,
    ``"gpu"``.
    """
    makers = {
        "chain": make_chain,
        "tree": make_tree,
        "accelerator": make_accelerator,
        "gpu": make_gpu_chain,
    }
    try:
        maker = makers[app_type]
    except KeyError:
        raise ApplicationError(
            f"unknown application type {app_type!r}; known: {sorted(makers)}"
        ) from None
    return [maker(rng, name=f"{app_type}-{i}") for i in range(count)]


#: Per-tenant-class SLO targets attached to the multi-tenant mixes.
#: Keyed by tenant class; attached to the registry entries as ``slo``
#: metadata so schedulers and report generators can read the targets
#: without instantiating the mix.
TENANT_SLOS = {
    "gold": {
        "availability": 0.999, "max_rejection_rate": 0.01, "priority": 0,
    },
    "silver": {
        "availability": 0.99, "max_rejection_rate": 0.05, "priority": 1,
    },
    "bronze": {
        "availability": 0.9, "max_rejection_rate": 0.20, "priority": 2,
    },
}


def tenant_class(app_name: str) -> str | None:
    """The tenant class an application belongs to, or ``None``.

    Multi-tenant mixes encode the class as the first dash-separated
    segment of the application name (``"gold-chain-4"`` → ``"gold"``).
    """
    prefix = app_name.split("-", 1)[0]
    return prefix if prefix in TENANT_SLOS else None


@register_app_mix(
    "tenants",
    description="multi-tenant gold/silver/bronze mix with per-class SLOs",
    slo=TENANT_SLOS,
)
def draw_tenant_mix(rng: np.random.Generator) -> list[Application]:
    """A balanced three-class tenant population.

    One premium chain, one mid-tier tree, two best-effort chains — the
    class is recoverable from each application's name prefix via
    :func:`tenant_class`, and the per-class SLO targets ride on the
    registry entry's ``slo`` metadata.
    """
    return [
        make_chain(rng, name="gold-chain"),
        make_tree(rng, name="silver-tree"),
        make_chain(rng, name="bronze-chain-a"),
        make_chain(rng, name="bronze-chain-b"),
    ]


@register_app_mix(
    "tenants-premium",
    description="gold-heavy multi-tenant mix (accelerated premium chains)",
    slo=TENANT_SLOS,
)
def draw_premium_tenant_mix(rng: np.random.Generator) -> list[Application]:
    """A gold-dominated population: premium accelerated service chains.

    Stresses the admission logic where the high-priority class is the
    bulk of the offered load instead of a protected minority.
    """
    return [
        make_accelerator(rng, name="gold-accelerator"),
        make_chain(rng, name="gold-chain-a"),
        make_chain(rng, name="gold-chain-b"),
        make_tree(rng, name="silver-tree"),
    ]


@register_app_mix(
    "scale",
    description="single short chain — keeps the PLAN-VNE LP small for "
    "scale sweeps",
)
def draw_scale_mix(rng: np.random.Generator) -> list[Application]:
    """One 3-VNF chain: the workload of the fig_scale / BENCH_scale tier.

    The plan LP's variable count is (ingress classes × virtual links ×
    substrate arcs); ingress classes scale with edge nodes × apps, so a
    hundreds-of-nodes sweep needs the app dimension pinned to its
    minimum to stay solvable in seconds rather than hours.
    """
    return [make_chain(rng, num_vnfs=3, name="scale-chain")]


# The single-type mixes of the Fig. 9 / Fig. 10 studies. Registered at
# module scope (not via a helper function) so every process that imports
# the catalog — pool workers included — sees the identical registry
# (RPS104: registration must stay in import scope).
_UNIFORM_MIX_DESCRIPTIONS = {
    "chain": "4 linear service chains",
    "tree": "4 two-branch trees",
    "accelerator": "4 accelerator chains (70 % downstream shrink)",
    "gpu": "4 GPU chains (Fig. 10 placement constraint)",
}

for _app_type, _description in _UNIFORM_MIX_DESCRIPTIONS.items():
    register_app_mix(_app_type, description=_description)(
        functools.partial(make_uniform_type_set, app_type=_app_type)
    )
del _app_type, _description
