"""Path helpers: filesystem roots and substrate shortest paths.

The filesystem helpers give every on-disk artifact (the experiment result
cache, future trace downloads) one well-known, overridable root.

The shortest-path helpers operate on adjacency structures (``dict[node,
list[(neighbor, link_key)]]``) rather than on networkx graphs directly,
because the online algorithms call them in tight loops where networkx
overhead dominates.
"""

from __future__ import annotations

import heapq
import os
from collections.abc import Callable, Mapping, Sequence
from pathlib import Path

#: Environment variable overriding every on-disk root at once.
DATA_ROOT_ENV = "REPRO_DATA_DIR"
#: Environment variable overriding just the experiment result cache root.
CACHE_ROOT_ENV = "REPRO_CACHE_DIR"


def data_root() -> Path:
    """Root directory for everything the library persists.

    ``$REPRO_DATA_DIR`` if set, else ``~/.cache/repro`` (following the
    XDG convention via ``$XDG_CACHE_HOME`` when present). The directory
    is not created here — callers create what they actually use.
    """
    override = os.environ.get(DATA_ROOT_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def default_cache_root() -> Path:
    """Default root of the experiment result cache.

    ``$REPRO_CACHE_DIR`` if set, else ``<data_root()>/results``.
    """
    override = os.environ.get(CACHE_ROOT_ENV)
    if override:
        return Path(override)
    return data_root() / "results"


def capacity_constrained_dijkstra(
    adjacency: Mapping[object, Sequence[tuple[object, object]]],
    source: object,
    link_weight: Callable[[object], float],
    link_feasible: Callable[[object], bool],
) -> tuple[dict, dict]:
    """Single-source min-cost paths using only feasible links.

    Parameters
    ----------
    adjacency:
        Maps each node to ``(neighbor, link_key)`` pairs. ``link_key``
        identifies the undirected substrate link.
    source:
        Start node.
    link_weight:
        Returns a non-negative traversal cost for a link key.
    link_feasible:
        Returns ``False`` for links that must not be traversed (e.g., with
        insufficient residual capacity).

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the min cost from ``source``; ``parent[v]`` is the
        ``(predecessor, link_key)`` pair on an optimal path. Unreachable
        nodes are absent from both maps.
    """
    dist: dict = {source: 0.0}
    parent: dict = {}
    heap: list[tuple[float, int, object]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker so heap never compares node objects
    visited: set = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, link in adjacency[node]:
            if neighbor in visited or not link_feasible(link):
                continue
            candidate = d + link_weight(link)
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                parent[neighbor] = (node, link)
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return dist, parent


def indexed_capacity_dijkstra(
    adj: Sequence[Sequence[tuple[int, int]]],
    link_costs: Sequence[float],
    source: int,
    load: float,
    feasible: Sequence[bool],
) -> tuple[list[int], list[int], list[int], list[float]]:
    """Integer-indexed twin of :func:`capacity_constrained_dijkstra`.

    Operates on a :class:`~repro.substrate.network.SubstrateIndex`-style
    adjacency (per-node ``(neighbor_idx, link_idx)`` pairs, in the same
    per-node order as the dict adjacency), with traversal weight
    ``load × link_costs[link]`` and a precomputed per-link feasibility
    sequence. The relaxation sequence, heap tie-breaking counter and
    floating-point accumulation mirror the dict version exactly, so for
    the same inputs both produce bit-identical distances and the same
    shortest-path tree.

    Returns
    -------
    (order, parent_node, parent_link, dist):
        ``order`` lists settled nodes in pop order (``order[0] ==
        source``; parents always precede children). ``parent_node[v]`` /
        ``parent_link[v]`` are ``-1`` for the source and unreached nodes;
        ``dist[v]`` is ``math.inf`` for unreached nodes.
    """
    num_nodes = len(adj)
    dist: list[float] = [float("inf")] * num_nodes
    dist[source] = 0.0
    parent_node = [-1] * num_nodes
    parent_link = [-1] * num_nodes
    visited = [False] * num_nodes
    order: list[int] = []
    heap: list[tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker, mirroring capacity_constrained_dijkstra
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, _, node = pop(heap)
        if visited[node]:
            continue
        visited[node] = True
        order.append(node)
        for neighbor, link in adj[node]:
            if visited[neighbor] or not feasible[link]:
                continue
            candidate = d + load * link_costs[link]
            if candidate < dist[neighbor]:
                dist[neighbor] = candidate
                parent_node[neighbor] = node
                parent_link[neighbor] = link
                push(heap, (candidate, counter, neighbor))
                counter += 1
    return order, parent_node, parent_link, dist


def path_links(parent: Mapping, source: object, target: object) -> list | None:
    """Reconstruct the list of link keys from ``source`` to ``target``.

    Returns ``None`` when ``target`` was not reached. The path for
    ``target == source`` is the empty list.
    """
    if target == source:
        return []
    if target not in parent:
        return None
    links = []
    node = target
    while node != source:
        node, link = parent[node]
        links.append(link)
    links.reverse()
    return links


def path_cost(links: Sequence, link_weight: Callable[[object], float]) -> float:
    """Total traversal cost of a link sequence."""
    return sum(link_weight(link) for link in links)
