"""Shared low-level utilities: seeding and shortest-path helpers."""

from repro.utils.rng import child_rng, make_rng, spawn_rngs
from repro.utils.paths import (
    capacity_constrained_dijkstra,
    path_links,
    path_cost,
)

__all__ = [
    "make_rng",
    "child_rng",
    "spawn_rngs",
    "capacity_constrained_dijkstra",
    "path_links",
    "path_cost",
]
