"""Shared low-level utilities: seeding, filesystem roots, path helpers."""

from repro.utils.paths import (
    capacity_constrained_dijkstra,
    data_root,
    default_cache_root,
    path_cost,
    path_links,
)
from repro.utils.rng import child_rng, make_rng, spawn_rngs

__all__ = [
    "make_rng",
    "child_rng",
    "spawn_rngs",
    "capacity_constrained_dijkstra",
    "data_root",
    "default_cache_root",
    "path_links",
    "path_cost",
]
