"""Deterministic random-number-generator plumbing.

All stochastic components of the library draw from explicit
:class:`numpy.random.Generator` instances. Experiments construct one root
generator from an integer seed and derive independent child streams with
:func:`child_rng` / :func:`spawn_rngs`, so that changing the number of
consumers of one stream never perturbs another (a common source of
irreproducibility in simulation studies).
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a root generator from an integer seed.

    ``None`` produces an OS-entropy-seeded generator; experiments should
    always pass an explicit seed.
    """
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child generator keyed by ``keys``.

    The same parent seed and the same key sequence always yield the same
    child stream, regardless of how many other children are derived or in
    what order. String keys are hashed stably (FNV-1a) so call sites can
    use readable labels such as ``child_rng(rng, "arrivals", node_id)``.
    """
    material = tuple(
        _fnv1a(key) if isinstance(key, str) else int(key) & 0xFFFFFFFF
        for key in keys
    )
    seed_seq = np.random.SeedSequence(
        entropy=_root_entropy(rng), spawn_key=material
    )
    return np.random.default_rng(seed_seq)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` mutually independent child generators."""
    return [child_rng(rng, i) for i in range(count)]


def _root_entropy(rng: np.random.Generator) -> int:
    """Extract the entropy of a generator's seed sequence.

    Falls back to the private attribute on older numpy versions where
    ``BitGenerator.seed_seq`` is not yet public.
    """
    bit_gen = rng.bit_generator
    seed_seq = getattr(bit_gen, "seed_seq", None)
    if seed_seq is None:  # numpy < 1.25
        seed_seq = bit_gen._seed_seq
    entropy = seed_seq.entropy
    if entropy is None:
        return 0
    return entropy


def _fnv1a(text: str) -> int:
    """Stable 32-bit FNV-1a hash (Python's ``hash`` is salted per process)."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value
