"""Declarative linear-programming layer on top of scipy's HiGHS solver.

The paper solves PLAN-VNE and the SLOTOFF per-slot instances with CPLEX.
CPLEX is proprietary; this package provides the same capability — build a
sparse LP from named variables and linear constraints, solve it, and read
back variable values — using :func:`scipy.optimize.linprog` (HiGHS backend).
"""

from repro.lp.model import ConstraintSense, LinearProgram, LPSolution
from repro.lp.solver import solve_lp

__all__ = ["LinearProgram", "LPSolution", "ConstraintSense", "solve_lp"]
