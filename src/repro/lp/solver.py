"""Solve compiled LPs with scipy's HiGHS backend.

This module is the single point of contact with scipy so the rest of the
library is solver-agnostic: swapping in another backend only requires
re-implementing :func:`solve_lp`.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.errors import InfeasibleError, LPError
from repro.lp.model import LinearProgram, LPSolution


def solve_lp(program: LinearProgram) -> LPSolution:
    """Minimize ``program``'s objective; raise on infeasibility.

    Raises
    ------
    InfeasibleError
        If HiGHS reports the instance infeasible.
    LPError
        For unbounded instances or other solver failures.
    """
    compiled = program.compile()
    n = compiled.num_variables
    if n == 0:
        return LPSolution(program=program, objective=0.0, values=np.empty(0))

    def to_csr(triplets, num_rows):
        data, rows, cols = triplets
        if num_rows == 0:
            return None
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(num_rows, n)
        )

    a_ub = to_csr(compiled.ub_triplets, len(compiled.ub_rhs))
    a_eq = to_csr(compiled.eq_triplets, len(compiled.eq_rhs))
    bounds = np.column_stack([compiled.lower, compiled.upper])

    result = linprog(
        c=compiled.objective,
        A_ub=a_ub,
        b_ub=compiled.ub_rhs if a_ub is not None else None,
        A_eq=a_eq,
        b_eq=compiled.eq_rhs if a_eq is not None else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        raise InfeasibleError(f"LP {program.name!r} is infeasible")
    if result.status != 0:
        raise LPError(
            f"LP {program.name!r} failed: status={result.status} ({result.message})"
        )
    return LPSolution(
        program=program, objective=float(result.fun), values=result.x
    )
