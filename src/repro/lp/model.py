"""In-memory LP model: variables, linear constraints, minimization objective.

The model is intentionally small: the formulations in this library (PLAN-VNE
and its per-slot SLOTOFF variant) only need bounded continuous variables,
``<=`` / ``>=`` / ``==`` row constraints, and a linear objective. Rows are
stored in COO-triplet form so compilation to scipy sparse matrices is a
single pass.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LPError


class ConstraintSense(enum.Enum):
    """Row sense of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass
class _Row:
    """One constraint row in triplet form."""

    variables: list[int]
    coefficients: list[float]
    sense: ConstraintSense
    rhs: float
    name: str


class LinearProgram:
    """A minimization LP under construction.

    Variables are identified by the integer index returned from
    :meth:`add_variable`; an optional string name enables lookup by name
    (used heavily by tests).
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._objective: list[float] = []
        self._names: list[str] = []
        self._by_name: dict[str, int] = {}
        self._rows: list[_Row] = []

    # -- variables ---------------------------------------------------------

    def add_variable(
        self,
        name: str = "",
        lower: float = 0.0,
        upper: float = math.inf,
        objective: float = 0.0,
    ) -> int:
        """Add a continuous variable and return its index."""
        if lower > upper:
            raise LPError(
                f"variable {name!r}: lower bound {lower} exceeds upper {upper}"
            )
        index = len(self._lower)
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._objective.append(float(objective))
        self._names.append(name)
        if name:
            if name in self._by_name:
                raise LPError(f"duplicate variable name {name!r}")
            self._by_name[name] = index
        return index

    def variable_index(self, name: str) -> int:
        """Look up a variable index by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise LPError(f"unknown variable {name!r}") from None

    def objective_coefficient(self, variable: int) -> float:
        """Current objective coefficient of a variable."""
        return self._objective[variable]

    def set_objective(self, variable: int, coefficient: float) -> None:
        """Set (overwrite) a variable's objective coefficient."""
        self._objective[variable] = float(coefficient)

    def add_objective(self, variable: int, coefficient: float) -> None:
        """Accumulate into a variable's objective coefficient."""
        self._objective[variable] += float(coefficient)

    @property
    def num_variables(self) -> int:
        return len(self._lower)

    @property
    def num_constraints(self) -> int:
        return len(self._rows)

    # -- constraints -------------------------------------------------------

    def add_constraint(
        self,
        terms: dict[int, float] | list[tuple[int, float]],
        sense: ConstraintSense,
        rhs: float,
        name: str = "",
    ) -> int:
        """Add a row ``sum(coef * var) <sense> rhs``; returns the row index.

        ``terms`` may repeat a variable; repeated coefficients accumulate.
        """
        pairs = terms.items() if isinstance(terms, dict) else terms
        merged: dict[int, float] = {}
        merged_get = merged.get
        num_variables = len(self._lower)
        for variable, coefficient in pairs:
            if not 0 <= variable < num_variables:
                raise LPError(f"constraint {name!r}: unknown variable {variable}")
            merged[variable] = merged_get(variable, 0.0) + float(coefficient)
        row = _Row(
            variables=list(merged.keys()),
            coefficients=list(merged.values()),
            sense=sense,
            rhs=float(rhs),
            name=name,
        )
        self._rows.append(row)
        return len(self._rows) - 1

    # -- compilation -------------------------------------------------------

    def compile(self) -> "CompiledLP":
        """Compile to the arrays scipy's ``linprog`` expects."""
        ub_rows: list[_Row] = []
        eq_rows: list[_Row] = []
        for row in self._rows:
            if row.sense is ConstraintSense.EQ:
                eq_rows.append(row)
            else:
                ub_rows.append(row)

        def triplets(rows: list[_Row], flip_ge: bool):
            data: list[float] = []
            row_idx: list[int] = []
            col_idx: list[int] = []
            rhs = np.empty(len(rows))
            for i, row in enumerate(rows):
                sign = 1.0
                if flip_ge and row.sense is ConstraintSense.GE:
                    sign = -1.0
                rhs[i] = sign * row.rhs
                for variable, coefficient in zip(row.variables, row.coefficients):
                    data.append(sign * coefficient)
                    row_idx.append(i)
                    col_idx.append(variable)
            return data, row_idx, col_idx, rhs

        ub = triplets(ub_rows, flip_ge=True)
        eq = triplets(eq_rows, flip_ge=False)
        return CompiledLP(
            objective=np.asarray(self._objective),
            lower=np.asarray(self._lower),
            upper=np.asarray(self._upper),
            ub_triplets=ub[:3],
            ub_rhs=ub[3],
            eq_triplets=eq[:3],
            eq_rhs=eq[3],
            num_variables=self.num_variables,
        )


@dataclass
class CompiledLP:
    """Sparse-triplet form of a :class:`LinearProgram`, ready for scipy."""

    objective: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    ub_triplets: tuple[list[float], list[int], list[int]]
    ub_rhs: np.ndarray
    eq_triplets: tuple[list[float], list[int], list[int]]
    eq_rhs: np.ndarray
    num_variables: int


@dataclass
class LPSolution:
    """Optimal solution of an LP.

    ``values`` is indexed by variable index; :meth:`value` accepts either an
    index or a variable name (resolved through the originating program).
    """

    program: LinearProgram
    objective: float
    values: np.ndarray
    status: str = "optimal"
    _residual_cache: dict = field(default_factory=dict, repr=False)

    def value(self, variable: int | str) -> float:
        if isinstance(variable, str):
            variable = self.program.variable_index(variable)
        return float(self.values[variable])
