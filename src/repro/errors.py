"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LPError(ReproError):
    """Raised when building or solving a linear program fails."""


class InfeasibleError(LPError):
    """Raised when an LP instance is reported infeasible by the solver."""


class TopologyError(ReproError):
    """Raised for invalid substrate-topology construction arguments."""


class ApplicationError(ReproError):
    """Raised for invalid virtual-network (application) definitions."""


class WorkloadError(ReproError):
    """Raised for invalid workload/trace generation parameters."""


class PlanError(ReproError):
    """Raised when plan construction or decomposition fails."""


class SimulationError(ReproError):
    """Raised for inconsistent simulator state or configuration."""


class RegistryError(ReproError):
    """Raised for invalid component registrations (e.g. duplicate names)."""


class ShardError(ReproError):
    """Raised for invalid substrate partitions or sharded-service state."""
