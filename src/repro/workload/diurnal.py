"""Diurnal (time-of-day) workload: sinusoidally modulated arrivals.

Edge demand is famously diurnal; a single time-independent plan either
over-provisions the night or under-provisions the evening peak. This
workload generator exercises the time-windowed planning extension
(:mod:`repro.plan.windowed`): the aggregate arrival rate follows

    λ(t) = λ_mean · (1 + amplitude · sin(2π · t / period + phase))

with the usual Zipf ingress popularity and Table III demand/duration
distributions.
"""

from __future__ import annotations

import numpy as np

from repro.apps.application import Application
from repro.errors import WorkloadError
from repro.registry import register_trace
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import child_rng
from repro.workload.popularity import assign_node_popularity
from repro.workload.request import Request
from repro.workload.trace import Trace, TraceConfig, _draw_requests_for_slot


def diurnal_rates(
    num_slots: int,
    mean_rate: float,
    amplitude: float = 0.6,
    period: int = 200,
    phase: float = 0.0,
) -> np.ndarray:
    """Per-slot arrival rates of the sinusoidal day/night cycle."""
    if not 0 <= amplitude < 1:
        raise WorkloadError("amplitude must be in [0, 1)")
    if period < 2:
        raise WorkloadError("period must span at least two slots")
    t = np.arange(num_slots)
    return mean_rate * (
        1.0 + amplitude * np.sin(2.0 * np.pi * t / period + phase)
    )


@register_trace(
    "diurnal",
    description="sinusoidal day/night arrival cycle (windowed-planning study)",
)
def generate_diurnal_trace(
    substrate: SubstrateNetwork,
    apps: list[Application],
    config: TraceConfig,
    rng: np.random.Generator,
    amplitude: float = 0.6,
    period: int | None = None,
    phase: float = 0.0,
) -> Trace:
    """A trace whose aggregate rate follows a day/night cycle.

    ``period`` defaults to one-third of the history phase, so the planning
    history observes several full cycles and the online phase starts at
    the same point in the cycle it would historically (making windowed
    plans directly transferable).
    """
    edge_nodes = substrate.edge_nodes
    popularity = assign_node_popularity(
        edge_nodes, child_rng(rng, "popularity"), config.zipf_alpha
    )
    probabilities = np.array([popularity[v] for v in edge_nodes])
    if period is None:
        period = max(2, config.history_slots // 3)
    rates = diurnal_rates(
        config.total_slots,
        config.arrivals_per_node * len(edge_nodes),
        amplitude=amplitude,
        period=period,
        phase=phase,
    )
    counts = child_rng(rng, "diurnal-arrivals").poisson(rates)
    body_rng = child_rng(rng, "diurnal-requests")
    requests: list[Request] = []
    for t in range(config.total_slots):
        requests.extend(
            _draw_requests_for_slot(
                t, int(counts[t]), len(requests), edge_nodes,
                probabilities, len(apps), config, body_rng,
            )
        )
    return Trace(config=config, requests=requests, node_popularity=popularity)
