"""Trace assembly: full request streams for the planning + online phases.

A trace covers ``history_slots + online_slots`` consecutive slots; the
prefix forms R_HIST (input to time-aggregation and PLAN-VNE) and the suffix
is the online workload OLIVE processes. Both phases are drawn from the same
process unless an experiment deliberately breaks that assumption (Fig. 13,
Fig. 14 studies — see :mod:`repro.experiments.figures`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.application import Application
from repro.errors import WorkloadError
from repro.registry import register_trace
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import child_rng
from repro.workload.arrivals import MMPPProcess
from repro.workload.popularity import assign_node_popularity
from repro.workload.request import Request


@dataclass
class TraceConfig:
    """Knobs of the Table III workload.

    ``demand_mean``/``demand_std`` default to the paper's N(10, 4); use
    :func:`demand_mean_for_utilization` to retarget the mean (the paper
    sweeps 6–14 to obtain 60–140 % edge utilization).
    """

    history_slots: int = 5400
    online_slots: int = 600
    arrivals_per_node: float = 10.0
    demand_mean: float = 10.0
    demand_std: float = 4.0
    duration_mean: float = 10.0
    zipf_alpha: float = 1.0
    mmpp_burstiness: float = 0.5
    mmpp_switch_probability: float = 0.1
    #: Demands below this floor are clamped (N(μ, σ) has a negative tail).
    demand_floor: float = 0.1

    def __post_init__(self) -> None:
        if self.history_slots < 1 or self.online_slots < 1:
            raise WorkloadError("trace needs at least one slot in each phase")
        if self.demand_mean <= 0 or self.duration_mean <= 0:
            raise WorkloadError("demand and duration means must be positive")

    @property
    def total_slots(self) -> int:
        return self.history_slots + self.online_slots


@dataclass
class Trace:
    """A generated request stream, split into history and online phases."""

    config: TraceConfig
    requests: list[Request]
    node_popularity: dict[str, float]
    _split_cache: tuple[list[Request], list[Request]] | None = field(
        default=None, repr=False
    )

    def history_requests(self) -> list[Request]:
        """Requests arriving during the planning (history) phase."""
        return self._split()[0]

    def online_requests(self) -> list[Request]:
        """Requests arriving during the online phase, re-based to slot 0."""
        return self._split()[1]

    def _split(self) -> tuple[list[Request], list[Request]]:
        if self._split_cache is None:
            cut = self.config.history_slots
            history = [r for r in self.requests if r.arrival < cut]
            # Re-basing preserves every invariant of the source request.
            online = [
                Request.trusted(
                    arrival=r.arrival - cut,
                    id=r.id,
                    app_index=r.app_index,
                    ingress=r.ingress,
                    demand=r.demand,
                    duration=r.duration,
                )
                for r in self.requests
                if r.arrival >= cut
            ]
            self._split_cache = (history, online)
        return self._split_cache

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def mean_rate(self) -> float:
        """Mean arrivals per slot over the whole trace."""
        return len(self.requests) / self.config.total_slots


def mean_application_footprint(apps: list[Application]) -> float:
    """Mean Σβ_i (node footprint per unit demand) over an application set."""
    if not apps:
        raise WorkloadError("empty application set")
    return float(np.mean([app.total_node_size() for app in apps]))


def demand_mean_for_utilization(
    utilization: float,
    substrate: SubstrateNetwork,
    apps: list[Application],
    arrivals_per_node: float = 10.0,
    duration_mean: float = 10.0,
) -> float:
    """Demand mean that yields the requested edge utilization.

    The paper defines 100 % utilization as: mean total size of active
    requests = total capacity of all edge datacenters. By Little's law the
    expected number of active requests is (λ · #edge_nodes) · E[T]; each
    consumes E[d] · E[Σβ] node capacity, so::

        E[d] = utilization · cap_edge / (λ · n_edge · E[T] · E[Σβ])
    """
    if utilization <= 0:
        raise WorkloadError("utilization must be positive")
    num_edge = len(substrate.edge_nodes)
    if num_edge == 0:
        raise WorkloadError(f"substrate {substrate.name!r} has no edge nodes")
    active = arrivals_per_node * num_edge * duration_mean
    footprint = mean_application_footprint(apps)
    return utilization * substrate.total_edge_capacity() / (active * footprint)


def _draw_requests_for_slot(
    t: int,
    count: int,
    next_id: int,
    nodes: list[str],
    probabilities: np.ndarray,
    num_apps: int,
    config: TraceConfig,
    rng: np.random.Generator,
) -> list[Request]:
    """Materialize ``count`` requests arriving in slot ``t``."""
    if count == 0:
        return []
    node_idx = rng.choice(len(nodes), size=count, p=probabilities)
    app_idx = rng.integers(0, num_apps, size=count)
    demands = np.maximum(
        config.demand_floor,
        rng.normal(config.demand_mean, config.demand_std, size=count),
    )
    durations = np.maximum(
        1, np.ceil(rng.exponential(config.duration_mean, size=count))
    ).astype(int)
    # The clamps above guarantee the Request invariants (demand ≥ floor,
    # duration ≥ 1), so the bulk path skips per-object validation.
    make = Request.trusted if config.demand_floor > 0 else Request
    return [
        make(
            arrival=t,
            id=next_id + i,
            app_index=app,
            ingress=nodes[node],
            demand=demand,
            duration=duration,
        )
        for i, (app, node, demand, duration) in enumerate(
            zip(
                app_idx.tolist(), node_idx.tolist(),
                demands.tolist(), durations.tolist(),
            )
        )
    ]


@register_trace("mmpp", description="bursty MMPP arrivals (Table III default)")
def generate_mmpp_trace(
    substrate: SubstrateNetwork,
    apps: list[Application],
    config: TraceConfig,
    rng: np.random.Generator,
) -> Trace:
    """The paper's first trace: bursty MMPP arrivals, Zipf edge ingress.

    A single modulating chain drives the aggregate rate (bursts are
    network-wide, as in vehicular/edge measurement studies); each arrival's
    ingress is drawn from the Zipf popularity map.
    """
    edge_nodes = substrate.edge_nodes
    popularity = assign_node_popularity(
        edge_nodes, child_rng(rng, "popularity"), config.zipf_alpha
    )
    probabilities = np.array([popularity[v] for v in edge_nodes])
    process = MMPPProcess(
        mean_rate=config.arrivals_per_node * len(edge_nodes),
        burstiness=config.mmpp_burstiness,
        switch_probability=config.mmpp_switch_probability,
    )
    counts = process.counts(config.total_slots, child_rng(rng, "mmpp"))
    body_rng = child_rng(rng, "requests")
    requests: list[Request] = []
    for t in range(config.total_slots):
        requests.extend(
            _draw_requests_for_slot(
                t, int(counts[t]), len(requests), edge_nodes,
                probabilities, len(apps), config, body_rng,
            )
        )
    return Trace(config=config, requests=requests, node_popularity=popularity)


@register_trace(
    "caida", description="heavy-tailed CAIDA-like source aggregation (Fig. 15)"
)
def generate_caida_like_trace(
    substrate: SubstrateNetwork,
    apps: list[Application],
    config: TraceConfig,
    rng: np.random.Generator,
    num_sources: int = 500,
    pareto_shape: float = 1.5,
) -> Trace:
    """CAIDA-substitute trace: heavy-tailed source aggregation.

    The paper aggregates requests of the 2019 Equinix-NewYork CAIDA trace
    by IP source and randomly assigns the groups to datacenters. We model
    the same operative structure: ``num_sources`` traffic sources with
    Pareto-distributed weights (heavy-tailed, like per-IP traffic volumes),
    each statically mapped to a random edge datacenter; arrivals are
    Poisson in aggregate and attributed to sources by weight.
    """
    if num_sources < 1:
        raise WorkloadError("need at least one traffic source")
    edge_nodes = substrate.edge_nodes
    setup_rng = child_rng(rng, "caida-setup")
    weights = setup_rng.pareto(pareto_shape, size=num_sources) + 1.0
    weights /= weights.sum()
    source_node = setup_rng.integers(0, len(edge_nodes), size=num_sources)

    # Collapse sources into effective per-node probabilities.
    node_prob = np.zeros(len(edge_nodes))
    for s in range(num_sources):
        node_prob[source_node[s]] += weights[s]
    popularity = {
        edge_nodes[i]: float(node_prob[i]) for i in range(len(edge_nodes))
    }

    rate = config.arrivals_per_node * len(edge_nodes)
    counts = child_rng(rng, "caida-arrivals").poisson(
        rate, size=config.total_slots
    )
    body_rng = child_rng(rng, "caida-requests")
    requests: list[Request] = []
    for t in range(config.total_slots):
        requests.extend(
            _draw_requests_for_slot(
                t, int(counts[t]), len(requests), edge_nodes,
                node_prob, len(apps), config, body_rng,
            )
        )
    return Trace(config=config, requests=requests, node_popularity=popularity)
