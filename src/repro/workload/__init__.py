"""Workload generation: requests, arrival processes, and traces.

Implements the paper's experimental workload (Sec. IV-A, Table III):
requests originate exclusively from edge datacenters with Zipf(α=1) node
popularity, demands are N(10, 4²) (scaled to hit a target edge utilization),
durations are exponential with mean 10 slots, and arrivals follow either a
Markov-modulated Poisson process (bursty synthetic trace) or a CAIDA-like
heavy-tailed source model.
"""

from repro.workload.adversarial import (
    generate_capacity_probe_trace,
    generate_ingress_hotspot_trace,
    generate_pareto_burst_trace,
    hotspot_probabilities,
    pareto_burst_counts,
)
from repro.workload.arrivals import MMPPProcess, PoissonProcess
from repro.workload.diurnal import diurnal_rates, generate_diurnal_trace
from repro.workload.popularity import assign_node_popularity, zipf_weights
from repro.workload.request import Request
from repro.workload.trace import (
    Trace,
    TraceConfig,
    demand_mean_for_utilization,
    generate_caida_like_trace,
    generate_mmpp_trace,
    mean_application_footprint,
)

__all__ = [
    "Request",
    "MMPPProcess",
    "PoissonProcess",
    "zipf_weights",
    "assign_node_popularity",
    "Trace",
    "TraceConfig",
    "generate_mmpp_trace",
    "generate_caida_like_trace",
    "demand_mean_for_utilization",
    "mean_application_footprint",
    "diurnal_rates",
    "generate_diurnal_trace",
    "generate_pareto_burst_trace",
    "generate_ingress_hotspot_trace",
    "generate_capacity_probe_trace",
    "pareto_burst_counts",
    "hotspot_probabilities",
]
