"""Zipf node popularity (Table III: node popularity ~ Zipf(α = 1)).

Requests originate exclusively from edge datacenters; the share of traffic
each edge datacenter generates follows a Zipf law over a random rank
assignment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def zipf_weights(count: int, alpha: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights 1/rank^alpha for ranks 1..count."""
    if count < 1:
        raise WorkloadError("need at least one node for Zipf weights")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def assign_node_popularity(
    nodes: list[str], rng: np.random.Generator, alpha: float = 1.0
) -> dict[str, float]:
    """Map each node to its traffic share under a random Zipf rank order.

    The permutation (which node is most popular) is drawn from ``rng`` so
    different executions explore different spatial skews, as in the paper's
    30-repetition methodology.
    """
    weights = zipf_weights(len(nodes), alpha)
    order = rng.permutation(len(nodes))
    return {nodes[order[i]]: float(weights[i]) for i in range(len(nodes))}
