"""Adversarial and heavy-tailed workloads: the scenario stress tier.

The Table III processes (:mod:`repro.workload.trace`) are *statistically
friendly*: arrivals are stationary, the online phase is drawn from the
same distribution the plan observed, and ingress popularity is fixed.
The generators here deliberately break each of those assumptions:

``pareto-burst``
    Heavy-tailed burst sizes — per-slot rates carry a Pareto
    multiplier, so rare slots bring order-of-magnitude arrival spikes
    (the flash-crowd statistics measured in CDN and edge traces).
``ingress-hotspot``
    Non-stationary ingress — arrivals concentrate on a small hotspot
    set of edge nodes, and the hotspot *rotates* between the history
    and online phases, so the PLAN-VNE patterns were fit to the wrong
    geography.
``capacity-probe``
    Bimodal demand — a stream of near-free probe requests interleaved
    with rare near-capacity, long-lived spikes, the classic pattern
    that defeats utilization-threshold admission heuristics.

All three reuse the Table III demand/duration machinery where they do
not deliberately distort it, so results stay comparable to the
baseline ``mmpp`` trace.
"""

from __future__ import annotations

import numpy as np

from repro.apps.application import Application
from repro.errors import WorkloadError
from repro.registry import register_trace
from repro.substrate.network import SubstrateNetwork
from repro.utils.rng import child_rng
from repro.workload.popularity import assign_node_popularity
from repro.workload.request import Request
from repro.workload.trace import Trace, TraceConfig, _draw_requests_for_slot


def pareto_burst_counts(
    num_slots: int,
    mean_rate: float,
    rng: np.random.Generator,
    shape: float = 2.5,
) -> np.ndarray:
    """Per-slot arrival counts with Pareto-modulated rates.

    Each slot's Poisson rate is ``mean_rate`` times a unit-mean Pareto
    multiplier with tail index ``shape``; smaller shapes give heavier
    burst tails. ``shape`` must exceed 1 so the multiplier has a finite
    mean (and the trace a well-defined offered load).
    """
    if shape <= 1.0:
        raise WorkloadError(
            f"pareto-burst shape must exceed 1 (finite mean), got {shape}"
        )
    # Lomax(shape) has mean 1/(shape-1); rescale to a unit-mean modifier.
    multipliers = rng.pareto(shape, size=num_slots) * (shape - 1.0)
    return rng.poisson(mean_rate * multipliers)


@register_trace(
    "pareto-burst",
    description="heavy-tailed Pareto burst arrivals (flash-crowd statistics)",
)
def generate_pareto_burst_trace(
    substrate: SubstrateNetwork,
    apps: list[Application],
    config: TraceConfig,
    rng: np.random.Generator,
    shape: float = 2.5,
) -> Trace:
    """Heavy-tailed bursts: Zipf ingress, Pareto-modulated slot rates."""
    edge_nodes = substrate.edge_nodes
    popularity = assign_node_popularity(
        edge_nodes, child_rng(rng, "popularity"), config.zipf_alpha
    )
    probabilities = np.array([popularity[v] for v in edge_nodes])
    counts = pareto_burst_counts(
        config.total_slots,
        config.arrivals_per_node * len(edge_nodes),
        child_rng(rng, "pareto-burst"),
        shape=shape,
    )
    body_rng = child_rng(rng, "pareto-requests")
    requests: list[Request] = []
    for t in range(config.total_slots):
        requests.extend(
            _draw_requests_for_slot(
                t, int(counts[t]), len(requests), edge_nodes,
                probabilities, len(apps), config, body_rng,
            )
        )
    return Trace(config=config, requests=requests, node_popularity=popularity)


def hotspot_probabilities(
    num_nodes: int,
    hotspot: np.ndarray,
    concentration: float,
) -> np.ndarray:
    """Ingress distribution putting ``concentration`` mass on the hotspot."""
    num_hot = len(hotspot)
    if not 0 < num_hot < num_nodes:
        raise WorkloadError(
            "hotspot must be a strict non-empty subset of the edge nodes"
        )
    probabilities = np.full(
        num_nodes, (1.0 - concentration) / (num_nodes - num_hot)
    )
    probabilities[hotspot] = concentration / num_hot
    return probabilities


@register_trace(
    "ingress-hotspot",
    description="rotating ingress hotspot — online geography defeats the plan",
)
def generate_ingress_hotspot_trace(
    substrate: SubstrateNetwork,
    apps: list[Application],
    config: TraceConfig,
    rng: np.random.Generator,
    hotspot_fraction: float = 0.1,
    concentration: float = 0.8,
) -> Trace:
    """Adversarial ingress: a rotating hotspot carries most arrivals.

    During the history phase ``concentration`` of the traffic enters
    through a ``hotspot_fraction`` subset of edge nodes; at the online
    boundary the hotspot jumps to a *disjoint* subset, so the plan's
    per-ingress patterns were fit against geography that no longer
    sends traffic. Aggregate rate stays plain Poisson — the adversary
    moves load, it does not add any.
    """
    if not 0 < hotspot_fraction <= 0.5:
        raise WorkloadError(
            f"hotspot_fraction must be in (0, 0.5], got {hotspot_fraction}"
        )
    if not 0 < concentration < 1:
        raise WorkloadError(
            f"concentration must be in (0, 1), got {concentration}"
        )
    edge_nodes = substrate.edge_nodes
    if len(edge_nodes) < 2:
        raise WorkloadError("ingress-hotspot needs at least two edge nodes")
    num_hot = max(1, int(round(hotspot_fraction * len(edge_nodes))))
    num_hot = min(num_hot, len(edge_nodes) // 2)
    order = child_rng(rng, "hotspot-sites").permutation(len(edge_nodes))
    history_prob = hotspot_probabilities(
        len(edge_nodes), order[:num_hot], concentration
    )
    online_prob = hotspot_probabilities(
        len(edge_nodes), order[num_hot: 2 * num_hot], concentration
    )
    counts = child_rng(rng, "hotspot-arrivals").poisson(
        config.arrivals_per_node * len(edge_nodes), size=config.total_slots
    )
    body_rng = child_rng(rng, "hotspot-requests")
    requests: list[Request] = []
    for t in range(config.total_slots):
        probabilities = (
            history_prob if t < config.history_slots else online_prob
        )
        requests.extend(
            _draw_requests_for_slot(
                t, int(counts[t]), len(requests), edge_nodes,
                probabilities, len(apps), config, body_rng,
            )
        )
    popularity = {
        edge_nodes[i]: float(history_prob[i]) for i in range(len(edge_nodes))
    }
    return Trace(config=config, requests=requests, node_popularity=popularity)


@register_trace(
    "capacity-probe",
    description="bimodal probe/spike demands that bait admission heuristics",
)
def generate_capacity_probe_trace(
    substrate: SubstrateNetwork,
    apps: list[Application],
    config: TraceConfig,
    rng: np.random.Generator,
    probe_fraction: float = 0.9,
    spike_multiplier: float = 8.0,
    spike_duration_multiplier: float = 4.0,
) -> Trace:
    """Capacity probing: floods of tiny requests hiding rare huge ones.

    ``probe_fraction`` of arrivals carry the minimum demand
    (``config.demand_floor``) and a one-slot duration — nearly free to
    admit, so greedy admission happily fills up on them. The remainder
    are spikes at ``spike_multiplier`` × the configured demand mean
    with ``spike_duration_multiplier`` × the mean duration: exactly the
    requests a capacity-commitment made to probes forces the embedder
    to reject.
    """
    if not 0 < probe_fraction < 1:
        raise WorkloadError(
            f"probe_fraction must be in (0, 1), got {probe_fraction}"
        )
    if spike_multiplier <= 1 or spike_duration_multiplier < 1:
        raise WorkloadError("spike multipliers must amplify, not shrink")
    edge_nodes = substrate.edge_nodes
    popularity = assign_node_popularity(
        edge_nodes, child_rng(rng, "popularity"), config.zipf_alpha
    )
    probabilities = np.array([popularity[v] for v in edge_nodes])
    counts = child_rng(rng, "probe-arrivals").poisson(
        config.arrivals_per_node * len(edge_nodes), size=config.total_slots
    )
    body_rng = child_rng(rng, "probe-requests")
    requests: list[Request] = []
    for t in range(config.total_slots):
        count = int(counts[t])
        if count == 0:
            continue
        node_idx = body_rng.choice(
            len(edge_nodes), size=count, p=probabilities
        )
        app_idx = body_rng.integers(0, len(apps), size=count)
        is_probe = body_rng.uniform(size=count) < probe_fraction
        demands = np.where(
            is_probe,
            config.demand_floor,
            np.maximum(
                config.demand_floor,
                body_rng.normal(
                    spike_multiplier * config.demand_mean,
                    config.demand_std,
                    size=count,
                ),
            ),
        )
        durations = np.where(
            is_probe,
            1,
            np.maximum(
                1,
                np.ceil(
                    body_rng.exponential(
                        spike_duration_multiplier * config.duration_mean,
                        size=count,
                    )
                ),
            ).astype(int),
        )
        next_id = len(requests)
        requests.extend(
            Request.trusted(
                arrival=t,
                id=next_id + i,
                app_index=app,
                ingress=edge_nodes[node],
                demand=demand,
                duration=duration,
            )
            for i, (app, node, demand, duration) in enumerate(
                zip(
                    app_idx.tolist(), node_idx.tolist(),
                    demands.tolist(), durations.tolist(),
                )
            )
        )
    return Trace(config=config, requests=requests, node_popularity=popularity)
