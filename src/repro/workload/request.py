"""The online embedding request (Table I)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Request:
    """One VN deployment request.

    Ordering is by ``(arrival, id)`` so a sorted request list is a valid
    ON-VNE processing order (distinct requests get distinct positions even
    within one time slot, per Fig. 2). The comparisons are hand-written
    on those two fields: ids are unique trace-wide, so this is the same
    total order the full field tuple would give, without building a
    six-field tuple (including a string) per comparison — request sorts
    and departure-registration insorts sit on the simulator's hot path.

    Attributes
    ----------
    arrival:
        Arrival time slot t(r).
    id:
        Unique, trace-wide identifier.
    app_index:
        Index of a(r) in the experiment's application list.
    ingress:
        Substrate node v(r) where the user θ resides.
    demand:
        Demand size d(r) > 0.
    duration:
        Active duration T(r) ≥ 1 slots; the request occupies slots
        ``t(r) ≤ t < t(r) + T(r)``. Known to algorithms only at departure,
        but carried on the object for simulator bookkeeping.
    """

    arrival: int
    id: int
    app_index: int
    ingress: str
    demand: float
    duration: int

    def __lt__(self, other: "Request") -> bool:
        if self.arrival != other.arrival:
            return self.arrival < other.arrival
        return self.id < other.id

    def __le__(self, other: "Request") -> bool:
        if self.arrival != other.arrival:
            return self.arrival < other.arrival
        return self.id <= other.id

    def __gt__(self, other: "Request") -> bool:
        return other.__lt__(self)

    def __ge__(self, other: "Request") -> bool:
        return other.__le__(self)

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise WorkloadError(f"request {self.id}: demand must be positive")
        if self.duration < 1:
            raise WorkloadError(f"request {self.id}: duration must be >= 1")
        if self.arrival < 0:
            raise WorkloadError(f"request {self.id}: negative arrival time")

    @classmethod
    def trusted(
        cls,
        arrival: int,
        id: int,
        app_index: int,
        ingress: str,
        demand: float,
        duration: int,
    ) -> "Request":
        """Construct without re-validating the invariants.

        The trace generators materialize hundreds of thousands of
        requests whose fields are guaranteed valid by construction
        (demands clamped to a positive floor, durations ceiled to ≥ 1);
        skipping ``__init__``/``__post_init__`` there saves a large slice
        of trace-assembly time. Callers must guarantee the class
        invariants themselves.
        """
        self = object.__new__(cls)
        fields = self.__dict__
        fields["arrival"] = arrival
        fields["id"] = id
        fields["app_index"] = app_index
        fields["ingress"] = ingress
        fields["demand"] = demand
        fields["duration"] = duration
        return self

    @property
    def departure(self) -> int:
        """First slot in which the request is no longer active."""
        return self.arrival + self.duration

    def active_at(self, t: int) -> bool:
        return self.arrival <= t < self.departure

    def class_key(self) -> tuple[int, str]:
        """The (application, ingress) aggregation class of this request."""
        return (self.app_index, self.ingress)
