"""Arrival processes: Poisson and Markov-modulated Poisson (MMPP).

The MMPP has two states — high (λ_h) and low (λ_l) — with a symmetric
per-slot switching probability. With symmetric switching the stationary
distribution is (1/2, 1/2), so choosing λ_h = (1 + b)·λ and
λ_l = (1 − b)·λ keeps the long-run mean at λ while producing the bursty
arrivals the evaluation relies on ([34], [35]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass
class PoissonProcess:
    """Memoryless arrivals: count per slot ~ Poisson(rate)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise WorkloadError("Poisson rate must be non-negative")

    def counts(self, num_slots: int, rng: np.random.Generator) -> np.ndarray:
        """Arrival counts for ``num_slots`` consecutive slots."""
        return rng.poisson(self.rate, size=num_slots)


@dataclass
class MMPPProcess:
    """Two-state Markov-modulated Poisson process.

    Attributes
    ----------
    mean_rate:
        Long-run mean arrivals per slot (λ).
    burstiness:
        b ∈ [0, 1): λ_h = (1+b)λ, λ_l = (1−b)λ.
    switch_probability:
        Per-slot probability of toggling between the high and low states.
    """

    mean_rate: float
    burstiness: float = 0.5
    switch_probability: float = 0.1

    def __post_init__(self) -> None:
        if self.mean_rate < 0:
            raise WorkloadError("MMPP mean rate must be non-negative")
        if not 0 <= self.burstiness < 1:
            raise WorkloadError("burstiness must be in [0, 1)")
        if not 0 < self.switch_probability <= 1:
            raise WorkloadError("switch probability must be in (0, 1]")

    @property
    def high_rate(self) -> float:
        return self.mean_rate * (1.0 + self.burstiness)

    @property
    def low_rate(self) -> float:
        return self.mean_rate * (1.0 - self.burstiness)

    def rates(self, num_slots: int, rng: np.random.Generator) -> np.ndarray:
        """Per-slot modulated rates, following the hidden Markov state."""
        switches = rng.random(num_slots) < self.switch_probability
        # state[t] toggles whenever switches[t] fires; start uniformly.
        state = (int(rng.integers(0, 2)) + np.cumsum(switches)) % 2
        return np.where(state == 1, self.high_rate, self.low_rate)

    def counts(self, num_slots: int, rng: np.random.Generator) -> np.ndarray:
        """Arrival counts per slot under the modulated rates."""
        return rng.poisson(self.rates(num_slots, rng))
