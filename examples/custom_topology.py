#!/usr/bin/env python3
"""Bring your own substrate, applications, and placement policy.

Two routes to the same goal:

1. **Registry route** — decorate your builders with
   ``@register_topology`` / ``@register_efficiency`` /
   ``@register_app_mix`` and every string-keyed entry point (the
   ``Experiment`` facade, the CLI, ``build_scenario``) accepts them like
   built-ins. No core file is touched.
2. **Manual route** — assemble everything by hand: a synthetic history,
   a PLAN-VNE plan, and the OLIVE loop, with no experiment config
   involved.

Run:  python examples/custom_topology.py [--seed N]
"""

import argparse

from repro import (
    Experiment,
    ExperimentConfig,
    OliveAlgorithm,
    Request,
    compute_plan,
    register_app_mix,
    register_efficiency,
    register_topology,
    simulate,
)
from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.apps.efficiency import EfficiencyModel
from repro.sim.metrics import rejection_rate
from repro.stats.aggregate import build_aggregate_demand
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork
from repro.substrate.tiers import Tier
from repro.utils.rng import make_rng


@register_topology("metro", description="hand-built 5-node metro network")
def build_metro_network() -> SubstrateNetwork:
    """Three street cabinets, one metro PoP, one regional datacenter."""
    nodes = {
        "cabinet-1": NodeAttrs(Tier.EDGE, capacity=5_000, cost=40.0),
        "cabinet-2": NodeAttrs(Tier.EDGE, capacity=5_000, cost=45.0),
        "cabinet-3": NodeAttrs(Tier.EDGE, capacity=5_000, cost=55.0),
        "metro-pop": NodeAttrs(Tier.TRANSPORT, capacity=20_000, cost=8.0),
        "regional-dc": NodeAttrs(Tier.CORE, capacity=80_000, cost=1.0),
    }
    links = {
        ("cabinet-1", "metro-pop"): LinkAttrs(Tier.EDGE, 3_000, 1.0),
        ("cabinet-2", "metro-pop"): LinkAttrs(Tier.EDGE, 3_000, 1.0),
        ("cabinet-3", "metro-pop"): LinkAttrs(Tier.EDGE, 3_000, 1.0),
        ("metro-pop", "regional-dc"): LinkAttrs(Tier.TRANSPORT, 9_000, 1.0),
    }
    return SubstrateNetwork(name="metro", nodes=nodes, links=links)


def build_ar_application() -> Application:
    """An augmented-reality pipeline: θ → tracker → renderer."""
    return Application(
        name="ar-pipeline",
        vnfs=(
            VNF(ROOT_ID, 0.0, VNFKind.ROOT),
            VNF(1, 12.0),  # pose tracker
            VNF(2, 40.0),  # renderer
        ),
        links=(
            VirtualLink(ROOT_ID, 1, 8.0),  # camera uplink
            VirtualLink(1, 2, 3.0),  # pose stream (small)
        ),
    )


@register_efficiency(
    "energy", description="η > 1 on power-constrained street cabinets"
)
class EnergyAwareEfficiency(EfficiencyModel):
    """η > 1 on street cabinets: constrained power makes compute dearer."""

    def node_eta(self, vnf, node):
        if vnf.kind is VNFKind.ROOT:
            return 1.0
        return 1.3 if node.tier is Tier.EDGE else 1.0

    def link_eta(self, vlink, link):
        return 1.0


@register_app_mix("ar", description="a single AR pipeline application")
def ar_mix(rng) -> list[Application]:
    """The registered mix: one AR pipeline (rng unused — fixed sizes)."""
    return [build_ar_application()]


def synthetic_history(rng, num_slots: int) -> list[Request]:
    """Poisson arrivals at the three cabinets, exponential holding times."""
    requests = []
    for t in range(num_slots):
        for node_index in range(3):
            for _ in range(rng.poisson(1.2)):
                requests.append(
                    Request(
                        arrival=t,
                        id=len(requests),
                        app_index=0,
                        ingress=f"cabinet-{node_index + 1}",
                        demand=max(0.2, rng.normal(1.0, 0.3)),
                        duration=max(1, int(rng.exponential(6.0))),
                    )
                )
    return requests


def main(seed: int = 2024) -> None:
    # -- route 1: registered components through the facade -----------------
    config = ExperimentConfig.test(
        topology="metro", app_mix="ar", efficiency="energy",
        utilization=1.2, base_seed=seed,
    )
    result = Experiment(config).algorithms("OLIVE", "QUICKG").run()
    print("registry route — custom topology/mix/efficiency via Experiment:")
    print(result.table("rejection_rate"))

    # -- route 2: everything by hand ---------------------------------------
    print("\nmanual route — hand-built history and plan:")
    substrate = build_metro_network()
    app = build_ar_application()
    efficiency = EnergyAwareEfficiency()
    rng = make_rng(seed)

    history = synthetic_history(rng, num_slots=300)
    aggregates = build_aggregate_demand(history, 300, alpha=80.0, rng=rng)
    print(f"history: {len(history)} requests → "
          f"{len(aggregates)} aggregate classes")
    for aggregate in aggregates:
        print(f"  {aggregate.ingress}: expected demand "
              f"{aggregate.demand:.1f}")

    plan = compute_plan(substrate, [app], aggregates, efficiency)
    print(f"\nplan: guaranteed {plan.total_guaranteed_demand():.1f} "
          f"demand units, planned rejection "
          f"{plan.mean_rejected_fraction():.1%}")
    for key, class_plan in sorted(plan.classes.items()):
        hosts = {
            pattern.node_map[2] for pattern in class_plan.patterns
        }
        print(f"  {key[1]}: renderer planned on {sorted(hosts)}")

    online = synthetic_history(make_rng(seed + 1), num_slots=100)
    olive = OliveAlgorithm(substrate, [app], plan, efficiency)
    result = simulate(olive, online, 100)
    print(f"\nOLIVE served {len(online)} online requests, "
          f"rejection rate {rejection_rate(result):.2%}")
    planned = sum(d.planned for d in result.decisions)
    borrowed = sum(d.borrowed for d in result.decisions)
    greedy = sum(d.via_greedy for d in result.decisions)
    print(f"planned={planned}  borrowed={borrowed}  greedy={greedy}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2024,
                        help="history seed; the online trace uses seed+1")
    main(seed=parser.parse_args().seed)
