#!/usr/bin/env python3
"""Edge-provider capacity planning walk-through (the paper's Sec. III flow).

An edge provider on the Iris topology observes a request history, builds
the aggregated expected demand (bootstrap P̂80 per application × ingress
class), solves PLAN-VNE for a globally optimized embedding plan, verifies
that the online demand statistically conforms to the history, and then
watches OLIVE serve a bursty MMPP workload — including requests served
beyond their class guarantee by "borrowing" (and occasionally losing)
capacity from underutilized classes.

Run:  python examples/edge_provider_planning.py [--seed N]
"""

import argparse

from repro import ExperimentConfig, algorithm_registry, build_scenario, simulate
from repro.sim.metrics import NodeTimeline, rejection_rate
from repro.stats.aggregate import class_demand_series
from repro.stats.bootstrap import bootstrap_percentile, demand_conforms
from repro.utils.rng import make_rng


def main(seed: int = 7) -> None:
    config = ExperimentConfig.bench(
        topology="Iris", utilization=1.0, repetitions=1
    )
    scenario = build_scenario(config, seed=seed)

    # -- 1. what did the history look like? ------------------------------
    history = scenario.trace.history_requests()
    series = class_demand_series(history, config.history_slots)
    print(f"history: {len(history)} requests, "
          f"{len(series)} (application, ingress) classes")
    busiest = max(series, key=lambda k: series[k].sum())
    estimate = bootstrap_percentile(
        series[busiest], alpha=80.0, rng=make_rng(0)
    )
    print(f"busiest class {busiest}: P80 demand ≈ {estimate.estimate:.1f} "
          f"(95% CI [{estimate.ci_low:.1f}, {estimate.ci_high:.1f}])")

    # -- 2. the plan ------------------------------------------------------
    plan = scenario.plan
    print(f"\nplan: {plan.num_patterns} patterns across "
          f"{len(plan.classes)} classes")
    print(f"guaranteed demand {plan.total_guaranteed_demand():.0f} units, "
          f"planned rejection {plan.mean_rejected_fraction():.1%}")

    # -- 3. does the online demand conform to expectations? ---------------
    online_series = class_demand_series(
        scenario.trace.online_requests(), config.online_slots
    )
    if busiest in online_series:
        ok = demand_conforms(
            online_series[busiest], series[busiest], rng=make_rng(1)
        )
        print(f"online demand conforms to history for {busiest}: {ok}")

    # -- 4. run OLIVE and inspect one ingress node -------------------------
    # (the registry is the factory behind Experiment/make_algorithm; any
    # name registered with @register_algorithm would work here)
    olive = algorithm_registry.create("OLIVE", scenario)
    result = simulate(
        olive, scenario.online_requests(), config.online_slots
    )
    print(f"\nOLIVE rejection rate: "
          f"{rejection_rate(result, config.measure_window):.2%}")

    timeline = NodeTimeline.collect(
        result, plan, "Franklin", len(scenario.apps)
    )
    print("\nper-application activity at the 'Franklin' datacenter:")
    for app_index in sorted(timeline.guaranteed_demand):
        counts = timeline.counts(app_index)
        print(f"  app {app_index}: "
              f"guarantee={timeline.guaranteed_demand[app_index]:7.1f}  "
              f"peak={timeline.active_demand[app_index].max():7.1f}  "
              + "  ".join(f"{k}={v}" for k, v in sorted(counts.items())))
    print("\n('guaranteed' = within the plan; 'borrowed' = served by "
          "borrowing unused capacity of other classes; borrowed requests "
          "are preempted if their owners return.)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7,
                        help="scenario seed (default: 7)")
    main(seed=parser.parse_args().seed)
