#!/usr/bin/env python3
"""Scale-out serving: a partitioned substrate behind one frontend.

`streaming_service.py` runs the live service on one core and restores a
snapshot bit-identically — this example scales the same service *out*
with the `repro.shard` tier, and extends the failover story to a worker
that is hard-killed mid-run:

1. partition the substrate into K connected region shards with the
   registered policies (`kbalanced`, `tier-aware`) and inspect the
   balance/boundary diagnostics;
2. stand up a `ShardedEmbedderService` (`Experiment(...).serve(shards=K)`)
   — one worker process per shard — and drive it with Poisson traffic,
   watching the merged rolling metrics and the two-phase cross-shard
   ledger;
3. kill a worker process at a slot boundary, restore a spare from its
   latest checkpoint, keep serving — and verify the full decision
   stream is bit-identical to a run where nothing died;
4. check the K=1 contract: a single-shard sharded service reproduces
   the unsharded `EmbedderService` decision for decision.

Run:  python examples/sharded_service.py [--seed N]
"""

import argparse

from repro import Experiment, ExperimentConfig, partition_substrate
from repro.serve import poisson_offers
from repro.substrate import make_citta_studi
from repro.utils.rng import child_rng, make_rng


def drive(service, traffic, report_every=None):
    """Offer every batch, advancing the shared clock slot by slot."""
    decisions = []
    for slot, batch in traffic:
        decisions.extend(service.offer_many(batch))
        service.advance_to(slot + 1)
        if report_every and (slot + 1) % report_every == 0:
            print(f"  {service.metrics().describe()}")
    return decisions


def main(seed: int = 42) -> None:
    config = ExperimentConfig.test(
        utilization=1.2, online_slots=24, measure_start=4, measure_stop=20,
        base_seed=seed,
    )
    experiment = Experiment(config).algorithms("QUICKG")

    # -- 1: partition policies side by side --------------------------------
    substrate = make_citta_studi()
    print(f"partitioning {substrate.name} "
          f"({substrate.num_nodes} nodes, {substrate.num_links} links):")
    for policy in ("kbalanced", "tier-aware"):
        summary = partition_substrate(
            substrate, 3, policy=policy, seed=seed
        ).summary()
        print(f"  {policy:<11} nodes/shard={summary['nodes_per_shard']}  "
              f"imbalance={summary['capacity_imbalance']:.2f}  "
              f"boundary={summary['boundary_links']} links "
              f"({summary['boundary_fraction']:.0%})")
    print()

    # -- 2: a sharded horizon with merged rolling metrics ------------------
    service = experiment.serve(seed=seed, shards=3)
    print(f"serving across {service.num_shards} worker processes:")
    rng = child_rng(make_rng(seed), "traffic")
    traffic = list(poisson_offers(service.scenario, config.online_slots, rng))
    with service:
        drive(service, traffic, report_every=8)
        result = service.finish()
    cross = result.cross_shard
    print(f"sharded done: {result.num_offers} offers, "
          f"{result.acceptance_rate:.1%} accepted; cross-shard "
          f"{cross['commits']} committed / {cross['aborts']} aborted\n")

    # -- 3: kill a worker mid-run, restore a spare, compare ----------------
    undisturbed = experiment.serve(seed=seed, shards=3)
    with undisturbed:
        expected = drive(undisturbed, traffic)

    service = experiment.serve(seed=seed, shards=3)
    kill_slot, kill_shard = config.online_slots // 2, 1
    with service:
        actual = drive(service, traffic[:kill_slot])
        service.kill_worker(kill_shard)
        print(f"killed shard {kill_shard}'s worker at slot "
              f"{service.current_slot} "
              f"(alive={service.worker_alive(kill_shard)}); restoring...")
        service.restore_worker(kill_shard)
        actual += drive(service, traffic[kill_slot:])
    identical = actual == expected
    print(f"restored from the slot-{kill_slot} checkpoint: "
          f"{len(actual)} decisions, identical={identical}\n")
    assert identical, "failover diverged from the undisturbed run"

    # -- 4: the K=1 contract ----------------------------------------------
    oracle = experiment.serve(seed=seed)
    baseline = drive(oracle, traffic)
    single = experiment.serve(seed=seed, shards=1)
    with single:
        sharded_k1 = drive(single, traffic)
    print(f"K=1 sharded ≡ unsharded: {sharded_k1 == baseline} "
          f"({len(baseline)} decisions)")
    assert sharded_k1 == baseline


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42,
                        help="scenario and traffic seed (default: 42)")
    main(seed=parser.parse_args().seed)
