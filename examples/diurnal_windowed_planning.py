#!/usr/bin/env python3
"""Time-windowed planning under a diurnal workload (future-work extension).

The paper's plan is time-independent: one expected peak demand per class.
Its conclusions propose plans that "account for time-dependent expected
demand". This example demonstrates that extension end to end on a workload
with a strong day/night cycle:

* a single P̂80 plan must provision for the daily peak, wasting guarantees
  at night and still under-covering the peak's bursts;
* three windowed plans (morning / peak / night) track the cycle;
* online replanning (recompute PLAN-VNE from the live observation window)
  needs no history at all.

The windowed and replanning planners are registered as first-class
``OLIVE-W`` / ``OLIVE-RE`` algorithms, and the diurnal workload as the
``"diurnal"`` trace kind — so the quick comparison at the top is one
facade expression. The manual walk-through below then rebuilds the
pieces by hand with cycle-aware (phase-sliced) windows.

Run:  python examples/diurnal_windowed_planning.py [--seed N]
"""

import argparse

from repro import Experiment, ExperimentConfig
from repro.apps.catalog import draw_standard_mix
from repro.core.olive import OliveAlgorithm
from repro.plan.api import compute_plan
from repro.plan.replanning import ReplanningOliveAlgorithm
from repro.plan.windowed import WindowedOliveAlgorithm, compute_windowed_plans
from repro.sim.engine import simulate
from repro.sim.metrics import rejection_rate
from repro.stats.aggregate import build_aggregate_demand
from repro.substrate.topologies import make_citta_studi
from repro.utils.rng import child_rng, make_rng
from repro.workload.diurnal import generate_diurnal_trace
from repro.workload.trace import TraceConfig, demand_mean_for_utilization


def main(seed: int = 11) -> None:
    # -- the registered variants through the facade ------------------------
    result = (
        Experiment(ExperimentConfig.test(
            trace_kind="diurnal", utilization=1.2, history_slots=240,
            base_seed=seed,
        ))
        .algorithms("OLIVE", "OLIVE-W", "OLIVE-RE", "QUICKG")
        .run()
    )
    print("registered planners on the 'diurnal' trace kind (test scale):")
    print(result.table("rejection_rate"))
    print()

    # -- manual walk-through: cycle-aware windows --------------------------
    rng = make_rng(seed)
    substrate = make_citta_studi()
    apps = draw_standard_mix(child_rng(rng, "apps"))

    # 120 % mean utilization with ±80 % diurnal swing: the peak phase runs
    # well beyond capacity, the trough well under.
    demand_mean = demand_mean_for_utilization(1.2, substrate, apps)
    config = TraceConfig(
        history_slots=360,
        online_slots=120,
        demand_mean=demand_mean,
        demand_std=0.4 * demand_mean,
    )
    trace = generate_diurnal_trace(
        substrate, apps, config, child_rng(rng, "trace"),
        amplitude=0.8, period=120,
    )
    history = trace.history_requests()
    online = trace.online_requests()
    print(f"{len(history)} history / {len(online)} online requests, "
          f"cycle period 120 slots\n")

    window = (20, 110)
    results = {}

    # 1. Single time-independent plan (the paper's design).
    aggregates = build_aggregate_demand(
        history, config.history_slots, rng=child_rng(rng, "agg")
    )
    single_plan = compute_plan(substrate, apps, aggregates)
    olive = OliveAlgorithm(substrate, apps, single_plan)
    results["OLIVE (single plan)"] = simulate(olive, online, config.online_slots)

    # 2. Three phase-sliced plans riding the cycle (cyclic schedule: the
    # history is sliced by phase-of-cycle, and the plan repeats with the
    # 120-slot period online).
    schedule = compute_windowed_plans(
        substrate, apps, history, config.history_slots,
        config.online_slots, num_windows=3, rng=child_rng(rng, "win"),
        cycle_period=120,
    )
    windowed = WindowedOliveAlgorithm(substrate, apps, schedule)
    results["OLIVE-W (3 windows)"] = simulate(
        windowed, online, config.online_slots
    )

    # 3. Online replanning from live observations (no history needed).
    replanning = ReplanningOliveAlgorithm(
        substrate, apps, interval=30, window=60, seed_plan=single_plan
    )
    results["OLIVE-R (replan/30)"] = simulate(
        replanning, online, config.online_slots
    )
    print(f"(OLIVE-R recomputed its plan {replanning.replan_count} times)\n")

    for label, result in results.items():
        print(f"{label:<22} rejection={rejection_rate(result, window):6.2%}")

    print("\nWindowed guarantees per plan window "
          "(total guaranteed demand units):")
    for start, plan in zip(schedule.starts, schedule.plans):
        print(f"  from slot {start:>3}: {plan.total_guaranteed_demand():9.0f}")
    print(f"  single plan   : {single_plan.total_guaranteed_demand():9.0f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11,
                        help="workload seed (default: 11)")
    main(seed=parser.parse_args().seed)
