#!/usr/bin/env python3
"""A live embedding service: streaming sessions + admission control.

The batch experiments replay a whole trace and report afterwards; this
example runs the ROADMAP north-star instead — a long-lived
`EmbedderService` (OLIVE behind a pluggable admission policy) fed by a
generated Poisson arrival process, one slot at a time:

1. stand the service up with `Experiment(...).serve(...)`;
2. stream synthetic offers into `service.offer(request)` and watch the
   rolling metrics (acceptance rate, utilization, decision-latency
   percentiles) the `MetricsStream` publishes after every slot;
3. checkpoint the service mid-run with `service.snapshot()`, keep
   serving, then restore the checkpoint and replay the identical tail —
   the decisions match bit-for-bit, which is what makes checkpoints
   safe for failover;
4. compare admission policies on the same traffic: a token-bucket
   rate limiter sheds load before the algorithm spends any work on it.

Run:  python examples/streaming_service.py [--seed N]
"""

import argparse

from repro import Experiment, ExperimentConfig
from repro.serve import poisson_offers
from repro.sim.session import SimulationSession
from repro.utils.rng import child_rng, make_rng


def drive(service, traffic) -> list:
    """Offer every batch, advancing the service clock slot by slot."""
    decisions = []
    for slot, batch in traffic:
        for request in batch:
            decisions.append(service.offer(request))
        service.advance_to(slot + 1)
    return decisions


def main(seed: int = 42) -> None:
    config = ExperimentConfig.test(
        utilization=1.2, online_slots=40, measure_start=5, measure_stop=35,
        base_seed=seed,
    )
    experiment = Experiment(config).algorithms("OLIVE")

    # -- 1+2: a served horizon with live rolling metrics -------------------
    service = experiment.serve(seed=seed, admission="queue-bound",
                               admission_params={"max_pending": 64})
    service.metrics.subscribe(
        lambda m: print(f"  {m.describe()}") if m.slot % 10 == 0 else None
    )
    rng = child_rng(make_rng(seed), "traffic")
    drive(service, poisson_offers(service.scenario, config.online_slots, rng))
    result = service.finish()
    print(f"service done: {result.num_requests} requests, "
          f"{result.runtime_seconds:.3f}s algorithm time "
          f"({result.requests_per_second:.0f} req/s)\n")

    # -- 3: checkpoint, keep serving, restore, replay ----------------------
    service = experiment.serve(seed=seed)
    rng = child_rng(make_rng(seed), "traffic")   # same traffic again
    traffic = list(poisson_offers(service.scenario, config.online_slots, rng))
    drive(service, traffic[:20])
    checkpoint = service.snapshot()              # taken at slot 20
    tail = drive(service, traffic[20:])          # keep serving the tail

    resumed = SimulationSession.restore(checkpoint)
    replayed = []
    for slot, batch in traffic[20:]:
        resumed.run_until(slot)
        resumed.begin_slot()
        for request in batch:
            replayed.append(resumed.process(request))
        resumed.close_slot()
    identical = replayed == tail
    print(f"checkpoint at slot {checkpoint.clock}: replayed "
          f"{len(replayed)} tail decisions, identical={identical}\n")
    assert identical, "checkpoint replay diverged from the live run"

    # -- 4: admission policies shape the same traffic ----------------------
    print("same traffic under different admission policies:")
    for admission, params in (
        ("always", {}),
        ("token-bucket", {"rate": 6.0, "burst": 12.0}),
        ("utilization-guard", {"threshold": 0.10}),
    ):
        service = experiment.serve(seed=seed, admission=admission,
                                   admission_params=params)
        rng = child_rng(make_rng(seed), "traffic")
        drive(service, poisson_offers(service.scenario,
                                      config.online_slots, rng))
        service.finish()
        metrics = service.metrics.latest
        label = admission + (f" {params}" if params else "")
        print(f"  {label:<45} accepted={metrics.accepted:4d}  "
              f"shed={metrics.shed:4d}  util={metrics.utilization:.1%}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42,
                        help="scenario and traffic seed (default: 42)")
    main(seed=parser.parse_args().seed)
