#!/usr/bin/env python3
"""Scale sweep: generated topologies, adversarial traffic, fig_scale.

Three things the scenario stress tier adds, in one script:

1. *Generated topology families* — `tiered-x`, `waxman`, `prefattach`
   and `caida-x` are registered sized builders: `"waxman:200"` builds a
   200-node Waxman graph, deterministically.
2. *Adversarial traces* — `pareto-burst` (heavy-tailed arrival counts),
   `ingress-hotspot` (spatial concentration that *moves* between the
   history and online phases) and `capacity-probe` (a floor of tiny
   probes hiding rare huge spikes) plug into `config.trace_kind` like
   any other trace.
3. *The scale curve* — `run_scale` sweeps a sized family across a node
   ladder and reports engine throughput (slots/sec, requests/sec), the
   `fig_scale` figure. `scale_config` applies the overrides that keep
   PLAN-VNE affordable at hundreds of nodes (single-chain app mix,
   short horizons).

Run:  python examples/scale_sweep.py [--seed N] [--sizes 30,60,120]
"""

import argparse

from repro import ExperimentConfig, build_scenario
from repro.experiments.figures import run_scale, scale_config
from repro.substrate.topologies import make_topology


def main(seed: int = 0, sizes: tuple = (30, 60)) -> None:
    # -- 1. generated families at any size ---------------------------------
    print("generated topologies (name: nodes/links, edge share):")
    for name in ("tiered-x:40", "waxman:40", "prefattach:40", "caida-x:40"):
        substrate = make_topology(name)
        edge = sum(1 for n in substrate.nodes if n in substrate.edge_nodes)
        print(f"  {name:<14} {substrate.num_nodes} nodes / "
              f"{substrate.num_links} links, {edge} edge ingresses")

    # -- 2. adversarial traces against the same substrate ------------------
    print("\nadversarial traces on waxman:40 (online request counts):")
    for trace_kind in ("mmpp", "pareto-burst", "ingress-hotspot",
                       "capacity-probe"):
        config = ExperimentConfig.test(
            topology="waxman:40", trace_kind=trace_kind,
            history_slots=40, online_slots=12,
            measure_start=2, measure_stop=10, base_seed=seed,
        )
        scenario = build_scenario(config, seed=seed, with_plan=False)
        online = scenario.online_requests()
        peak = max(
            sum(1 for r in online if r.arrival == t)
            for t in range(config.online_slots)
        )
        print(f"  {trace_kind:<16} {len(online):4d} requests, "
              f"peak slot {peak}")

    # -- 3. the fig_scale throughput curve ---------------------------------
    config = scale_config(ExperimentConfig.test(base_seed=seed))
    print(f"\nthroughput vs substrate size (tiered-x, sizes {sizes}):")
    data = run_scale(config, sizes=sizes, algorithms=("OLIVE", "QUICKG"))
    for size, summary in data.items():
        cells = "  ".join(
            f"{name}={summary[f'{name}:slots_per_sec'].mean:7.1f} slots/s"
            for name in ("OLIVE", "QUICKG")
        )
        print(f"  n={size:<4} {cells}")
    print("\n(benchmarks/test_bench_scale.py records the full 40->400 "
          "curve to benchmarks/results/BENCH_scale.json)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (default: 0)")
    parser.add_argument("--sizes", default="30,60",
                        help="comma-separated node counts (default: 30,60)")
    args = parser.parse_args()
    main(seed=args.seed,
         sizes=tuple(int(s) for s in args.sizes.split(",")))
