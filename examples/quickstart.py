#!/usr/bin/env python3
"""Quickstart: plan-based online VNE in ~30 lines of API.

Builds a small end-to-end scenario on the Citta Studi edge topology —
history trace → time aggregation → PLAN-VNE → OLIVE — and compares OLIVE
against the plain greedy baseline QUICKG on the same online workload.

Run:  python examples/quickstart.py [--seed N]
"""

import argparse

from repro import (
    ExperimentConfig,
    build_scenario,
    cost_breakdown,
    make_algorithm,
    rejection_rate,
    simulate,
)


def main(seed: int = 42) -> None:
    # A laptop-scale configuration: Citta Studi topology at 120 % edge
    # utilization (overload ⇒ embedding decisions actually matter).
    config = ExperimentConfig.test(utilization=1.2, online_slots=40,
                                   measure_start=5, measure_stop=35)

    # Assemble substrate + applications + trace + plan deterministically.
    scenario = build_scenario(config, seed=seed)
    print(f"substrate : {scenario.substrate.name} "
          f"({scenario.substrate.num_nodes} nodes, "
          f"{scenario.substrate.num_links} links)")
    print(f"plan      : {len(scenario.plan.classes)} classes, "
          f"{scenario.plan.num_patterns} patterns, "
          f"planned rejection "
          f"{scenario.plan.mean_rejected_fraction():.1%}")
    online = scenario.online_requests()
    print(f"workload  : {len(online)} online requests "
          f"over {config.online_slots} slots\n")

    for name in ("OLIVE", "QUICKG"):
        algorithm = make_algorithm(name, scenario)
        result = simulate(algorithm, online, config.online_slots)
        rate = rejection_rate(result, config.measure_window)
        costs = cost_breakdown(
            result, scenario.substrate, scenario.apps, config.measure_window
        )
        print(f"{name:<7} rejection={rate:6.2%}  "
              f"resource-cost={costs.resource:.3e}  "
              f"rejection-cost={costs.rejection:.3e}  "
              f"algo-runtime={result.runtime_seconds:5.2f}s")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42,
                        help="scenario seed (default: 42)")
    main(seed=parser.parse_args().seed)
