#!/usr/bin/env python3
"""Quickstart: plan-based online VNE through the fluent `repro.api` facade.

One expression builds a small end-to-end scenario on the Citta Studi edge
topology — history trace → time aggregation → PLAN-VNE → OLIVE — and
compares OLIVE against the plain greedy baseline QUICKG on the same
online workload. A second section drops to the low-level API to show
what the facade assembles under the hood.

Run:  python examples/quickstart.py [--seed N]
"""

import argparse

from repro import Experiment, ExperimentConfig, build_scenario


def main(seed: int = 42) -> None:
    # A laptop-scale configuration: Citta Studi topology at 120 % edge
    # utilization (overload ⇒ embedding decisions actually matter).
    config = ExperimentConfig.test(utilization=1.2, online_slots=40,
                                   measure_start=5, measure_stop=35,
                                   base_seed=seed)

    # -- the one-expression version ---------------------------------------
    result = (
        Experiment(config)
        .algorithms("OLIVE", "QUICKG")
        .run()
    )
    print("rejection rate / total cost (mean over repetitions):")
    for name in ("OLIVE", "QUICKG"):
        rate = result.summary[f"{name}:rejection_rate"]
        cost = result.summary[f"{name}:total_cost"]
        print(f"  {name:<7} rejection={rate.mean:6.2%}  "
              f"total-cost={cost.mean:.3e}")

    # -- what the facade assembled, piece by piece -------------------------
    scenario = build_scenario(config, seed=seed)
    print(f"\nsubstrate : {scenario.substrate.name} "
          f"({scenario.substrate.num_nodes} nodes, "
          f"{scenario.substrate.num_links} links)")
    print(f"plan      : {len(scenario.plan.classes)} classes, "
          f"{scenario.plan.num_patterns} patterns, "
          f"planned rejection "
          f"{scenario.plan.mean_rejected_fraction():.1%}")
    online = scenario.online_requests()
    print(f"workload  : {len(online)} online requests "
          f"over {config.online_slots} slots")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42,
                        help="scenario seed (default: 42)")
    main(seed=parser.parse_args().seed)
