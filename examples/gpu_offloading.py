#!/usr/bin/env python3
"""GPU offloading at the edge (the paper's Fig. 10 scenario).

Service chains each contain one GPU function that may only run on GPU
datacenters; GPU datacenters accept nothing else. Core nodes and four
random edge nodes are split into GPU / non-GPU halves. Full collocation
is impossible, so the plain QUICKG heuristic cannot even participate —
while OLIVE's plan handles the placement constraint naturally and beats
the exact per-request embedder FULLG.

Run:  python examples/gpu_offloading.py [--seed N]
"""

import argparse

from repro import ExperimentConfig, build_scenario, make_algorithm, simulate
from repro.sim.metrics import rejection_rate


def main(seed: int = 3) -> None:
    config = ExperimentConfig.bench(
        topology="Iris",
        utilization=1.0,
        gpu_scenario=True,
        app_mix="gpu",
        repetitions=1,
    )
    scenario = build_scenario(config, seed=seed)
    gpu_nodes = scenario.substrate.gpu_nodes()
    print(f"substrate: {scenario.substrate.name} with "
          f"{len(gpu_nodes)} GPU datacenters "
          f"({', '.join(gpu_nodes[:4])}, ...)")
    print("applications: "
          + ", ".join(app.name for app in scenario.apps))

    online = scenario.online_requests()
    print(f"workload: {len(online)} GPU-chain requests\n")

    rates = {}
    for name in ("OLIVE", "FULLG"):
        algorithm = make_algorithm(name, scenario)
        result = simulate(algorithm, online, config.online_slots)
        rates[name] = rejection_rate(result, config.measure_window)
        print(f"{name:<6} rejection={rates[name]:6.2%}  "
              f"runtime={result.runtime_seconds:5.2f}s")

    # QUICKG's strict collocation cannot split a chain across the GPU
    # boundary — show that it rejects everything.
    quickg = make_algorithm("QUICKG", scenario)
    result = simulate(quickg, online, config.online_slots)
    print(f"QUICKG rejection={rejection_rate(result, config.measure_window):6.2%}"
          "  (collocation cannot satisfy the GPU constraint)")

    if rates["OLIVE"] <= rates["FULLG"]:
        print("\nOLIVE's globally optimized plan beats per-request exact "
              "embedding under placement constraints, as in the paper.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3,
                        help="scenario seed (default: 3)")
    main(seed=parser.parse_args().seed)
