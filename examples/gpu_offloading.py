#!/usr/bin/env python3
"""GPU offloading at the edge (the paper's Fig. 10 scenario).

Service chains each contain one GPU function that may only run on GPU
datacenters; GPU datacenters accept nothing else. Core nodes and four
random edge nodes are split into GPU / non-GPU halves. Full collocation
is impossible, so the plain QUICKG heuristic cannot even participate —
while OLIVE's plan handles the placement constraint naturally and beats
the exact per-request embedder FULLG.

Run:  python examples/gpu_offloading.py [--seed N]
"""

import argparse

from repro import Experiment, ExperimentConfig, build_scenario


def main(seed: int = 3) -> None:
    config = ExperimentConfig.bench(
        topology="Iris",
        utilization=1.0,
        gpu_scenario=True,
        app_mix="gpu",
        repetitions=1,
        base_seed=seed,
    )
    scenario = build_scenario(config, seed=seed)
    gpu_nodes = scenario.substrate.gpu_nodes()
    print(f"substrate: {scenario.substrate.name} with "
          f"{len(gpu_nodes)} GPU datacenters "
          f"({', '.join(gpu_nodes[:4])}, ...)")
    print("applications: "
          + ", ".join(app.name for app in scenario.apps))
    print(f"workload: {len(scenario.online_requests())} GPU-chain requests\n")

    # QUICKG's strict collocation cannot split a chain across the GPU
    # boundary — include it to show that it rejects everything.
    result = (
        Experiment(config)
        .algorithms("OLIVE", "FULLG", "QUICKG")
        .run()
    )
    rates = {
        name: result.summary[f"{name}:rejection_rate"].mean
        for name in ("OLIVE", "FULLG", "QUICKG")
    }
    for name in ("OLIVE", "FULLG"):
        runtime = result.summary[f"{name}:runtime"]
        print(f"{name:<6} rejection={rates[name]:6.2%}  "
              f"runtime={runtime.mean:5.2f}s")
    print(f"QUICKG rejection={rates['QUICKG']:6.2%}"
          "  (collocation cannot satisfy the GPU constraint)")

    if rates["OLIVE"] <= rates["FULLG"]:
        print("\nOLIVE's globally optimized plan beats per-request exact "
              "embedding under placement constraints, as in the paper.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3,
                        help="scenario seed (default: 3)")
    main(seed=parser.parse_args().seed)
