#!/usr/bin/env python3
"""Chaos scenarios: stress OLIVE with dynamic substrate/workload events.

The paper's evaluation assumes a well-behaved substrate; this example
runs the same planned workload under the built-in event profiles (link
flaps, node maintenance, flash crowds, ...) and under a hand-written
schedule, comparing the resilience metrics. It also shows how to
register a custom event profile so it works in the CLI and the facade.

Run:  python examples/chaos_scenarios.py [--seed N]
"""

import argparse

from repro import Experiment, ExperimentConfig
from repro.registry import register_event_profile
from repro.scenarios.events import EventSchedule, LinkFailure, LinkRecovery


@register_event_profile(
    "double-cut",
    description="two simultaneous link failures mid-run, repaired later",
)
def double_cut(scenario, rng):
    """The classic correlated-failure drill: cut two random links at 40%
    of the horizon, repair both at 80%."""
    links = list(scenario.substrate.links)
    picks = sorted(rng.choice(len(links), size=min(2, len(links)),
                              replace=False).tolist())
    cut = max(1, int(scenario.config.online_slots * 0.4))
    repair = max(cut + 1, int(scenario.config.online_slots * 0.8))
    events = []
    for index in picks:
        events.append(LinkFailure(slot=cut, link=links[index]))
        events.append(LinkRecovery(slot=repair, link=links[index]))
    return EventSchedule(events, policy="reroute", name="double-cut")


def main(seed: int = 42) -> None:
    # Run hot (180 % of planned edge capacity): an overloaded substrate is
    # where failures actually bite — capacity headroom would just absorb
    # every event silently.
    config = ExperimentConfig.test(utilization=1.8, online_slots=40,
                                   measure_start=5, measure_stop=35,
                                   base_seed=seed)
    base = Experiment(config).algorithms("OLIVE", "QUICKG")

    print("profile          alg      rejection  disrupted  availability")
    profiles = ("link-flap", "node-maintenance", "flash-crowd",
                "blackout", "double-cut")
    for profile in (None, *profiles):
        # Force the blunt "preempt" policy so the disruption column shows
        # what each profile actually breaks; the second section compares
        # it against "reroute" self-healing.
        experiment = (
            base if profile is None
            else base.events(profile, policy="preempt")
        )
        summary = experiment.run().summary
        for name in ("OLIVE", "QUICKG"):
            print(f"{profile or 'none':<16} {name:<8} "
                  f"{summary[f'{name}:rejection_rate'].mean:9.2%}  "
                  f"{summary[f'{name}:disrupted_rate'].mean:9.2%}  "
                  f"{summary[f'{name}:availability'].mean:12.2%}")

    print("\npreempt vs reroute on the 'blackout' profile (OLIVE):")
    for policy in ("preempt", "reroute"):
        summary = base.algorithms("OLIVE").events(
            "blackout", policy=policy
        ).run().summary
        print(f"  {policy:<8} disrupted={summary['OLIVE:disrupted_rate'].mean:.2%} "
              f"availability={summary['OLIVE:availability'].mean:.2%} "
              f"recovery={summary['OLIVE:recovery_time'].mean:.1f} slots")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    main(parser.parse_args().seed)
