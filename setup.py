"""Setup shim: enables legacy editable installs where `wheel` is absent."""

from setuptools import setup

setup()
