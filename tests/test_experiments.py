"""Tests for the experiments layer: config, scenario assembly, drivers."""

import pytest

from repro.errors import SimulationError
from repro.experiments.config import (
    BENCH_UTILIZATIONS,
    PAPER_UTILIZATIONS,
    ExperimentConfig,
)
from repro.experiments.figures import run_single, summarize_run
from repro.experiments.scenario import build_scenario, make_algorithm


class TestConfig:
    def test_paper_defaults_match_table_iii(self):
        config = ExperimentConfig.paper()
        assert config.history_slots == 5400
        assert config.online_slots == 600
        assert config.measure_window == (100, 500)
        assert config.arrivals_per_node == 10.0
        assert config.duration_mean == 10.0
        assert config.num_quantiles == 10
        assert config.percentile_alpha == 80.0
        assert config.repetitions == 30

    def test_paper_utilization_sweep_covers_60_to_140(self):
        assert PAPER_UTILIZATIONS[0] == 0.6
        assert PAPER_UTILIZATIONS[-1] == 1.4
        assert set(BENCH_UTILIZATIONS) <= set(PAPER_UTILIZATIONS)

    def test_window_must_fit_online_phase(self):
        with pytest.raises(SimulationError):
            ExperimentConfig(online_slots=50, measure_start=10, measure_stop=60)

    def test_with_overrides(self):
        config = ExperimentConfig.test()
        changed = config.with_(utilization=1.4)
        assert changed.utilization == 1.4
        assert changed.topology == config.topology

    def test_presets_are_valid(self):
        ExperimentConfig.paper()
        ExperimentConfig.bench()
        ExperimentConfig.test()


class TestScenario:
    def test_deterministic_given_seed(self, test_config):
        a = build_scenario(test_config, seed=3)
        b = build_scenario(test_config, seed=3)
        assert a.trace.requests == b.trace.requests
        assert set(a.plan.classes) == set(b.plan.classes)

    def test_different_seed_different_trace(self, test_config):
        a = build_scenario(test_config, seed=3)
        b = build_scenario(test_config, seed=4)
        assert a.trace.requests != b.trace.requests

    def test_without_plan(self, test_config):
        scenario = build_scenario(test_config, seed=0, with_plan=False)
        assert scenario.plan.is_empty

    def test_plan_utilization_scaling_shrinks_guarantees(self, test_config):
        full = build_scenario(test_config, seed=2)
        scaled = build_scenario(test_config, seed=2, plan_utilization=0.5)
        assert (
            scaled.plan.total_guaranteed_demand()
            < full.plan.total_guaranteed_demand()
        )
        # The online workload itself must be identical.
        assert scaled.trace.requests == full.trace.requests

    def test_shifted_plan_keeps_online_trace(self, test_config):
        base = build_scenario(test_config, seed=2)
        shifted = build_scenario(test_config, seed=2, shift_plan_ingress=True)
        assert shifted.trace.requests == base.trace.requests
        # With shifted ingress the per-class guarantees differ.
        base_keys = {
            k: round(v.guaranteed_demand())
            for k, v in base.plan.classes.items()
        }
        shifted_keys = {
            k: round(v.guaranteed_demand())
            for k, v in shifted.plan.classes.items()
        }
        assert base_keys != shifted_keys

    def test_quantile_override(self, test_config):
        scenario = build_scenario(test_config, seed=0, num_quantiles=1)
        assert not scenario.plan.is_empty  # plan still computed

    def test_gpu_scenario_builds(self):
        config = ExperimentConfig.test(
            gpu_scenario=True, app_mix="gpu", online_slots=12,
            measure_start=2, measure_stop=10, history_slots=60,
        )
        scenario = build_scenario(config, seed=0)
        assert scenario.substrate.gpu_nodes()
        assert scenario.efficiency.__class__.__name__ == "GpuAwareEfficiency"

    def test_unknown_algorithm_raises(self, test_scenario):
        with pytest.raises(SimulationError, match="unknown algorithm"):
            make_algorithm("MAGIC", test_scenario)

    def test_unknown_trace_kind_raises(self):
        config = ExperimentConfig.test(trace_kind="pcap")
        with pytest.raises(SimulationError, match="unknown trace kind"):
            build_scenario(config, seed=0)

    @pytest.mark.parametrize("name", ["OLIVE", "QUICKG", "FULLG", "SLOTOFF"])
    def test_algorithm_factory(self, test_scenario, name):
        algorithm = make_algorithm(name, test_scenario)
        assert algorithm.name == name


class TestRunSingle:
    def test_metrics_cover_all_algorithms(self, test_config):
        scenario, results = run_single(
            test_config, seed=0, algorithms=("OLIVE", "QUICKG")
        )
        metrics = summarize_run(scenario, results)
        for name in ("OLIVE", "QUICKG"):
            for metric in (
                "rejection_rate",
                "resource_cost",
                "rejection_cost",
                "total_cost",
                "runtime",
                "balance",
            ):
                assert f"{name}:{metric}" in metrics

    def test_plan_skipped_when_olive_absent(self, test_config):
        scenario, _ = run_single(
            test_config, seed=0, algorithms=("QUICKG",)
        )
        assert scenario.plan.is_empty
