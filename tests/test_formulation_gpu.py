"""PLAN-VNE formulation under placement restrictions (GPU scenario)."""

import pytest

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.apps.efficiency import GpuAwareEfficiency
from repro.lp.solver import solve_lp
from repro.plan.api import compute_plan
from repro.plan.formulation import build_plan_vne
from repro.stats.aggregate import AggregateRequest
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork
from repro.substrate.tiers import Tier


@pytest.fixture
def gpu_substrate() -> SubstrateNetwork:
    """edge — transport — core, plus a GPU twin on the core."""
    nodes = {
        "edge": NodeAttrs(Tier.EDGE, 1000.0, 50.0),
        "transport": NodeAttrs(Tier.TRANSPORT, 3000.0, 10.0),
        "core": NodeAttrs(Tier.CORE, 9000.0, 1.0),
        "core-gpu": NodeAttrs(Tier.CORE, 9000.0, 1.0, gpu=True),
    }
    links = {
        ("edge", "transport"): LinkAttrs(Tier.EDGE, 5000.0, 1.0),
        ("core", "transport"): LinkAttrs(Tier.TRANSPORT, 15000.0, 1.0),
        ("core", "core-gpu"): LinkAttrs(Tier.CORE, 45000.0, 1.0),
    }
    return SubstrateNetwork(name="gpu-line", nodes=nodes, links=links)


@pytest.fixture
def gpu_app() -> Application:
    return Application(
        name="gpu-chain",
        vnfs=(
            VNF(ROOT_ID, 0.0, VNFKind.ROOT),
            VNF(1, 10.0, VNFKind.GENERIC),
            VNF(2, 10.0, VNFKind.GPU),
        ),
        links=(VirtualLink(0, 1, 5.0), VirtualLink(1, 2, 5.0)),
    )


class TestGpuFormulation:
    def test_forbidden_placements_have_no_variables(self, gpu_substrate, gpu_app):
        aggregates = [AggregateRequest(0, "edge", 10.0)]
        model = build_plan_vne(
            gpu_substrate, [gpu_app], aggregates, GpuAwareEfficiency()
        )
        # GPU VNF (id 2) may only sit on the GPU node.
        gpu_hosts = {v for (c, i, v) in model.node_vars if i == 2}
        assert gpu_hosts == {"core-gpu"}
        # Generic VNF (id 1) may sit anywhere except the GPU node.
        generic_hosts = {v for (c, i, v) in model.node_vars if i == 1}
        assert generic_hosts == {"edge", "transport", "core"}

    def test_plan_respects_gpu_exclusivity(self, gpu_substrate, gpu_app):
        aggregates = [AggregateRequest(0, "edge", 10.0)]
        plan = compute_plan(
            gpu_substrate, [gpu_app], aggregates, GpuAwareEfficiency()
        )
        class_plan = plan.class_plan((0, "edge"))
        assert class_plan is not None
        for pattern in class_plan.patterns:
            assert pattern.node_map[2] == "core-gpu"
            assert pattern.node_map[1] != "core-gpu"

    def test_full_allocation_feasible_through_gpu(self, gpu_substrate, gpu_app):
        aggregates = [AggregateRequest(0, "edge", 10.0)]
        model = build_plan_vne(
            gpu_substrate, [gpu_app], aggregates, GpuAwareEfficiency()
        )
        solution = solve_lp(model.program)
        root = model.node_vars[(0, ROOT_ID, "edge")]
        assert solution.values[root] == pytest.approx(1.0)

    def test_no_gpu_node_forces_rejection(self, gpu_app):
        """Without any GPU datacenter the class is fully rejected."""
        nodes = {
            "edge": NodeAttrs(Tier.EDGE, 1000.0, 50.0),
            "core": NodeAttrs(Tier.CORE, 9000.0, 1.0),
        }
        links = {("core", "edge"): LinkAttrs(Tier.EDGE, 5000.0, 1.0)}
        substrate = SubstrateNetwork(name="no-gpu", nodes=nodes, links=links)
        plan = compute_plan(
            substrate, [gpu_app],
            [AggregateRequest(0, "edge", 10.0)],
            GpuAwareEfficiency(),
        )
        assert plan.class_plan((0, "edge")) is None  # nothing allocatable
