"""Unit tests for repro.workload: requests, arrivals, popularity, traces."""

import numpy as np
import pytest

from repro.apps.catalog import make_chain
from repro.errors import WorkloadError
from repro.utils.rng import make_rng
from repro.workload.adversarial import (
    generate_capacity_probe_trace,
    generate_ingress_hotspot_trace,
    generate_pareto_burst_trace,
    hotspot_probabilities,
    pareto_burst_counts,
)
from repro.workload.arrivals import MMPPProcess, PoissonProcess
from repro.workload.popularity import assign_node_popularity, zipf_weights
from repro.workload.request import Request
from repro.workload.trace import (
    TraceConfig,
    demand_mean_for_utilization,
    generate_caida_like_trace,
    generate_mmpp_trace,
    mean_application_footprint,
)


class TestRequest:
    def test_activity_interval_is_half_open(self):
        request = Request(
            arrival=5, id=1, app_index=0, ingress="a", demand=1.0, duration=3
        )
        assert request.departure == 8
        assert request.active_at(5)
        assert request.active_at(7)
        assert not request.active_at(8)
        assert not request.active_at(4)

    def test_ordering_is_by_arrival_then_id(self):
        early = Request(arrival=1, id=9, app_index=0, ingress="a", demand=1, duration=1)
        late = Request(arrival=2, id=1, app_index=0, ingress="a", demand=1, duration=1)
        tie = Request(arrival=1, id=10, app_index=0, ingress="a", demand=1, duration=1)
        assert sorted([late, tie, early]) == [early, tie, late]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(demand=0.0),
            dict(demand=-1.0),
            dict(duration=0),
            dict(arrival=-1),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            arrival=0, id=1, app_index=0, ingress="a", demand=1.0, duration=1
        )
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            Request(**base)

    def test_class_key(self):
        request = Request(
            arrival=0, id=1, app_index=2, ingress="edge-7", demand=1, duration=1
        )
        assert request.class_key() == (2, "edge-7")


class TestArrivalProcesses:
    def test_poisson_mean(self, rng):
        counts = PoissonProcess(rate=10.0).counts(5000, rng)
        assert counts.mean() == pytest.approx(10.0, rel=0.05)

    def test_poisson_rejects_negative_rate(self):
        with pytest.raises(WorkloadError):
            PoissonProcess(rate=-1.0)

    def test_mmpp_long_run_mean(self, rng):
        process = MMPPProcess(mean_rate=10.0, burstiness=0.5)
        counts = process.counts(20000, rng)
        assert counts.mean() == pytest.approx(10.0, rel=0.1)

    def test_mmpp_rates_alternate_between_two_levels(self, rng):
        process = MMPPProcess(mean_rate=10.0, burstiness=0.5)
        rates = process.rates(1000, rng)
        assert set(np.unique(rates)) == {5.0, 15.0}

    def test_mmpp_is_overdispersed_relative_to_poisson(self, rng):
        # Burstiness should push variance well above the Poisson variance.
        process = MMPPProcess(
            mean_rate=20.0, burstiness=0.8, switch_probability=0.05
        )
        counts = process.counts(20000, rng)
        assert counts.var() > 1.5 * counts.mean()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mean_rate=-1.0),
            dict(mean_rate=1.0, burstiness=1.0),
            dict(mean_rate=1.0, burstiness=-0.1),
            dict(mean_rate=1.0, switch_probability=0.0),
        ],
    )
    def test_mmpp_validation(self, kwargs):
        with pytest.raises(WorkloadError):
            MMPPProcess(**kwargs)


class TestPopularity:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(10, alpha=1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(9))
        assert weights[0] / weights[9] == pytest.approx(10.0)

    def test_zipf_rejects_empty(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)

    def test_assignment_covers_all_nodes(self, rng):
        nodes = [f"n{i}" for i in range(7)]
        popularity = assign_node_popularity(nodes, rng)
        assert set(popularity) == set(nodes)
        assert sum(popularity.values()) == pytest.approx(1.0)

    def test_assignment_permutation_depends_on_rng(self):
        nodes = [f"n{i}" for i in range(20)]
        a = assign_node_popularity(nodes, make_rng(1))
        b = assign_node_popularity(nodes, make_rng(2))
        assert a != b


class TestTrace:
    def _config(self, **overrides):
        defaults = dict(history_slots=50, online_slots=20, arrivals_per_node=2.0)
        defaults.update(overrides)
        return TraceConfig(**defaults)

    def test_split_rebases_online_arrivals(self, line_substrate, rng):
        apps = [make_chain(rng, num_vnfs=3)]
        trace = generate_mmpp_trace(line_substrate, apps, self._config(), rng)
        for request in trace.online_requests():
            assert 0 <= request.arrival < 20
        for request in trace.history_requests():
            assert request.arrival < 50

    def test_split_preserves_request_count(self, line_substrate, rng):
        apps = [make_chain(rng, num_vnfs=3)]
        trace = generate_mmpp_trace(line_substrate, apps, self._config(), rng)
        assert (
            len(trace.history_requests()) + len(trace.online_requests())
            == trace.num_requests
        )

    def test_ingress_only_from_edge_nodes(self, line_substrate, rng):
        apps = [make_chain(rng, num_vnfs=3)]
        trace = generate_mmpp_trace(line_substrate, apps, self._config(), rng)
        edge = set(line_substrate.edge_nodes)
        assert all(r.ingress in edge for r in trace.requests)

    def test_demands_positive_durations_at_least_one(self, line_substrate, rng):
        apps = [make_chain(rng, num_vnfs=3)]
        trace = generate_mmpp_trace(line_substrate, apps, self._config(), rng)
        assert all(r.demand > 0 for r in trace.requests)
        assert all(r.duration >= 1 for r in trace.requests)

    def test_trace_is_deterministic_per_seed(self, line_substrate):
        apps = [make_chain(make_rng(0), num_vnfs=3)]
        a = generate_mmpp_trace(line_substrate, apps, self._config(), make_rng(5))
        b = generate_mmpp_trace(line_substrate, apps, self._config(), make_rng(5))
        assert a.requests == b.requests

    def test_caida_trace_basic_properties(self, line_substrate, rng):
        apps = [make_chain(rng, num_vnfs=3)]
        trace = generate_caida_like_trace(
            line_substrate, apps, self._config(), rng
        )
        assert trace.num_requests > 0
        edge = set(line_substrate.edge_nodes)
        assert all(r.ingress in edge for r in trace.requests)

    def test_trace_config_validation(self):
        with pytest.raises(WorkloadError):
            TraceConfig(history_slots=0)
        with pytest.raises(WorkloadError):
            TraceConfig(demand_mean=0.0)


class TestAdversarialTraces:
    def _config(self, **overrides):
        defaults = dict(
            history_slots=120, online_slots=40, arrivals_per_node=2.0
        )
        defaults.update(overrides)
        return TraceConfig(**defaults)

    def _apps(self, rng):
        return [make_chain(rng, num_vnfs=3)]

    @pytest.mark.parametrize(
        "generate",
        [
            generate_pareto_burst_trace,
            generate_ingress_hotspot_trace,
            generate_capacity_probe_trace,
        ],
        ids=["pareto-burst", "ingress-hotspot", "capacity-probe"],
    )
    def test_basic_invariants_and_determinism(self, line_substrate, generate):
        apps = self._apps(make_rng(0))
        a = generate(line_substrate, apps, self._config(), make_rng(7))
        b = generate(line_substrate, apps, self._config(), make_rng(7))
        assert a.requests == b.requests
        assert a.num_requests > 0
        edge = set(line_substrate.edge_nodes)
        assert all(r.ingress in edge for r in a.requests)
        assert all(r.demand > 0 and r.duration >= 1 for r in a.requests)
        assert all(r.arrival < self._config().total_slots for r in a.requests)

    def test_pareto_burst_is_heavier_tailed_than_poisson(self):
        rng = make_rng(3)
        counts = pareto_burst_counts(20000, 10.0, rng, shape=1.8)
        assert counts.mean() == pytest.approx(10.0, rel=0.25)
        # Heavy modulation: variance far above the Poisson variance (=mean).
        assert counts.var() > 5.0 * counts.mean()

    def test_pareto_burst_rejects_infinite_mean_shape(self):
        with pytest.raises(WorkloadError, match="exceed 1"):
            pareto_burst_counts(10, 1.0, make_rng(0), shape=1.0)

    def test_hotspot_rotates_between_phases(self, line_substrate):
        apps = self._apps(make_rng(0))
        config = self._config()
        trace = generate_ingress_hotspot_trace(
            line_substrate, apps, config, make_rng(11), concentration=0.9
        )
        cut = config.history_slots

        def top_ingress(requests):
            share = {}
            for r in requests:
                share[r.ingress] = share.get(r.ingress, 0) + 1
            return max(share, key=share.get)

        history_hot = top_ingress([r for r in trace.requests if r.arrival < cut])
        online_hot = top_ingress([r for r in trace.requests if r.arrival >= cut])
        assert history_hot != online_hot

    def test_hotspot_concentration_observed(self, line_substrate):
        apps = self._apps(make_rng(0))
        trace = generate_ingress_hotspot_trace(
            line_substrate, apps, self._config(), make_rng(11),
            concentration=0.8,
        )
        cut = trace.config.history_slots
        history = [r for r in trace.requests if r.arrival < cut]
        share = {}
        for r in history:
            share[r.ingress] = share.get(r.ingress, 0) + 1
        assert max(share.values()) / len(history) == pytest.approx(
            0.8, abs=0.1
        )

    def test_hotspot_probabilities_validation(self):
        with pytest.raises(WorkloadError, match="strict non-empty subset"):
            hotspot_probabilities(4, np.arange(4), 0.8)
        with pytest.raises(WorkloadError, match="strict non-empty subset"):
            hotspot_probabilities(4, np.arange(0), 0.8)

    def test_hotspot_parameter_validation(self, line_substrate, rng):
        apps = self._apps(rng)
        with pytest.raises(WorkloadError, match="hotspot_fraction"):
            generate_ingress_hotspot_trace(
                line_substrate, apps, self._config(), rng,
                hotspot_fraction=0.9,
            )
        with pytest.raises(WorkloadError, match="concentration"):
            generate_ingress_hotspot_trace(
                line_substrate, apps, self._config(), rng, concentration=1.0
            )

    def test_capacity_probe_demands_are_bimodal(self, line_substrate):
        apps = self._apps(make_rng(0))
        config = self._config(demand_mean=10.0, demand_floor=0.1)
        trace = generate_capacity_probe_trace(
            line_substrate, apps, config, make_rng(13),
            probe_fraction=0.9, spike_multiplier=8.0,
        )
        demands = np.array([r.demand for r in trace.requests])
        probes = demands <= config.demand_floor + 1e-9
        assert probes.mean() == pytest.approx(0.9, abs=0.05)
        # Spikes sit around 8× the configured mean, far above the probes.
        assert demands[~probes].mean() > 4 * config.demand_mean
        probe_durations = [
            r.duration for r, p in zip(trace.requests, probes) if p
        ]
        assert set(probe_durations) == {1}

    def test_capacity_probe_parameter_validation(self, line_substrate, rng):
        apps = self._apps(rng)
        with pytest.raises(WorkloadError, match="probe_fraction"):
            generate_capacity_probe_trace(
                line_substrate, apps, self._config(), rng, probe_fraction=1.0
            )
        with pytest.raises(WorkloadError, match="amplify"):
            generate_capacity_probe_trace(
                line_substrate, apps, self._config(), rng, spike_multiplier=0.5
            )

    def test_registry_dispatch(self, line_substrate, rng):
        from repro.registry import trace_registry

        assert {
            "pareto-burst", "ingress-hotspot", "capacity-probe"
        } <= set(trace_registry.names())
        trace = trace_registry.create(
            "pareto-burst", line_substrate, self._apps(rng),
            self._config(), rng,
        )
        assert trace.num_requests > 0


class TestUtilizationCalibration:
    def test_footprint_is_mean_of_node_sizes(self, rng):
        apps = [make_chain(rng, num_vnfs=3), make_chain(rng, num_vnfs=4)]
        expected = np.mean([a.total_node_size() for a in apps])
        assert mean_application_footprint(apps) == pytest.approx(expected)

    def test_demand_mean_scales_linearly_with_utilization(
        self, line_substrate, rng
    ):
        apps = [make_chain(rng, num_vnfs=3)]
        d60 = demand_mean_for_utilization(0.6, line_substrate, apps)
        d120 = demand_mean_for_utilization(1.2, line_substrate, apps)
        assert d120 == pytest.approx(2 * d60)

    def test_calibration_closes_the_loop(self, line_substrate, rng):
        """Generated load should land near the requested utilization."""
        apps = [make_chain(rng, num_vnfs=3)]
        target = 1.0
        demand_mean = demand_mean_for_utilization(
            target, line_substrate, apps, arrivals_per_node=5.0
        )
        config = TraceConfig(
            history_slots=400,
            online_slots=10,
            arrivals_per_node=5.0,
            demand_mean=demand_mean,
            demand_std=0.0001,
        )
        trace = generate_mmpp_trace(line_substrate, apps, config, rng)
        # Mean active node-footprint over steady-state slots vs edge capacity.
        series = np.zeros(400)
        footprint = apps[0].total_node_size()
        for request in trace.history_requests():
            stop = min(request.departure, 400)
            series[request.arrival:stop] += request.demand * footprint
        observed = series[50:].mean() / line_substrate.total_edge_capacity()
        assert observed == pytest.approx(target, rel=0.15)

    def test_rejects_bad_inputs(self, line_substrate, rng):
        apps = [make_chain(rng, num_vnfs=3)]
        with pytest.raises(WorkloadError):
            demand_mean_for_utilization(0.0, line_substrate, apps)
        with pytest.raises(WorkloadError):
            mean_application_footprint([])
