"""Unit tests for the LP modeling layer (repro.lp.model)."""

import math

import pytest

from repro.errors import InfeasibleError, LPError
from repro.lp.model import ConstraintSense, LinearProgram
from repro.lp.solver import solve_lp


class TestVariables:
    def test_indices_are_sequential(self):
        lp = LinearProgram()
        assert lp.add_variable("a") == 0
        assert lp.add_variable("b") == 1
        assert lp.num_variables == 2

    def test_lookup_by_name(self):
        lp = LinearProgram()
        lp.add_variable("x")
        index = lp.add_variable("y")
        assert lp.variable_index("y") == index

    def test_unknown_name_raises(self):
        lp = LinearProgram()
        with pytest.raises(LPError, match="unknown variable"):
            lp.variable_index("missing")

    def test_duplicate_name_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="duplicate"):
            lp.add_variable("x")

    def test_anonymous_variables_allowed(self):
        lp = LinearProgram()
        lp.add_variable()
        lp.add_variable()
        assert lp.num_variables == 2

    def test_crossed_bounds_raise(self):
        lp = LinearProgram()
        with pytest.raises(LPError, match="lower bound"):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_objective_accumulation(self):
        lp = LinearProgram()
        x = lp.add_variable("x", objective=1.0)
        lp.add_objective(x, 2.0)
        assert lp.objective_coefficient(x) == 3.0
        lp.set_objective(x, 5.0)
        assert lp.objective_coefficient(x) == 5.0


class TestConstraints:
    def test_unknown_variable_in_constraint_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError, match="unknown variable"):
            lp.add_constraint({5: 1.0}, ConstraintSense.LE, 1.0)

    def test_repeated_terms_accumulate(self):
        lp = LinearProgram()
        x = lp.add_variable("x", upper=10.0, objective=-1.0)
        lp.add_constraint([(x, 1.0), (x, 1.0)], ConstraintSense.LE, 4.0)
        solution = solve_lp(lp)
        assert solution.value(x) == pytest.approx(2.0)

    def test_row_count(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_constraint({x: 1.0}, ConstraintSense.LE, 1.0)
        lp.add_constraint({x: 1.0}, ConstraintSense.GE, 0.0)
        assert lp.num_constraints == 2


class TestSolve:
    def test_simple_minimization(self):
        # min x + 2y  s.t.  x + y >= 3, x, y in [0, 10]
        lp = LinearProgram()
        x = lp.add_variable("x", upper=10.0, objective=1.0)
        y = lp.add_variable("y", upper=10.0, objective=2.0)
        lp.add_constraint({x: 1.0, y: 1.0}, ConstraintSense.GE, 3.0)
        solution = solve_lp(lp)
        assert solution.objective == pytest.approx(3.0)
        assert solution.value(x) == pytest.approx(3.0)
        assert solution.value("y") == pytest.approx(0.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x", objective=1.0)
        y = lp.add_variable("y", objective=1.0)
        lp.add_constraint({x: 1.0, y: 2.0}, ConstraintSense.EQ, 4.0)
        solution = solve_lp(lp)
        # Cheapest way to satisfy x + 2y = 4 with unit costs: y = 2.
        assert solution.objective == pytest.approx(2.0)
        assert solution.value(y) == pytest.approx(2.0)

    def test_infeasible_raises(self):
        lp = LinearProgram("bad")
        x = lp.add_variable("x", upper=1.0)
        lp.add_constraint({x: 1.0}, ConstraintSense.GE, 2.0)
        with pytest.raises(InfeasibleError):
            solve_lp(lp)

    def test_unbounded_raises(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=-math.inf, upper=math.inf, objective=1.0)
        with pytest.raises(LPError):
            solve_lp(lp)

    def test_empty_program(self):
        solution = solve_lp(LinearProgram())
        assert solution.objective == 0.0

    def test_bounds_respected(self):
        lp = LinearProgram()
        x = lp.add_variable("x", lower=2.0, upper=5.0, objective=1.0)
        solution = solve_lp(lp)
        assert solution.value(x) == pytest.approx(2.0)

    def test_transportation_problem(self):
        # Two sources (capacity 5, 5), two sinks (demand 4, 6), unit costs.
        lp = LinearProgram()
        costs = {(0, 0): 1.0, (0, 1): 3.0, (1, 0): 2.0, (1, 1): 1.0}
        flows = {
            key: lp.add_variable(f"f{key}", objective=cost)
            for key, cost in costs.items()
        }
        for source in (0, 1):
            lp.add_constraint(
                {flows[(source, 0)]: 1.0, flows[(source, 1)]: 1.0},
                ConstraintSense.LE,
                5.0,
            )
        for sink, demand in ((0, 4.0), (1, 6.0)):
            lp.add_constraint(
                {flows[(0, sink)]: 1.0, flows[(1, sink)]: 1.0},
                ConstraintSense.EQ,
                demand,
            )
        solution = solve_lp(lp)
        # Optimal: s0→d0 4 @1, s1→d1 5 @1, s0→d1 1 @3 = 12.
        assert solution.objective == pytest.approx(12.0)


class TestCompile:
    def test_ge_rows_are_flipped(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_constraint({x: 2.0}, ConstraintSense.GE, 4.0)
        compiled = lp.compile()
        data, rows, cols = compiled.ub_triplets
        assert data == [-2.0]
        assert compiled.ub_rhs.tolist() == [-4.0]

    def test_eq_rows_kept_separate(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.add_constraint({x: 1.0}, ConstraintSense.EQ, 1.0)
        lp.add_constraint({x: 1.0}, ConstraintSense.LE, 2.0)
        compiled = lp.compile()
        assert len(compiled.eq_rhs) == 1
        assert len(compiled.ub_rhs) == 1
