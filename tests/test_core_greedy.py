"""Unit tests for GREEDYEMBED (repro.core.greedy)."""

import pytest

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.apps.efficiency import GpuAwareEfficiency, UniformEfficiency
from repro.core.embedding import ElementLoads, compute_loads
from repro.core.greedy import greedy_embed
from repro.core.residual import ResidualState
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork
from repro.substrate.tiers import Tier
from repro.workload.request import Request
from tests.conftest import make_line_substrate, make_two_vnf_chain


def _request(demand=1.0, ingress="edge-a"):
    return Request(
        arrival=0, id=1, app_index=0, ingress=ingress, demand=demand, duration=5
    )


class TestSingleHostGreedy:
    def test_prefers_cheapest_feasible_node(self, line_substrate, chain_app):
        residual = ResidualState(line_substrate)
        embedding = greedy_embed(
            _request(), chain_app, line_substrate, UniformEfficiency(), residual
        )
        assert embedding is not None
        # Node loads: 20/unit. Costs: edge-a 50×20=1000, transport
        # 10×20=200 + path 5, core 1×20=20 + path 10 → core wins.
        assert embedding.node_map[1] == "core"
        assert embedding.node_map[2] == "core"
        assert embedding.node_map[ROOT_ID] == "edge-a"

    def test_root_link_path_reaches_host(self, line_substrate, chain_app):
        residual = ResidualState(line_substrate)
        embedding = greedy_embed(
            _request(), chain_app, line_substrate, UniformEfficiency(), residual
        )
        assert embedding.link_paths[(0, 1)] == (
            ("edge-a", "transport"),
            ("core", "transport"),
        )
        assert embedding.link_paths[(1, 2)] == ()

    def test_respects_node_capacity(self, chain_app):
        # Make core too small for the request; transport next-cheapest.
        substrate = make_line_substrate(node_capacity=1000.0)
        residual = ResidualState(substrate)
        residual.nodes["core"] = 10.0  # below the 20-unit footprint
        embedding = greedy_embed(
            _request(), chain_app, substrate, UniformEfficiency(), residual
        )
        assert embedding.node_map[1] == "transport"

    def test_respects_link_capacity(self, chain_app):
        substrate = make_line_substrate()
        residual = ResidualState(substrate)
        # Block the only uplink: the request (link load 5) can't leave edge-a.
        residual.links[("edge-a", "transport")] = 1.0
        embedding = greedy_embed(
            _request(), chain_app, substrate, UniformEfficiency(), residual
        )
        assert embedding is not None
        assert embedding.node_map[1] == "edge-a"  # falls back to collocation

    def test_returns_none_when_nothing_fits(self, chain_app):
        substrate = make_line_substrate()
        residual = ResidualState(substrate)
        for node in residual.nodes:
            residual.nodes[node] = 1.0
        assert (
            greedy_embed(
                _request(), chain_app, substrate, UniformEfficiency(), residual
            )
            is None
        )

    def test_embedding_fits_residual(self, line_substrate, chain_app):
        residual = ResidualState(line_substrate)
        embedding = greedy_embed(
            _request(demand=3.0), chain_app, line_substrate,
            UniformEfficiency(), residual,
        )
        loads = compute_loads(
            chain_app, 3.0, embedding, line_substrate, UniformEfficiency()
        )
        assert residual.fits(loads)


def _gpu_substrate() -> SubstrateNetwork:
    """Line substrate plus a GPU twin hanging off the core node."""
    base = make_line_substrate()
    nodes = dict(base.nodes)
    links = dict(base.links)
    nodes["core-gpu"] = NodeAttrs(
        tier=Tier.CORE, capacity=9000.0, cost=1.0, gpu=True
    )
    links[("core", "core-gpu")] = LinkAttrs(
        tier=Tier.CORE, capacity=4500.0, cost=1.0
    )
    return SubstrateNetwork(name="line4-gpu", nodes=nodes, links=links)


def _gpu_chain(gpu_position: int) -> Application:
    """θ → v1 → v2 with the GPU VNF at the given position (1 or 2)."""
    kinds = {
        1: VNFKind.GPU if gpu_position == 1 else VNFKind.GENERIC,
        2: VNFKind.GPU if gpu_position == 2 else VNFKind.GENERIC,
    }
    return Application(
        name=f"gpu-chain-{gpu_position}",
        vnfs=(
            VNF(ROOT_ID, 0.0, VNFKind.ROOT),
            VNF(1, 10.0, kinds[1]),
            VNF(2, 10.0, kinds[2]),
        ),
        links=(VirtualLink(0, 1, 5.0), VirtualLink(1, 2, 5.0)),
    )


class TestTwoHostGreedy:
    def test_gpu_vnf_lands_on_gpu_node(self):
        substrate = _gpu_substrate()
        residual = ResidualState(substrate)
        app = _gpu_chain(gpu_position=2)
        embedding = greedy_embed(
            _request(), app, substrate, GpuAwareEfficiency(), residual
        )
        assert embedding is not None
        assert substrate.nodes[embedding.node_map[2]].gpu
        assert not substrate.nodes[embedding.node_map[1]].gpu

    def test_gpu_first_chain_routes_through_gpu(self):
        substrate = _gpu_substrate()
        residual = ResidualState(substrate)
        app = _gpu_chain(gpu_position=1)
        embedding = greedy_embed(
            _request(), app, substrate, GpuAwareEfficiency(), residual
        )
        assert embedding is not None
        assert substrate.nodes[embedding.node_map[1]].gpu
        loads = compute_loads(
            app, 1.0, embedding, substrate, GpuAwareEfficiency()
        )
        assert residual.fits(loads)

    def test_collocation_only_mode_rejects_gpu_apps(self):
        substrate = _gpu_substrate()
        residual = ResidualState(substrate)
        app = _gpu_chain(gpu_position=2)
        embedding = greedy_embed(
            _request(), app, substrate, GpuAwareEfficiency(), residual,
            allow_split_groups=False,
        )
        assert embedding is None  # QUICKG's restriction (paper Fig. 10)

    def test_no_gpu_nodes_means_no_embedding(self, line_substrate):
        residual = ResidualState(line_substrate)
        app = _gpu_chain(gpu_position=2)
        embedding = greedy_embed(
            _request(), app, line_substrate, GpuAwareEfficiency(), residual
        )
        assert embedding is None
