"""SLOTOFF cross-slot dynamics: quota shifts and mid-life drops."""

import pytest

from repro.baselines.slotoff import SlotOffAlgorithm
from repro.sim.engine import simulate
from repro.workload.request import Request
from tests.conftest import make_line_substrate, make_two_vnf_chain


def _request(rid, arrival, ingress, demand=2.0, duration=10):
    return Request(
        arrival=arrival, id=rid, app_index=0, ingress=ingress,
        demand=demand, duration=duration,
    )


class TestSlotOffDynamics:
    def test_competition_can_drop_ongoing_requests(self, chain_app):
        """When a competing class arrives, water-filling shrinks the first
        class's quota; ongoing requests beyond it are dropped (reported as
        preempted by the simulator)."""
        # Tight uplinks: each edge can push ~2 demand units off-site, and
        # edge nodes themselves hold 100/20 = 5 units.
        substrate = make_line_substrate(node_capacity=100.0, link_capacity=20.0)
        slotoff = SlotOffAlgorithm(substrate, [chain_app])

        # Slot 0: class (0, edge-a) takes everything it can get.
        first = [_request(i, 0, "edge-a") for i in range(10)]
        result0 = slotoff.run_slot(0, first)
        accepted0 = {d.request.id for d in result0.decisions if d.accepted}
        assert accepted0

        # Slot 1: class (0, edge-b) floods in; quantile water-filling
        # forces the classes to share, shrinking edge-a's quota.
        second = [_request(100 + i, 1, "edge-b") for i in range(10)]
        result1 = slotoff.run_slot(1, second)
        accepted1 = {d.request.id for d in result1.decisions if d.accepted}
        assert accepted1, "the new class must get a share"
        # Some prior allocation may be dropped; if so it must come from
        # the ongoing set, and it must leave the active set.
        for dropped in result1.dropped:
            assert dropped.id in accepted0
            assert dropped.id not in slotoff.active

    def test_drops_surface_as_preemptions_in_simulator(self, chain_app):
        substrate = make_line_substrate(node_capacity=100.0, link_capacity=20.0)
        slotoff = SlotOffAlgorithm(substrate, [chain_app])
        requests = [_request(i, 0, "edge-a") for i in range(10)]
        requests += [_request(100 + i, 1, "edge-b") for i in range(10)]
        result = simulate(slotoff, requests, 4)
        # Every request got exactly one decision despite re-solving.
        assert len(result.decisions) == 20
        # Preempted ids, if any, refer to previously accepted requests.
        for request, slot in result.preemptions:
            decision = result.decision_by_id[request.id]
            assert decision.accepted
            assert slot > request.arrival

    def test_departures_free_quota_for_later_arrivals(self, chain_app):
        substrate = make_line_substrate(node_capacity=100.0, link_capacity=20.0)
        slotoff = SlotOffAlgorithm(substrate, [chain_app])
        # Saturate with short requests, then check later arrivals succeed.
        early = [_request(i, 0, "edge-a", duration=2) for i in range(10)]
        late = [_request(100 + i, 3, "edge-a", duration=2) for i in range(3)]
        result = simulate(slotoff, early + late, 6)
        late_accepted = [
            d for d in result.decisions
            if d.request.id >= 100 and d.accepted
        ]
        assert len(late_accepted) == 3
