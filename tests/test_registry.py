"""Tests for the pluggable component registries (repro.registry)."""

import pytest

from repro.errors import (
    ApplicationError,
    RegistryError,
    SimulationError,
    TopologyError,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import (
    algorithms_need_plan,
    build_scenario,
    make_algorithm,
)
from repro.registry import (
    Registry,
    algorithm_registry,
    app_mix_registry,
    efficiency_registry,
    register_algorithm,
    register_topology,
    topology_registry,
    trace_registry,
)
from repro.substrate.topologies import TOPOLOGY_BUILDERS, make_topology


class TestRegistryCore:
    def test_decorator_registers_entry_with_metadata(self):
        registry = Registry("widget")

        @registry.register("W1", description="a widget", color="blue")
        def make_w1():
            return "w1"

        entry = registry.get("W1")
        assert entry.name == "W1"
        assert entry.description == "a widget"
        assert entry.metadata["color"] == "blue"
        assert registry.create("W1") == "w1"
        assert "W1" in registry
        assert registry.names() == ("W1",)

    def test_docstring_first_line_is_default_description(self):
        registry = Registry("widget")

        @registry.register("W2")
        def make_w2():
            """Second widget.

            More detail.
            """

        assert registry.get("W2").description == "Second widget."

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("DUP")(lambda: None)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("DUP")(lambda: None)

    def test_duplicate_builtin_algorithm_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_algorithm("OLIVE")(lambda scenario: None)

    def test_unknown_name_error_lists_known_entries(self):
        registry = Registry("widget")
        registry.register("A")(lambda: None)
        registry.register("B")(lambda: None)
        with pytest.raises(RegistryError, match=r"unknown widget 'C'") as err:
            registry.get("C")
        assert "['A', 'B']" in str(err.value)

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("X")(lambda: None)
        registry.unregister("X")
        assert "X" not in registry
        with pytest.raises(RegistryError, match="cannot unregister"):
            registry.unregister("X")

    def test_domain_error_classes(self):
        with pytest.raises(SimulationError):
            algorithm_registry.get("NOPE")
        with pytest.raises(TopologyError):
            topology_registry.get("NOPE")
        with pytest.raises(SimulationError):
            trace_registry.get("NOPE")
        with pytest.raises(ApplicationError):
            app_mix_registry.get("NOPE")
        with pytest.raises(SimulationError):
            efficiency_registry.get("NOPE")

    def test_factory_view_is_live_and_readonly(self):
        @register_topology("TinyTestNet", description="test-only")
        def make_tiny():
            from tests.conftest import make_line_substrate

            return make_line_substrate()

        try:
            assert "TinyTestNet" in TOPOLOGY_BUILDERS
            assert TOPOLOGY_BUILDERS["TinyTestNet"] is make_tiny
            assert make_topology("TinyTestNet").name == "line4"
            with pytest.raises(TypeError):
                TOPOLOGY_BUILDERS["TinyTestNet"] = make_tiny
        finally:
            topology_registry.unregister("TinyTestNet")
        assert "TinyTestNet" not in TOPOLOGY_BUILDERS


class TestBuiltinEntries:
    def test_builtin_algorithms_registered(self):
        assert set(algorithm_registry.names()) >= {
            "OLIVE", "QUICKG", "FULLG", "SLOTOFF", "OLIVE-W", "OLIVE-RE",
        }

    def test_needs_plan_metadata(self):
        assert algorithm_registry.get("OLIVE").needs_plan
        assert algorithm_registry.get("OLIVE-W").needs_plan
        assert algorithm_registry.get("OLIVE-RE").needs_plan
        assert not algorithm_registry.get("QUICKG").needs_plan
        assert not algorithm_registry.get("FULLG").needs_plan
        assert not algorithm_registry.get("SLOTOFF").needs_plan

    def test_algorithms_need_plan_helper(self):
        assert algorithms_need_plan(["OLIVE", "QUICKG"])
        assert algorithms_need_plan(["OLIVE-W"])
        assert not algorithms_need_plan(["QUICKG", "SLOTOFF"])
        with pytest.raises(SimulationError, match="unknown algorithm"):
            algorithms_need_plan(["MAGIC"])

    def test_default_metrics_metadata(self):
        entry = algorithm_registry.get("OLIVE")
        assert "rejection_rate" in entry.metrics
        assert "total_cost" in entry.metrics

    def test_builtin_topologies_traces_mixes(self):
        assert set(topology_registry.names()) == {
            "Iris", "CittaStudi", "5GEN", "100N150E",
            "tiered-x", "waxman", "prefattach", "caida-x",
        }
        assert set(trace_registry.names()) >= {
            "mmpp", "caida", "diurnal",
            "pareto-burst", "ingress-hotspot", "capacity-probe",
        }
        assert set(app_mix_registry.names()) >= {
            "standard", "chain", "tree", "accelerator", "gpu",
            "tenants", "tenants-premium", "scale",
        }
        assert set(efficiency_registry.names()) >= {"uniform", "gpu"}


class TestScenarioDispatch:
    """build_scenario resolves every component through the registries."""

    def test_unknown_topology_names_registry_and_keys(self):
        config = ExperimentConfig.test(topology="Atlantis")
        with pytest.raises(TopologyError, match="unknown topology") as err:
            build_scenario(config, seed=0)
        assert "Iris" in str(err.value)

    def test_unknown_app_mix_names_registry_and_keys(self):
        config = ExperimentConfig.test(app_mix="hexagon")
        with pytest.raises(ApplicationError, match="unknown app mix") as err:
            build_scenario(config, seed=0, with_plan=False)
        assert "standard" in str(err.value)

    def test_unknown_trace_kind_names_registry_and_keys(self):
        config = ExperimentConfig.test(trace_kind="pcap")
        with pytest.raises(SimulationError, match="unknown trace kind") as err:
            build_scenario(config, seed=0, with_plan=False)
        assert "mmpp" in str(err.value)

    def test_unknown_efficiency_names_registry_and_keys(self):
        config = ExperimentConfig.test(efficiency="quantum")
        with pytest.raises(
            SimulationError, match="unknown efficiency model"
        ) as err:
            build_scenario(config, seed=0, with_plan=False)
        assert "uniform" in str(err.value)

    def test_unknown_algorithm_names_registry_and_keys(self, test_scenario):
        with pytest.raises(SimulationError, match="unknown algorithm") as err:
            make_algorithm("MAGIC", test_scenario)
        assert "OLIVE" in str(err.value)

    def test_diurnal_trace_kind_is_config_reachable(self):
        config = ExperimentConfig.test(
            trace_kind="diurnal", history_slots=60, online_slots=12,
            measure_start=2, measure_stop=10,
        )
        scenario = build_scenario(config, seed=0, with_plan=False)
        assert scenario.trace.requests

    def test_explicit_efficiency_choice(self):
        config = ExperimentConfig.test(efficiency="gpu")
        scenario = build_scenario(config, seed=0, with_plan=False)
        assert scenario.efficiency.__class__.__name__ == "GpuAwareEfficiency"


class TestPlannedVariants:
    """OLIVE-W / OLIVE-RE are first-class registry algorithms."""

    @pytest.fixture(scope="class")
    def tiny_config(self):
        return ExperimentConfig.test(
            history_slots=60, online_slots=12, measure_start=2,
            measure_stop=10,
        )

    def test_windowed_variant_builds_and_runs(self, tiny_config):
        from repro.api import run_single

        scenario, results = run_single(tiny_config, 0, ["OLIVE-W"])
        # needs_plan metadata ⇒ the scenario-level plan was computed too.
        assert not scenario.plan.is_empty
        assert results["OLIVE-W"].algorithm_name == "OLIVE-W"

    def test_replanning_variant_seeds_from_scenario_plan(self, tiny_config):
        scenario = build_scenario(tiny_config, seed=0)
        algorithm = make_algorithm("OLIVE-RE", scenario)
        assert algorithm.name == "OLIVE-RE"
        # The offline plan seeds the replanner instead of starting empty.
        assert algorithm.plan is scenario.plan
