"""Decision-equivalence: the incremental embedding fast path must produce
bit-identical :class:`~repro.sim.engine.SimulationResult` values to the
pre-fast-path scalar engine (:mod:`repro.core.greedy_reference`).

These tests are the enforcement half of the fast-path contract: whole
simulations run twice — once through the memoized/vectorized path, once
through the frozen reference — and every decision, embedding, preemption
and per-slot metric array must match exactly (``==`` on floats, not
``approx``). The benchmark suite's ``test_bench_hotpath.py`` measures the
speed side of the same contract at benchmark scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.quickg import make_quickg
from repro.core import greedy_reference
from repro.core.greedy import GreedyContext, greedy_embed
from repro.core.olive import OliveAlgorithm
from repro.core.residual import ResidualState
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.sim.engine import SimulationResult, simulate


def assert_results_identical(
    fast: SimulationResult, reference: SimulationResult
) -> None:
    """Bitwise equality of everything except wall-clock runtime."""
    assert fast.algorithm_name == reference.algorithm_name
    assert fast.num_slots == reference.num_slots
    assert fast.num_requests == reference.num_requests
    assert len(fast.decisions) == len(reference.decisions)
    for ours, theirs in zip(fast.decisions, reference.decisions):
        assert ours == theirs  # Decision equality covers the embedding
    assert fast.preemptions == reference.preemptions
    assert np.array_equal(fast.requested_demand, reference.requested_demand)
    assert np.array_equal(fast.allocated_demand, reference.allocated_demand)
    assert np.array_equal(fast.resource_cost, reference.resource_cost)


def _run_both(scenario, make_algorithm):
    online = scenario.online_requests()
    slots = scenario.config.online_slots
    fast = simulate(make_algorithm(True), online, slots)
    reference = simulate(make_algorithm(False), online, slots)
    return fast, reference


class TestEngineEquivalence:
    @pytest.mark.parametrize("utilization", [0.6, 1.0, 1.4])
    def test_quickg_bit_identical(self, utilization):
        scenario = build_scenario(
            ExperimentConfig.test(utilization=utilization), seed=1,
            with_plan=False,
        )
        fast, reference = _run_both(
            scenario,
            lambda fast_greedy: make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
        )
        assert_results_identical(fast, reference)

    @pytest.mark.parametrize("utilization", [1.0, 1.4])
    def test_olive_bit_identical(self, utilization):
        scenario = build_scenario(
            ExperimentConfig.test(utilization=utilization), seed=2
        )
        fast, reference = _run_both(
            scenario,
            lambda fast_greedy: OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
        )
        assert_results_identical(fast, reference)

    def test_olive_iris_bit_identical(self):
        scenario = build_scenario(
            ExperimentConfig.test(topology="Iris"), seed=3
        )
        fast, reference = _run_both(
            scenario,
            lambda fast_greedy: OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
        )
        assert_results_identical(fast, reference)

    def test_gpu_two_host_bit_identical(self):
        """The generalized two-group greedy (GPU scenario, Fig. 10)."""
        scenario = build_scenario(
            ExperimentConfig.test(gpu_scenario=True, app_mix="gpu"), seed=4
        )
        fast, reference = _run_both(
            scenario,
            lambda fast_greedy: OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
        )
        assert_results_identical(fast, reference)


class TestGreedyEmbedEquivalence:
    """Per-call equivalence of greedy_embed against the reference,
    including after interleaved allocations (cache invalidation)."""

    def test_interleaved_allocations_keep_paths_fresh(self):
        scenario = build_scenario(
            ExperimentConfig.test(utilization=1.4), seed=5, with_plan=False
        )
        substrate = scenario.substrate
        efficiency = scenario.efficiency
        fast_res = ResidualState(substrate)
        ref_res = ResidualState(substrate)
        context = GreedyContext(substrate, efficiency, fast_res)
        from repro.core.embedding import compute_loads

        checked = 0
        for request in scenario.online_requests()[:400]:
            app = scenario.apps[request.app_index]
            got = context.embed(request, app, allow_split_groups=False)
            expected = greedy_reference.greedy_embed(
                request, app, substrate, efficiency, ref_res,
                allow_split_groups=False,
            )
            if expected is None:
                assert got is None
                continue
            embedding, loads = got
            assert embedding == expected
            expected_loads = compute_loads(
                app, request.demand, expected, substrate, efficiency
            )
            assert loads.nodes == expected_loads.nodes
            assert loads.links == expected_loads.links
            # Allocate on both sides so residuals (and hence the path
            # cache's dirty log) evolve identically.
            fast_res.allocate(loads)
            ref_res.allocate(expected_loads)
            checked += 1
        assert checked > 50  # the scenario must actually exercise accepts

    def test_dirty_log_compaction_preserves_equivalence(self, monkeypatch):
        """A tiny log bound forces constant compaction; entries whose
        cursors predate the base must re-anchor instead of delta-sweeping,
        and decisions must stay identical throughout."""
        monkeypatch.setattr(ResidualState, "MAX_DIRTY_LOG", 8)
        scenario = build_scenario(
            ExperimentConfig.test(utilization=1.2), seed=7, with_plan=False
        )
        fast, reference = _run_both(
            scenario,
            lambda fast_greedy: make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
        )
        assert_results_identical(fast, reference)

    def test_heterogeneous_link_costs_disable_band_sharing(self):
        """Tree reuse across loads is only proven exact for uniform link
        costs; a mixed-cost substrate must recompute per lookup (and
        still match the reference)."""
        from tests.conftest import make_line_substrate
        from repro.substrate.network import substrate_index

        substrate = make_line_substrate()
        # Give one link a different cost so the uniformity check trips.
        attrs = substrate.links[("core", "transport")]
        substrate.links[("core", "transport")] = type(attrs)(
            tier=attrs.tier, capacity=attrs.capacity, cost=2.5
        )
        substrate.__dict__.pop("_index", None)  # rebuild the cached index
        residual = ResidualState(substrate)
        context = GreedyContext(substrate, None, residual)
        assert context.paths.band_sharing is False
        index = substrate_index(substrate)
        source = index.node_index["edge-a"]
        context.paths.lookup(source, 5.0)
        context.paths.lookup(source, 7.0)
        # No reuse across loads: every lookup on a mixed-cost substrate
        # runs a fresh Dijkstra.
        assert context.paths.misses == 2

    def test_uniform_costs_enable_band_sharing(self):
        scenario = build_scenario(
            ExperimentConfig.test(), seed=8, with_plan=False
        )
        residual = ResidualState(scenario.substrate)
        context = GreedyContext(
            scenario.substrate, scenario.efficiency, residual
        )
        assert context.paths.band_sharing is True
        source = residual.index.node_index[scenario.substrate.edge_nodes[0]]
        context.paths.lookup(source, 5.0)
        context.paths.lookup(source, 7.0)
        assert context.paths.hits == 1 and context.paths.misses == 1

    def test_transient_context_wrapper_matches(self):
        scenario = build_scenario(
            ExperimentConfig.test(), seed=6, with_plan=False
        )
        residual = ResidualState(scenario.substrate)
        request = scenario.online_requests()[0]
        app = scenario.apps[request.app_index]
        embedding = greedy_embed(
            request, app, scenario.substrate, scenario.efficiency, residual
        )
        expected = greedy_reference.greedy_embed(
            request, app, scenario.substrate, scenario.efficiency,
            ResidualState(scenario.substrate),
        )
        assert embedding == expected
