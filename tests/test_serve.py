"""Tests for the serving layer (repro.serve) and its facade entry points."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import Experiment
from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm
from repro.errors import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.registry import admission_policy_registry, register_admission_policy
from repro.serve import (
    AdmissionPolicy,
    EmbedderService,
    MetricsStream,
    TokenBucket,
    poisson_offers,
)
from repro.sim.session import SimulationSession
from repro.utils.rng import make_rng
from repro.workload.request import Request


def _request(rid, arrival=0, demand=1.0, duration=3, ingress="edge-a", app=0):
    return Request(
        arrival=arrival, id=rid, app_index=app, ingress=ingress,
        demand=demand, duration=duration,
    )


def _service(line_substrate, chain_app, num_slots=10, **kwargs):
    session = SimulationSession(
        make_quickg(line_substrate, [chain_app]), [], num_slots
    )
    return EmbedderService(session, **kwargs)


class TestOffer:
    def test_offer_returns_synchronous_decision(
        self, line_substrate, chain_app
    ):
        service = _service(line_substrate, chain_app)
        decision = service.offer(_request(1, arrival=0, demand=2.0))
        assert decision.accepted
        assert service.current_slot == 0  # micro-batch: slot stays open
        assert service.metrics.offers == 1

    def test_same_slot_offers_share_one_slot(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app)
        for rid in range(3):
            service.offer(_request(rid, arrival=2))
        assert service.current_slot == 2
        report = service.tick()  # closes slot 2
        assert len(report.decisions) == 3
        assert service.current_slot == 3

    def test_future_offer_drains_idle_slots(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app)
        service.offer(_request(1, arrival=0, duration=2))
        seen = []
        service.metrics.subscribe(lambda m: seen.append(m.slot))
        decision = service.offer(_request(2, arrival=5))
        assert decision.accepted
        assert service.current_slot == 5
        # Slots 1-4 were drained on the way (their departures happened).
        assert seen == [1, 2, 3, 4, 5]

    def test_late_and_out_of_horizon_offers_fail(
        self, line_substrate, chain_app
    ):
        service = _service(line_substrate, chain_app)
        service.advance_to(4)
        with pytest.raises(SimulationError, match="already at slot 4"):
            service.offer(_request(1, arrival=2))
        with pytest.raises(SimulationError, match="horizon"):
            service.offer(_request(2, arrival=10))
        service.finish()
        with pytest.raises(SimulationError, match="ended"):
            service.offer(_request(3, arrival=9))

    def test_offer_batch(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app)
        decisions = service.offer_batch(
            [_request(rid, arrival=1) for rid in range(4)]
        )
        assert len(decisions) == 4 and all(d.accepted for d in decisions)
        assert service.current_slot == 1

    def test_finish_matches_session_result(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app, num_slots=6)
        service.offer(_request(1, arrival=0, demand=2.0, duration=2))
        result = service.finish()
        assert result.num_requests == 1
        assert result.allocated_demand[0] == pytest.approx(2.0)
        assert result.allocated_demand[3] == pytest.approx(0.0)
        assert service.is_done

    def test_batch_algorithms_are_rejected(self, line_substrate, chain_app):
        session = SimulationSession(
            SlotOffAlgorithm(line_substrate, [chain_app]), [], 5
        )
        with pytest.raises(SimulationError, match="batch shape"):
            EmbedderService(session)

    def test_requires_a_session(self):
        with pytest.raises(SimulationError, match="SimulationSession"):
            EmbedderService(object())


class TestOfferMany:
    """offer_many must be decision-bit-identical to sequential offer()."""

    def _traffic(self, scenario, slots, seed):
        rng = make_rng(seed)
        requests = []
        for _, batch in poisson_offers(
            scenario, slots, rng, rate_per_node=1.0
        ):
            requests.extend(batch)
        return requests

    @pytest.mark.parametrize(
        "admission,params",
        [
            ("always", None),
            # Stateful policies: decide() order must match exactly.
            ("token-bucket", {"rate": 2.0, "burst": 3.0}),
            ("utilization-guard", {"threshold": 0.4}),
        ],
    )
    def test_bit_identical_to_sequential_offers(
        self, test_scenario, admission, params
    ):
        from repro.experiments.scenario import make_algorithm

        slots = min(5, test_scenario.config.online_slots)
        requests = self._traffic(test_scenario, slots, seed=11)
        assert len(requests) > 4

        services = []
        for _ in range(2):
            session = SimulationSession(
                make_algorithm("OLIVE", test_scenario),
                [],
                test_scenario.config.online_slots,
            )
            services.append(
                EmbedderService(
                    session, admission=admission, admission_params=params
                )
            )
        sequential, batched = services

        one_by_one = [sequential.offer(r) for r in requests]
        many = batched.offer_many(requests)

        assert [d.accepted for d in many] == [
            d.accepted for d in one_by_one
        ]
        assert [d.embedding for d in many] == [
            d.embedding for d in one_by_one
        ]
        assert batched.metrics.offers == sequential.metrics.offers
        assert batched.metrics.shed == sequential.metrics.shed
        final_many = batched.finish()
        final_one = sequential.finish()
        assert final_many.decisions == final_one.decisions
        assert np.array_equal(
            final_many.allocated_demand, final_one.allocated_demand
        )

    def test_offer_many_spans_slots(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app)
        requests = [
            _request(1, arrival=0), _request(2, arrival=0),
            _request(3, arrival=2), _request(4, arrival=2),
            _request(5, arrival=2),
        ]
        decisions = service.offer_many(requests)
        assert [d.request.id for d in decisions] == [1, 2, 3, 4, 5]
        assert all(d.accepted for d in decisions)
        assert service.current_slot == 2  # last run's slot stays open
        assert service.metrics.offers == 5

    def test_offer_many_empty(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app)
        assert service.offer_many([]) == []


class TestBackpressure:
    def test_schedule_bounded_queue(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app, max_pending=2)
        assert service.schedule(_request(1, arrival=3))
        assert service.schedule(_request(2, arrival=4))
        assert not service.schedule(_request(3, arrival=5))  # shed
        assert service.pending_count == 2
        assert service.metrics.shed == 1
        assert service.recent_shed[-1][0] == 3
        # Draining the queue reopens it.
        service.advance_to(5)
        assert service.schedule(_request(4, arrival=6))

    def test_queue_bound_admission_policy(self, line_substrate, chain_app):
        service = _service(
            line_substrate, chain_app,
            admission="queue-bound", admission_params={"max_pending": 1},
        )
        service.schedule(_request(1, arrival=5))
        shed = service.offer(_request(2, arrival=0))
        assert not shed.accepted
        assert service.metrics.shed == 1
        # The algorithm never saw the shed offer.
        service.tick()
        assert service.session.result().num_requests == 0


class TestAdmissionPolicies:
    def test_token_bucket_is_deterministic(self, line_substrate, chain_app):
        service = _service(
            line_substrate, chain_app,
            admission="token-bucket",
            admission_params={"rate": 1.0, "burst": 2.0},
        )
        outcomes = [
            service.offer(_request(rid, arrival=0, demand=0.1)).accepted
            for rid in range(4)
        ]
        assert outcomes == [True, True, False, False]  # burst of 2, then dry
        service.advance_to(1)
        assert service.offer(_request(9, arrival=1, demand=0.1)).accepted

    def test_utilization_guard(self, line_substrate, chain_app):
        service = _service(
            line_substrate, chain_app,
            admission="utilization-guard",
            admission_params={"threshold": 0.01},
        )
        assert service.offer(_request(1, arrival=0, demand=50.0)).accepted
        assert service.utilization() > 0.01
        shed = service.offer(_request(2, arrival=0, demand=1.0))
        assert not shed.accepted
        assert "utilization" in service.recent_shed[-1][2]

    def test_policy_instances_and_bad_params(self, line_substrate, chain_app):
        service = _service(
            line_substrate, chain_app, admission=TokenBucket(rate=2.0)
        )
        assert service.offer(_request(1, arrival=0)).accepted
        with pytest.raises(SimulationError, match="admission_params"):
            _service(
                line_substrate, chain_app,
                admission=TokenBucket(rate=2.0),
                admission_params={"rate": 1.0},
            )
        with pytest.raises(SimulationError, match="unknown admission policy"):
            _service(line_substrate, chain_app, admission="nope")

    def test_custom_policy_via_registry(self, line_substrate, chain_app):
        class OddIdsOnly(AdmissionPolicy):
            def decide(self, request, service):
                return None if request.id % 2 else "even id"

        register_admission_policy(
            "odd-ids", description="test policy"
        )(OddIdsOnly)
        try:
            service = _service(line_substrate, chain_app, admission="odd-ids")
            assert service.offer(_request(1, arrival=0)).accepted
            assert not service.offer(_request(2, arrival=0)).accepted
        finally:
            admission_policy_registry.unregister("odd-ids")


class TestMetricsStream:
    def test_counters_and_percentiles(self):
        stream = MetricsStream(window=4)
        for latency, accepted in (
            (0.001, True), (0.002, True), (0.003, False), (0.004, True),
        ):
            stream.record_offer(accepted, latency)
        stream.record_shed()
        snapshot = stream.snapshot(slot=7, utilization=0.5, pending=3)
        assert snapshot.offers == 5
        assert snapshot.accepted == 3
        assert snapshot.rejected == 1
        assert snapshot.shed == 1
        assert snapshot.acceptance_rate == pytest.approx(3 / 5)
        assert snapshot.rolling_acceptance_rate == pytest.approx(3 / 4)
        # Nearest-rank: p50 of 4 samples is rank ceil(0.5*4)-1 = 1 (2ms),
        # not the rounded-interpolation rank the old bug produced (3ms).
        assert snapshot.p50_latency_ms == pytest.approx(2.0)
        assert snapshot.p99_latency_ms == pytest.approx(4.0)
        assert snapshot.pending == 3 and snapshot.slot == 7
        assert "p99" in snapshot.describe()

    def test_empty_stream_snapshot(self):
        snapshot = MetricsStream().snapshot(slot=0, utilization=0.0, pending=0)
        assert snapshot.acceptance_rate == 1.0
        assert snapshot.p99_latency_ms == 0.0

    def test_subscribers_fire_per_closed_slot(
        self, line_substrate, chain_app
    ):
        service = _service(line_substrate, chain_app, num_slots=4)
        slots = []
        service.metrics.subscribe(lambda m: slots.append(m.slot))
        service.finish()
        assert slots == [1, 2, 3, 4]
        assert service.metrics.latest.slot == 4

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MetricsStream(window=0)

    @given(
        values=st.lists(
            st.floats(
                min_value=0.0, max_value=1e3,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=64,
        ),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_percentile_matches_numpy_inverted_cdf(self, values, fraction):
        """_percentile is exactly numpy's nearest-rank (inverted_cdf)."""
        from repro.serve.metrics import _percentile

        expected = float(
            np.quantile(values, fraction, method="inverted_cdf")
        )
        assert _percentile(sorted(values), fraction) == expected


class TestServiceSnapshot:
    def test_checkpoint_and_restore(self, line_substrate, chain_app):
        service = _service(line_substrate, chain_app)
        service.offer(_request(1, arrival=0, duration=9, demand=2.0))
        service.advance_to(3)
        snapshot = service.snapshot()
        live = service
        live.offer(_request(2, arrival=5))
        final = live.finish()

        resumed = EmbedderService.restore(snapshot)
        assert resumed.current_slot == 3
        resumed.offer(_request(2, arrival=5))
        replayed = resumed.finish()
        assert replayed.decisions == final.decisions


class TestFacadeEntryPoints:
    @pytest.fixture(scope="class")
    def experiment(self):
        return Experiment(ExperimentConfig.test()).algorithms("QUICKG")

    def test_stream_rejects_sweeps(self, experiment):
        swept = experiment.sweep("utilization", (0.6, 1.0))
        with pytest.raises(SimulationError, match="sweep"):
            swept.stream()

    def test_stream_carries_events(self, experiment):
        session = experiment.events("link-flap").stream(seed=5)
        result = session.run()
        assert result.num_events > 0

    def test_serve_builds_a_live_service(self, experiment):
        service = experiment.serve(
            seed=1, admission="queue-bound",
            admission_params={"max_pending": 128},
        )
        assert service.scenario is not None
        assert service.pending_count == 0  # live traffic only by default
        rng = make_rng(1)
        offered = 0
        for slot, batch in poisson_offers(
            service.scenario, 3, rng, rate_per_node=0.5
        ):
            for request in batch:
                offered += 1
                service.offer(request)
            service.advance_to(slot + 1)
        assert service.metrics.offers == offered > 0
        result = service.finish()
        assert result.num_requests == offered

    def test_serve_preloads_trace_on_request(self, experiment):
        service = experiment.serve(seed=1, preload_trace=True)
        assert service.pending_count > 0

    def test_stream_unknown_algorithm(self, experiment):
        with pytest.raises(SimulationError, match="unknown algorithm"):
            experiment.stream(algorithm="NOPE")


class TestPoissonOffers:
    """The live-traffic generator behind the serve target."""

    def test_batches_are_well_formed(self, test_scenario):
        nodes = set(test_scenario.substrate.nodes)
        num_apps = len(test_scenario.apps)
        next_id = 10_000_000  # LIVE_ID_BASE
        total = 0
        for slot, batch in poisson_offers(test_scenario, 5, make_rng(7)):
            assert 0 <= slot < 5
            for request in batch:
                assert request.arrival == slot
                assert request.id == next_id  # consecutive, trace-disjoint
                next_id += 1
                assert request.ingress in nodes
                assert 0 <= request.app_index < num_apps
                assert request.demand >= 0.1
                assert request.duration >= 1
                total += 1
        assert total > 0

    def test_deterministic_under_seed(self, test_scenario):
        first = list(poisson_offers(test_scenario, 4, make_rng(3)))
        second = list(poisson_offers(test_scenario, 4, make_rng(3)))
        assert first == second

    def test_start_slot_and_id_base(self, test_scenario):
        batches = list(
            poisson_offers(
                test_scenario, 3, make_rng(1), start_slot=7, id_base=500
            )
        )
        assert [slot for slot, _ in batches] == [7, 8, 9]
        assert all(
            request.arrival == slot
            for slot, batch in batches
            for request in batch
        )
        ids = [request.id for _, batch in batches for request in batch]
        assert ids == list(range(500, 500 + len(ids)))

    def test_default_rate_is_config_pressure_per_app(self, test_scenario):
        """The default rate equals arrivals_per_node / num_apps exactly:
        passing it explicitly reproduces the same draws from the same
        rng."""
        explicit = test_scenario.config.arrivals_per_node / len(
            test_scenario.apps
        )
        implicit_draw = list(poisson_offers(test_scenario, 3, make_rng(9)))
        explicit_draw = list(
            poisson_offers(
                test_scenario, 3, make_rng(9), rate_per_node=explicit
            )
        )
        assert implicit_draw == explicit_draw

    def test_nonpositive_rate_rejected(self, test_scenario):
        with pytest.raises(SimulationError, match="rate must be positive"):
            list(
                poisson_offers(
                    test_scenario, 2, make_rng(0), rate_per_node=0.0
                )
            )


class TestServeCLI:
    def test_cli_serve_smoke(self, capsys):
        from repro.experiments.__main__ import main

        code = main([
            "serve", "--scale", "test", "--topology", "CittaStudi",
            "--algo", "QUICKG", "--admission", "token-bucket",
            "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving QUICKG" in out
        assert "done:" in out
