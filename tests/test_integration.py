"""Integration tests: end-to-end pipeline invariants and paper-shape checks.

These run the full Alg. 1 pipeline (trace → aggregation → PLAN-VNE → online
embedding) on the small shared scenario and assert the properties the paper
claims, at test scale:

* feasibility: the substrate capacity constraints (Eq. 15/18) hold at every
  slot, reconstructed independently from the recorded decisions;
* plan quality: OLIVE's rejection rate is no worse than QUICKG's;
* determinism: a seed fully determines the simulation.
"""

import numpy as np
import pytest

from repro.core.embedding import compute_loads
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import run_single
from repro.experiments.scenario import build_scenario, make_algorithm
from repro.sim.engine import simulate
from repro.sim.metrics import rejection_rate


def _verify_capacity_feasibility(scenario, result):
    """Recompute per-slot loads from decisions; assert Eq. 15 at every slot.

    The reconstruction is independent of the algorithms' own residual
    bookkeeping, so a bookkeeping bug cannot hide itself.
    """
    num_slots = result.num_slots
    preempted_at = {r.id: t for r, t in result.preemptions}
    node_load = {v: np.zeros(num_slots) for v in scenario.substrate.nodes}
    link_load = {l: np.zeros(num_slots) for l in scenario.substrate.links}
    for decision in result.decisions:
        if not decision.accepted or decision.embedding is None:
            continue
        request = decision.request
        start = request.arrival
        stop = min(request.departure, num_slots)
        stop = min(stop, preempted_at.get(request.id, num_slots))
        if start >= stop:
            continue
        loads = compute_loads(
            scenario.apps[request.app_index],
            request.demand,
            decision.embedding,
            scenario.substrate,
            scenario.efficiency,
        )
        for node, load in loads.nodes.items():
            node_load[node][start:stop] += load
        for link, load in loads.links.items():
            link_load[link][start:stop] += load
    tolerance = 1.000001
    for node, series in node_load.items():
        capacity = scenario.substrate.node_capacity(node)
        assert series.max() <= capacity * tolerance, (
            f"node {node} overloaded: {series.max()} > {capacity}"
        )
    for link, series in link_load.items():
        capacity = scenario.substrate.link_capacity(link)
        assert series.max() <= capacity * tolerance, (
            f"link {link} overloaded: {series.max()} > {capacity}"
        )


@pytest.fixture(scope="module")
def overloaded_run():
    """A 120 %-utilization run where capacity pressure is real."""
    config = ExperimentConfig.test(utilization=1.2)
    scenario, results = run_single(
        config, seed=3, algorithms=("OLIVE", "QUICKG", "FULLG")
    )
    return config, scenario, results


class TestFeasibility:
    @pytest.mark.parametrize("name", ["OLIVE", "QUICKG", "FULLG"])
    def test_capacity_never_violated(self, overloaded_run, name):
        _, scenario, results = overloaded_run
        _verify_capacity_feasibility(scenario, results[name])

    def test_unsplittable_embeddings(self, overloaded_run):
        """Each accepted request maps every VNF to exactly one node."""
        _, scenario, results = overloaded_run
        for decision in results["OLIVE"].decisions:
            if not decision.accepted:
                continue
            app = scenario.apps[decision.request.app_index]
            assert set(decision.embedding.node_map) == {
                vnf.id for vnf in app.vnfs
            }

    def test_theta_pinned_to_ingress(self, overloaded_run):
        """Eq. 11: the root is always mapped to the request's ingress."""
        _, scenario, results = overloaded_run
        for name in ("OLIVE", "QUICKG", "FULLG"):
            for decision in results[name].decisions:
                if decision.accepted:
                    assert (
                        decision.embedding.node_map[0]
                        == decision.request.ingress
                    )

    def test_link_paths_connect_endpoints(self, overloaded_run):
        _, scenario, results = overloaded_run
        for decision in results["OLIVE"].decisions:
            if not decision.accepted:
                continue
            app = scenario.apps[decision.request.app_index]
            embedding = decision.embedding
            for vlink in app.links:
                node = embedding.node_map[vlink.tail]
                for link in embedding.link_paths[vlink.key]:
                    a, b = link
                    assert node in (a, b), "path is not contiguous"
                    node = b if node == a else a
                assert node == embedding.node_map[vlink.head]


class TestPaperShape:
    def test_olive_beats_quickg_on_rejection(self, overloaded_run):
        config, scenario, results = overloaded_run
        window = config.measure_window
        olive = rejection_rate(results["OLIVE"], window)
        quickg = rejection_rate(results["QUICKG"], window)
        assert olive <= quickg + 1e-9

    def test_only_olive_produces_planned_allocations(self, overloaded_run):
        _, _, results = overloaded_run
        assert any(d.planned for d in results["OLIVE"].decisions)
        assert not any(d.planned for d in results["QUICKG"].decisions)

    def test_preemptions_only_hit_non_planned(self, overloaded_run):
        """A preempted request's original decision was never planned."""
        _, _, results = overloaded_run
        result = results["OLIVE"]
        for request, _slot in result.preemptions:
            decision = result.decision_by_id[request.id]
            assert not decision.planned


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        config = ExperimentConfig.test(utilization=1.2)
        outcomes = []
        for _ in range(2):
            scenario = build_scenario(config, seed=11)
            algorithm = make_algorithm("OLIVE", scenario)
            result = simulate(
                algorithm, scenario.online_requests(), config.online_slots
            )
            outcomes.append(
                [
                    (d.request.id, d.accepted, d.planned, d.borrowed)
                    for d in result.decisions
                ]
            )
        assert outcomes[0] == outcomes[1]


class TestConformance:
    def test_online_demand_conforms_to_history(self, test_scenario):
        """Same process for both phases → the paper's conformance holds."""
        from repro.stats.aggregate import class_demand_series
        from repro.stats.bootstrap import demand_conforms
        from repro.utils.rng import make_rng

        config = test_scenario.config
        history = class_demand_series(
            test_scenario.trace.history_requests(), config.history_slots
        )
        online = class_demand_series(
            test_scenario.trace.online_requests(), config.online_slots
        )
        # Check the busiest class (most observations → sharpest test).
        key = max(history, key=lambda k: history[k].sum())
        if key in online:
            # Wide tolerance: the test trace is short, so we only require
            # the conformance machinery to run and produce a verdict.
            verdict = demand_conforms(
                online[key], history[key], rng=make_rng(0)
            )
            assert verdict in (True, False)
