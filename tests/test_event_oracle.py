"""Differential oracle for the dynamic-event subsystem.

There is no ground truth for scenarios the paper never ran — but there
are *two independent engines* that must agree on every decision: the
incremental fast path (:mod:`repro.core.greedy` with its memoized path
trees and dirty-log invalidation) and the frozen scalar reference
(:mod:`repro.core.greedy_reference`). This module extends the
``test_fastpath_equivalence`` contract to *mutated* substrates: whole
simulations under every registered event profile, run through both
engines, must produce bit-identical results — decisions, embeddings,
preemptions, disruptions and per-slot metric arrays.

This is the hardest test the path cache faces: capacity events flow
through the same dirty log as allocations, so a stale feasibility band
after a failure/recovery would mis-route exactly one request — and show
up here as a divergence.

Since the streaming-session redesign the oracle has a third leg
(:class:`TestSessionOracle`): for every registered algorithm × event
profile, a ``step()``-driven :class:`~repro.sim.session.
SimulationSession` and a session checkpointed at a mid-run slot and
resumed must both be bit-identical to the batch ``simulate()`` run of
the same stream — decisions, preemptions, disruptions, per-slot arrays
and the event tally.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.api import resolve_events
from repro.baselines.quickg import make_quickg
from repro.core.olive import OliveAlgorithm
from repro.core.residual import ResidualState
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.experiments.scenario import make_algorithm
from repro.registry import event_profile_registry
from repro.registry import algorithm_registry
from repro.scenarios.events import (
    EventSchedule,
    LinkFailure,
    LinkRecovery,
    NodeDrain,
    NodeRestore,
)
from repro.sim.engine import simulate
from repro.sim.session import SessionSnapshot, SimulationSession
from tests.test_fastpath_equivalence import assert_results_identical

#: Every registered profile is part of the oracle contract; a new profile
#: registered in repro.scenarios.profiles is picked up automatically.
ALL_PROFILES = event_profile_registry.names()


def _assert_event_results_identical(fast, reference) -> None:
    assert_results_identical(fast, reference)
    assert fast.disruptions == reference.disruptions
    assert fast.disrupted_ids == reference.disrupted_ids
    assert fast.num_events == reference.num_events


def _run_both_with_events(scenario, make_algorithm, schedule):
    online = scenario.online_requests()
    slots = scenario.config.online_slots
    fast = simulate(make_algorithm(True), online, slots, events=schedule)
    reference = simulate(make_algorithm(False), online, slots, events=schedule)
    return fast, reference


class TestEventOracle:
    @pytest.mark.parametrize("profile", ALL_PROFILES)
    @pytest.mark.parametrize("policy", ["preempt", "reroute"])
    def test_quickg_bit_identical_under_profile(self, profile, policy):
        scenario = build_scenario(
            ExperimentConfig.test(utilization=1.4), seed=11, with_plan=False
        )
        schedule = resolve_events(profile, scenario, 11, policy)
        fast, reference = _run_both_with_events(
            scenario,
            lambda fast_greedy: make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
            schedule,
        )
        _assert_event_results_identical(fast, reference)

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    def test_olive_bit_identical_under_profile(self, profile):
        """OLIVE adds plan guidance, borrowing and plan-preemption on top
        of the greedy engines — all of it must survive substrate events."""
        scenario = build_scenario(
            ExperimentConfig.test(utilization=1.4), seed=12
        )
        schedule = resolve_events(profile, scenario, 12, "reroute")
        fast, reference = _run_both_with_events(
            scenario,
            lambda fast_greedy: OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
            schedule,
        )
        _assert_event_results_identical(fast, reference)

    def test_olive_iris_blackout_bit_identical(self):
        """The larger Iris substrate under the most destructive profile."""
        scenario = build_scenario(
            ExperimentConfig.test(topology="Iris", utilization=1.4), seed=13
        )
        schedule = resolve_events("blackout", scenario, 13, "preempt")
        fast, reference = _run_both_with_events(
            scenario,
            lambda fast_greedy: OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
            schedule,
        )
        assert fast.num_events > 0
        _assert_event_results_identical(fast, reference)

    def test_gpu_two_host_bit_identical_under_events(self):
        """The generalized two-group greedy with capacity churn."""
        scenario = build_scenario(
            ExperimentConfig.test(gpu_scenario=True, app_mix="gpu"), seed=14
        )
        schedule = resolve_events("link-flap", scenario, 14, "reroute")
        fast, reference = _run_both_with_events(
            scenario,
            lambda fast_greedy: OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
            schedule,
        )
        _assert_event_results_identical(fast, reference)

    def test_dense_flapping_with_tiny_dirty_log(self, monkeypatch):
        """Constant capacity churn with a pathologically small dirty-log
        bound: compaction must never let a stale band survive an event."""
        monkeypatch.setattr(ResidualState, "MAX_DIRTY_LOG", 8)
        scenario = build_scenario(
            ExperimentConfig.test(utilization=1.2), seed=15, with_plan=False
        )
        links = list(scenario.substrate.links)
        events = []
        for slot in range(1, scenario.config.online_slots - 1):
            link = links[slot % len(links)]
            if slot % 2:
                events.append(LinkFailure(slot=slot, link=link))
            else:
                events.append(LinkRecovery(slot=slot, link=link))
        schedule = EventSchedule(events, policy="reroute")
        fast, reference = _run_both_with_events(
            scenario,
            lambda fast_greedy: make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
            schedule,
        )
        _assert_event_results_identical(fast, reference)

    def test_node_churn_bit_identical(self):
        """Node-capacity events exercise the node-array revision path."""
        scenario = build_scenario(
            ExperimentConfig.test(utilization=1.4), seed=16, with_plan=False
        )
        nodes = list(scenario.substrate.nodes)
        events = []
        for slot in range(2, scenario.config.online_slots - 2, 3):
            node = nodes[slot % len(nodes)]
            events.append(NodeDrain(slot=slot, node=node, fraction=0.3))
            events.append(NodeRestore(slot=slot + 2, node=node))
        schedule = EventSchedule(events, policy="preempt")
        fast, reference = _run_both_with_events(
            scenario,
            lambda fast_greedy: make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency,
                use_fast_greedy=fast_greedy,
            ),
            schedule,
        )
        assert fast.num_events == reference.num_events > 0
        _assert_event_results_identical(fast, reference)

    def test_disruptions_actually_happen_somewhere(self):
        """Meta-check: the oracle must not pass vacuously — at least one
        profile at this scale must produce real disruptions."""
        total = 0
        for profile in ALL_PROFILES:
            scenario = build_scenario(
                ExperimentConfig.test(utilization=1.4), seed=11,
                with_plan=False,
            )
            schedule = resolve_events(profile, scenario, 11, "preempt")
            algorithm = make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency
            )
            result = simulate(
                algorithm, scenario.online_requests(),
                scenario.config.online_slots, events=schedule,
            )
            total += len(result.disruptions)
        assert total > 0

    def test_allocated_demand_never_negative_under_events(self):
        for profile in ALL_PROFILES:
            scenario = build_scenario(
                ExperimentConfig.test(utilization=1.4), seed=17,
                with_plan=False,
            )
            schedule = resolve_events(profile, scenario, 17, "reroute")
            algorithm = make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency
            )
            result = simulate(
                algorithm, scenario.online_requests(),
                scenario.config.online_slots, events=schedule,
            )
            assert np.all(result.allocated_demand >= 0), profile


# -- the session leg ----------------------------------------------------------

#: Every registered algorithm is part of the session-oracle contract.
ALL_ALGORITHMS = algorithm_registry.names()

#: SLOTOFF's per-slot LP dominates wall-clock; a smaller horizon keeps
#: its 6-profile sweep inside the slow tier's budget without weakening
#: the contract (events still fire and strand allocations).
_SESSION_CONFIGS = {
    "SLOTOFF": ExperimentConfig.test(
        online_slots=10, measure_start=2, measure_stop=8, history_slots=60,
        utilization=1.4, arrivals_per_node=4.0, num_quantiles=4,
    ),
    None: ExperimentConfig.test(utilization=1.4),
}

_SESSION_SCENARIOS: dict = {}


def _session_scenario(algorithm_name):
    """One planned scenario per config shape, shared across profiles."""
    config = _SESSION_CONFIGS.get(algorithm_name, _SESSION_CONFIGS[None])
    key = id(config)
    if key not in _SESSION_SCENARIOS:
        _SESSION_SCENARIOS[key] = build_scenario(config, seed=21)
    return _SESSION_SCENARIOS[key]


def _assert_session_identical(streamed, batch) -> None:
    _assert_event_results_identical(streamed, batch)
    assert streamed.requested_demand.tolist() == (
        batch.requested_demand.tolist()
    )


def _check_step_and_restore(algorithm_name: str, profile: str) -> None:
    """Step-driven and checkpoint/restored sessions ≡ batch simulate()."""
    scenario = _session_scenario(algorithm_name)
    slots = scenario.config.online_slots
    online = scenario.online_requests()
    schedule = resolve_events(profile, scenario, 21, "preempt")

    batch = simulate(
        make_algorithm(algorithm_name, scenario), online, slots,
        events=schedule,
    )

    session = SimulationSession(
        make_algorithm(algorithm_name, scenario), online, slots,
        events=schedule,
    )
    # Deterministic "random" checkpoint slot, different per combination.
    split = random.Random(f"{algorithm_name}:{profile}").randrange(
        1, slots - 1
    )
    session.run_until(split)
    snapshot = session.snapshot()
    session.run_until(slots)
    _assert_session_identical(session.result(), batch)

    resumed = SimulationSession.restore(snapshot)
    assert resumed.clock == split
    resumed.run_until(slots)
    _assert_session_identical(resumed.result(), batch)


def _check_pickle_round_trip(algorithm_name: str, profile: str) -> None:
    """The RPS runtime cross-check: the static RPS101/RPS103 rules claim
    nothing unpicklable or checkpoint-stale rides the session pickle —
    this proves it dynamically. A snapshot serialized with
    ``to_bytes()`` mid-run, revived with ``from_bytes()`` and resumed
    must continue bit-identically to both the uninterrupted session and
    the batch ``simulate()`` run.
    """
    scenario = _session_scenario(algorithm_name)
    slots = scenario.config.online_slots
    online = scenario.online_requests()
    schedule = resolve_events(profile, scenario, 21, "preempt")

    batch = simulate(
        make_algorithm(algorithm_name, scenario), online, slots,
        events=schedule,
    )

    session = SimulationSession(
        make_algorithm(algorithm_name, scenario), online, slots,
        events=schedule,
    )
    # A different deterministic split than the restore leg, so the two
    # checks cover distinct checkpoint slots per combination.
    split = random.Random(f"pickle:{algorithm_name}:{profile}").randrange(
        1, slots - 1
    )
    session.run_until(split)
    payload = session.snapshot().to_bytes()
    session.run_until(slots)
    _assert_session_identical(session.result(), batch)

    revived = SessionSnapshot.from_bytes(payload)
    resumed = SimulationSession.restore(revived)
    assert resumed.clock == split
    resumed.run_until(slots)
    _assert_session_identical(resumed.result(), batch)


class TestSessionOracle:
    """Streaming sessions against the batch engine, all algorithms."""

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    @pytest.mark.parametrize(
        "algorithm",
        [name for name in ALL_ALGORITHMS if name in ("OLIVE", "QUICKG")],
    )
    def test_core_algorithms_step_and_restore(self, algorithm, profile):
        _check_step_and_restore(algorithm, profile)

    @pytest.mark.slow
    @pytest.mark.parametrize("profile", ALL_PROFILES)
    @pytest.mark.parametrize(
        "algorithm",
        [name for name in ALL_ALGORITHMS if name not in ("OLIVE", "QUICKG")],
    )
    def test_remaining_algorithms_step_and_restore(self, algorithm, profile):
        _check_step_and_restore(algorithm, profile)


class TestSnapshotPickleRoundTrip:
    """Serialized checkpoints, all algorithms × profiles, bit-identical."""

    @pytest.mark.parametrize("profile", ALL_PROFILES)
    @pytest.mark.parametrize(
        "algorithm",
        [name for name in ALL_ALGORITHMS if name in ("OLIVE", "QUICKG")],
    )
    def test_core_algorithms_pickle_round_trip(self, algorithm, profile):
        _check_pickle_round_trip(algorithm, profile)

    @pytest.mark.slow
    @pytest.mark.parametrize("profile", ALL_PROFILES)
    @pytest.mark.parametrize(
        "algorithm",
        [name for name in ALL_ALGORITHMS if name not in ("OLIVE", "QUICKG")],
    )
    def test_remaining_algorithms_pickle_round_trip(self, algorithm, profile):
        _check_pickle_round_trip(algorithm, profile)

