"""Property tests: per-slot accounting invariants on real scenarios.

Two invariants must hold after *every* slot, for every algorithm built on
the OLIVE allocation machinery (OLIVE, QUICKG, OLIVE-W):

1. ``allocated_demand[t]`` equals the summed demand of the requests
   active at ``t`` — accepted at arrival, not yet departed, and not
   preempted at or before ``t`` (reconstructed independently from the
   decision log).
2. Substrate residual plus the recomputed loads of the active
   allocations equals capacity on every node and link — the incremental
   bookkeeping (and its numpy/dirty-log backend) never drifts from the
   ground truth.

Unlike ``test_property_olive.py`` (hand-built substrates, synthetic
request streams), these run the full scenario pipeline — topology, MMPP
trace, PLAN-VNE plan, windowed plans — at miniature scale.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.embedding import compute_loads
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario, make_algorithm
from repro.sim.engine import simulate

# OLIVE-W recomputes a windowed plan schedule per hypothesis example,
# pushing its parametrizations past the 10 s line — they move to the
# slow tier, which CI runs in its own `pytest tests -m slow` step.
ALGORITHMS = (
    "OLIVE",
    "QUICKG",
    pytest.param("OLIVE-W", marks=pytest.mark.slow),
)

#: Small enough that one scenario builds in well under a second.
_CONFIG = ExperimentConfig.test(
    history_slots=40, online_slots=10, arrivals_per_node=3.0,
    measure_start=2, measure_stop=8,
)

_scenarios: dict = {}


def _scenario(seed: int, utilization: float):
    key = (seed, utilization)
    if key not in _scenarios:
        _scenarios[key] = build_scenario(
            _CONFIG.with_(utilization=utilization), seed
        )
    return _scenarios[key]


def _expected_allocated(result) -> np.ndarray:
    preempted_at = {r.id: t for r, t in result.preemptions}
    expected = np.zeros(result.num_slots)
    for decision in result.decisions:
        if not decision.accepted:
            continue
        request = decision.request
        stop = min(request.departure, result.num_slots)
        stop = min(stop, preempted_at.get(request.id, stop))
        for t in range(request.arrival, stop):
            expected[t] += request.demand
    return expected


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@given(
    seed=st.integers(0, 4),
    utilization=st.sampled_from([0.6, 1.0, 1.4]),
)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_allocated_demand_matches_active_requests(
    algorithm, seed, utilization
):
    scenario = _scenario(seed, utilization)
    result = simulate(
        make_algorithm(algorithm, scenario),
        scenario.online_requests(),
        scenario.config.online_slots,
    )
    np.testing.assert_allclose(
        result.allocated_demand, _expected_allocated(result), rtol=1e-9
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@given(
    seed=st.integers(0, 4),
    utilization=st.sampled_from([0.6, 1.0, 1.4]),
)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_residual_plus_active_loads_is_capacity(algorithm, seed, utilization):
    scenario = _scenario(seed, utilization)
    alg = make_algorithm(algorithm, scenario)
    substrate = scenario.substrate
    requests = scenario.online_requests()
    by_arrival: dict[int, list] = {}
    by_departure: dict[int, list] = {}
    for request in requests:
        by_arrival.setdefault(request.arrival, []).append(request)
        by_departure.setdefault(request.departure, []).append(request)

    on_slot = getattr(alg, "on_slot", None)
    for t in range(scenario.config.online_slots):
        for request in by_departure.get(t, []):
            alg.release(request)
        if on_slot is not None:
            on_slot(t)
        for request in by_arrival.get(t, []):
            alg.process(request)

        # Ground truth: recompute every active allocation's loads from
        # its embedding and subtract from raw capacity.
        expected_nodes = {
            v: substrate.node_capacity(v) for v in substrate.nodes
        }
        expected_links = {
            l: substrate.link_capacity(l) for l in substrate.links
        }
        for allocation in alg.active.values():
            loads = compute_loads(
                scenario.apps[allocation.request.app_index],
                allocation.request.demand,
                allocation.embedding,
                substrate,
                alg.efficiency,
            )
            for node, load in loads.nodes.items():
                expected_nodes[node] -= load
            for link, load in loads.links.items():
                expected_links[link] -= load
        for node, expected in expected_nodes.items():
            assert alg.residual.nodes[node] == pytest.approx(
                expected, abs=1e-6 * max(1.0, abs(expected))
            ), (algorithm, t, node)
        for link, expected in expected_links.items():
            assert alg.residual.links[link] == pytest.approx(
                expected, abs=1e-6 * max(1.0, abs(expected))
            ), (algorithm, t, link)
